//! All-reduce algorithms (Sec. V-A).
//!
//! * [`Algorithm::Ring`] — bandwidth-optimal ring (Patarasuk & Yuan \[15\]);
//!   rejected by the paper for its `p * alpha` latency term on the
//!   high-latency Sunway network.
//! * [`Algorithm::Binomial`] — reduce-to-root + broadcast; the latency-
//!   optimal strawman, terrible for large gradients.
//! * [`Algorithm::RecursiveHalvingDoubling`] — the MPICH algorithm
//!   (Thakur et al. \[14\]): reduce-scatter by recursive halving, allgather
//!   by recursive doubling. With the *natural* rank map its big early
//!   steps cross supernodes and pay the over-subscribed beta2.
//! * The paper's contribution is the same algorithm under the
//!   [`RankMap::RoundRobin`] placement, which pins the big steps inside
//!   supernodes and leaves only the small tail on the central switch.
//!
//! Every algorithm runs functionally over per-node buffers (tests assert
//! all algorithms produce identical sums) while the cost machinery in
//! [`crate::cost`] accumulates simulated time step by step.

use sw26010::SimTime;

use crate::cost::{step_time, NetParams, Transfer};
use crate::topology::{RankMap, Topology};

/// All-reduce algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    Ring,
    Binomial,
    RecursiveHalvingDoubling,
}

/// Outcome of one all-reduce.
#[derive(Debug, Clone, Copy)]
pub struct AllreduceReport {
    pub elapsed: SimTime,
    pub steps: usize,
    /// Bytes that crossed the central switch (sum over transfers).
    pub cross_bytes: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

/// Balanced block partition of `n` elements into `p` blocks.
fn block_range(n: usize, p: usize, b: usize) -> (usize, usize) {
    let base = n / p;
    let rem = n % p;
    let lo = b * base + b.min(rem);
    let hi = lo + base + usize::from(b < rem);
    (lo, hi)
}

fn blocks_span(n: usize, p: usize, lo_b: usize, hi_b: usize) -> (usize, usize) {
    (block_range(n, p, lo_b).0, block_range(n, p, hi_b - 1).1)
}

/// In-simulation all-reduce (sum) over `p = topo.nodes` buffers of `elems`
/// f32 each. `data`, when provided, is indexed by *physical* rank.
pub fn allreduce(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let p = topo.nodes;
    if let Some(d) = data.as_deref() {
        assert_eq!(d.len(), p, "one buffer per node");
        assert!(d.iter().all(|v| v.len() == elems));
    }
    if p == 1 {
        return AllreduceReport {
            elapsed: SimTime::ZERO,
            steps: 0,
            cross_bytes: 0,
            total_bytes: 0,
        };
    }
    match algo {
        Algorithm::Ring => ring(topo, params, map, elems, data.as_deref_mut()),
        Algorithm::Binomial => binomial(topo, params, map, elems, data.as_deref_mut()),
        Algorithm::RecursiveHalvingDoubling => rhd(topo, params, map, elems, data),
    }
}

struct StepAccum<'a> {
    topo: &'a Topology,
    params: &'a NetParams,
    elapsed: SimTime,
    steps: usize,
    cross_bytes: u64,
    total_bytes: u64,
}

impl<'a> StepAccum<'a> {
    fn new(topo: &'a Topology, params: &'a NetParams) -> Self {
        StepAccum {
            topo,
            params,
            elapsed: SimTime::ZERO,
            steps: 0,
            cross_bytes: 0,
            total_bytes: 0,
        }
    }

    fn step(&mut self, transfers: &[Transfer]) {
        self.elapsed += step_time(self.topo, self.params, transfers);
        self.steps += 1;
        for t in transfers {
            self.total_bytes += t.bytes as u64;
            if self.topo.crosses(t.src, t.dst) {
                self.cross_bytes += t.bytes as u64;
            }
        }
    }

    fn finish(self) -> AllreduceReport {
        AllreduceReport {
            elapsed: self.elapsed,
            steps: self.steps,
            cross_bytes: self.cross_bytes,
            total_bytes: self.total_bytes,
        }
    }
}

/// Apply a batch of (dst_phys, range, payload, reduce) messages.
type Msg = (usize, std::ops::Range<usize>, Vec<f32>, bool);

fn deliver(data: &mut [Vec<f32>], msgs: Vec<Msg>) {
    for (dst, range, payload, reduce) in msgs {
        let target = &mut data[dst][range];
        if reduce {
            for (t, v) in target.iter_mut().zip(&payload) {
                *t += v;
            }
        } else {
            target.copy_from_slice(&payload);
        }
    }
}

fn rhd(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let p = topo.nodes;
    assert!(
        p.is_power_of_two(),
        "recursive halving/doubling needs a power-of-two node count"
    );
    let mut acc = StepAccum::new(topo, params);
    // Per logical rank: current block range [lo, hi).
    let mut range: Vec<(usize, usize)> = vec![(0, p); p];

    // Reduce-scatter by recursive halving.
    let mut mask = p / 2;
    while mask >= 1 {
        let mut transfers = Vec::with_capacity(p);
        let mut msgs: Vec<Msg> = Vec::new();
        for (r, rng) in range.iter_mut().enumerate() {
            let partner = r ^ mask;
            let (lo, hi) = *rng;
            let mid = lo + (hi - lo) / 2;
            // Lower-half ranks keep [lo, mid) and send [mid, hi).
            let (keep, send) = if r & mask == 0 {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            let (slo, shi) = blocks_span(elems, p, send.0, send.1);
            let bytes = (shi - slo) * 4;
            let src_phys = map.physical(topo, r);
            let dst_phys = map.physical(topo, partner);
            transfers.push(Transfer {
                src: src_phys,
                dst: dst_phys,
                bytes,
                reduce_bytes: bytes,
            });
            if let Some(d) = data.as_deref() {
                msgs.push((dst_phys, slo..shi, d[src_phys][slo..shi].to_vec(), true));
            }
            *rng = keep;
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
        mask /= 2;
    }

    // Allgather by recursive doubling.
    let mut mask = 1;
    while mask < p {
        let snap = range.clone();
        let mut transfers = Vec::with_capacity(p);
        let mut msgs: Vec<Msg> = Vec::new();
        for r in 0..p {
            let partner = r ^ mask;
            let (lo, hi) = snap[r];
            let (slo, shi) = blocks_span(elems, p, lo, hi);
            let bytes = (shi - slo) * 4;
            let src_phys = map.physical(topo, r);
            let dst_phys = map.physical(topo, partner);
            transfers.push(Transfer {
                src: src_phys,
                dst: dst_phys,
                bytes,
                reduce_bytes: 0,
            });
            if let Some(d) = data.as_deref() {
                msgs.push((dst_phys, slo..shi, d[src_phys][slo..shi].to_vec(), false));
            }
            // Union with the partner's (adjacent, equal-sized) range.
            range[r] = (lo.min(snap[partner].0), hi.max(snap[partner].1));
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
        mask *= 2;
    }
    debug_assert!(range.iter().all(|&(lo, hi)| lo == 0 && hi == p));
    acc.finish()
}

fn ring(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let p = topo.nodes;
    let mut acc = StepAccum::new(topo, params);
    // Reduce-scatter: at step k, rank r sends block (r - k) mod p to r+1.
    for k in 0..p - 1 {
        let mut transfers = Vec::with_capacity(p);
        let mut msgs: Vec<Msg> = Vec::new();
        for r in 0..p {
            let b = (r + p - k) % p;
            let (lo, hi) = block_range(elems, p, b);
            let bytes = (hi - lo) * 4;
            let src_phys = map.physical(topo, r);
            let dst_phys = map.physical(topo, (r + 1) % p);
            transfers.push(Transfer {
                src: src_phys,
                dst: dst_phys,
                bytes,
                reduce_bytes: bytes,
            });
            if let Some(d) = data.as_deref() {
                msgs.push((dst_phys, lo..hi, d[src_phys][lo..hi].to_vec(), true));
            }
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
    }
    // Allgather: rank r now owns block (r + 1) mod p fully reduced.
    for k in 0..p - 1 {
        let mut transfers = Vec::with_capacity(p);
        let mut msgs: Vec<Msg> = Vec::new();
        for r in 0..p {
            let b = (r + 1 + p - k) % p;
            let (lo, hi) = block_range(elems, p, b);
            let bytes = (hi - lo) * 4;
            let src_phys = map.physical(topo, r);
            let dst_phys = map.physical(topo, (r + 1) % p);
            transfers.push(Transfer {
                src: src_phys,
                dst: dst_phys,
                bytes,
                reduce_bytes: 0,
            });
            if let Some(d) = data.as_deref() {
                msgs.push((dst_phys, lo..hi, d[src_phys][lo..hi].to_vec(), false));
            }
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
    }
    acc.finish()
}

fn binomial(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let p = topo.nodes;
    assert!(
        p.is_power_of_two(),
        "binomial tree needs a power-of-two node count"
    );
    let bytes = elems * 4;
    let mut acc = StepAccum::new(topo, params);
    // Reduce to logical rank 0.
    let mut mask = 1;
    while mask < p {
        let mut transfers = Vec::new();
        let mut msgs: Vec<Msg> = Vec::new();
        for r in 0..p {
            if r & mask != 0 && r % mask == 0 {
                let dst = r - mask;
                let src_phys = map.physical(topo, r);
                let dst_phys = map.physical(topo, dst);
                transfers.push(Transfer {
                    src: src_phys,
                    dst: dst_phys,
                    bytes,
                    reduce_bytes: bytes,
                });
                if let Some(d) = data.as_deref() {
                    msgs.push((dst_phys, 0..elems, d[src_phys].clone(), true));
                }
            }
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
        mask *= 2;
    }
    // Broadcast from rank 0.
    let mut mask = p / 2;
    while mask >= 1 {
        let mut transfers = Vec::new();
        let mut msgs: Vec<Msg> = Vec::new();
        for r in 0..p {
            if r % (mask * 2) == 0 {
                let dst = r + mask;
                if dst < p {
                    let src_phys = map.physical(topo, r);
                    let dst_phys = map.physical(topo, dst);
                    transfers.push(Transfer {
                        src: src_phys,
                        dst: dst_phys,
                        bytes,
                        reduce_bytes: 0,
                    });
                    if let Some(d) = data.as_deref() {
                        msgs.push((dst_phys, 0..elems, d[src_phys].clone(), false));
                    }
                }
            }
        }
        acc.step(&transfers);
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs);
        }
        mask /= 2;
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ReduceEngine;

    fn make_data(p: usize, elems: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let data: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| ((r * 31 + i * 7) % 23) as f32 - 11.0)
                    .collect()
            })
            .collect();
        let mut want = vec![0.0f32; elems];
        for row in &data {
            for (w, v) in want.iter_mut().zip(row) {
                *w += v;
            }
        }
        (data, want)
    }

    fn check_correct(algo: Algorithm, map: RankMap, p: usize, elems: usize) {
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (mut data, want) = make_data(p, elems);
        let report = allreduce(&topo, &params, map, algo, elems, Some(&mut data));
        for (r, row) in data.iter().enumerate() {
            for (i, (g, w)) in row.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < 1e-3,
                    "{algo:?}/{map:?} p={p}: node {r} elem {i}: {g} vs {w}"
                );
            }
        }
        assert!(report.elapsed.seconds() > 0.0);
    }

    #[test]
    fn rhd_is_correct() {
        for p in [2, 4, 8, 16] {
            check_correct(Algorithm::RecursiveHalvingDoubling, RankMap::Natural, p, 37);
            check_correct(
                Algorithm::RecursiveHalvingDoubling,
                RankMap::RoundRobin,
                p,
                64,
            );
        }
    }

    #[test]
    fn ring_is_correct() {
        for p in [2, 3, 5, 8] {
            check_correct(Algorithm::Ring, RankMap::Natural, p, 41);
        }
    }

    #[test]
    fn binomial_is_correct() {
        for p in [2, 4, 8] {
            check_correct(Algorithm::Binomial, RankMap::Natural, p, 29);
        }
    }

    #[test]
    fn rhd_beats_binomial_wall_time() {
        // Aggregate bytes are equal (2(p-1)n in both), but binomial moves
        // whole vectors on a single link per step while RHD halves sizes
        // with all links busy — the wall-clock gap the paper exploits.
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1 << 20;
        let rhd = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        let bin = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Binomial,
            n,
            None,
        );
        assert_eq!(rhd.steps, bin.steps);
        assert!(
            rhd.elapsed.seconds() < 0.8 * bin.elapsed.seconds(),
            "rhd {} vs binomial {}",
            rhd.elapsed.seconds(),
            bin.elapsed.seconds()
        );
        // With the round-robin mapping the gap widens decisively.
        let rr = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        assert!(
            rr.elapsed.seconds() < 0.5 * bin.elapsed.seconds(),
            "rr-rhd {} vs binomial {}",
            rr.elapsed.seconds(),
            bin.elapsed.seconds()
        );
    }

    #[test]
    fn round_robin_cuts_cross_traffic() {
        // The headline claim: the remap reduces the bytes crossing the
        // central switch from (p - q)n/p to (p/q - 1)n/p.
        let topo = Topology::with_supernode(16, 4); // p=16, q=4, 4 supernodes
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1 << 18;
        let nat = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        let rr = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        // Expected ratio: (p-q) : (p/q - 1) = 12 : 3 = 4.
        let ratio = nat.cross_bytes as f64 / rr.cross_bytes as f64;
        assert!((ratio - 4.0).abs() < 0.2, "cross-byte ratio {ratio}");
        assert!(rr.elapsed.seconds() < nat.elapsed.seconds());
    }

    #[test]
    fn ring_pays_latency_rhd_pays_less() {
        // Small message on many nodes: ring's (p-1) steps lose to RHD's
        // 2 log p — the paper's argument for the binomial-based choice.
        let topo = Topology::with_supernode(64, 64);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1024; // 4 KB of gradients
        let ring = allreduce(&topo, &params, RankMap::Natural, Algorithm::Ring, n, None);
        let rhd = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        assert!(ring.steps > rhd.steps * 5);
        assert!(ring.elapsed.seconds() > rhd.elapsed.seconds());
    }

    #[test]
    fn single_node_is_free() {
        let topo = Topology::new(1);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let r = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            100,
            None,
        );
        assert_eq!(r.elapsed, SimTime::ZERO);
    }
}

/// All-reduce with automatic algorithm choice for arbitrary node counts:
/// recursive halving/doubling (with the topology-aware map) when the node
/// count is a power of two, ring otherwise. Real jobs are scheduled at
/// power-of-two scales on TaihuLight, but a library should not panic on
/// 96 nodes.
pub fn allreduce_any(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let algo = if topo.nodes.is_power_of_two() {
        Algorithm::RecursiveHalvingDoubling
    } else {
        Algorithm::Ring
    };
    let map = if topo.nodes.is_power_of_two() {
        map
    } else {
        RankMap::Natural
    };
    allreduce(topo, params, map, algo, elems, data)
}

#[cfg(test)]
mod any_tests {
    use super::*;
    use crate::cost::ReduceEngine;

    #[test]
    fn allreduce_any_handles_odd_node_counts() {
        for p in [3usize, 5, 6, 7, 12, 8, 16] {
            let topo = Topology::with_supernode(p, (p / 2).max(1));
            let params = NetParams::sunway(ReduceEngine::CpeClusters);
            let mut data: Vec<Vec<f32>> = (0..p)
                .map(|r| (0..17).map(|i| (r + i) as f32).collect())
                .collect();
            let mut want = vec![0.0f32; 17];
            for row in &data {
                for (w, v) in want.iter_mut().zip(row) {
                    *w += v;
                }
            }
            let r = allreduce_any(&topo, &params, RankMap::RoundRobin, 17, Some(&mut data));
            assert!(r.elapsed.seconds() > 0.0, "p={p}");
            for row in &data {
                for (g, w) in row.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-3, "p={p}");
                }
            }
        }
    }
}
