//! All-reduce algorithms (Sec. V-A).
//!
//! * [`Algorithm::Ring`] — bandwidth-optimal ring (Patarasuk & Yuan \[15\]);
//!   rejected by the paper for its `p * alpha` latency term on the
//!   high-latency Sunway network.
//! * [`Algorithm::Binomial`] — reduce-to-root + broadcast; the latency-
//!   optimal strawman, terrible for large gradients.
//! * [`Algorithm::RecursiveHalvingDoubling`] — the MPICH algorithm
//!   (Thakur et al. \[14\]): reduce-scatter by recursive halving, allgather
//!   by recursive doubling. With the *natural* rank map its big early
//!   steps cross supernodes and pay the over-subscribed beta2.
//! * The paper's contribution is the same algorithm under the
//!   [`RankMap::RoundRobin`] placement, which pins the big steps inside
//!   supernodes and leaves only the small tail on the central switch.
//!
//! Every algorithm runs functionally over per-node buffers (tests assert
//! all algorithms produce identical sums) while the cost machinery in
//! [`crate::cost`] accumulates simulated time step by step.

use sw26010::SimTime;
use swfault::{CollectiveFault, FaultSession};

use crate::cost::{step_time_faulty, NetParams, Transfer};
use crate::schedule::CommSpec;
use crate::topology::{RankMap, Topology};

/// All-reduce algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    Ring,
    Binomial,
    RecursiveHalvingDoubling,
}

/// Outcome of one all-reduce.
#[derive(Debug, Clone, Copy)]
pub struct AllreduceReport {
    pub elapsed: SimTime,
    pub steps: usize,
    /// Bytes that crossed the central switch (sum over transfers).
    pub cross_bytes: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

/// In-simulation all-reduce (sum) over `p = topo.nodes` buffers of `elems`
/// f32 each. `data`, when provided, is indexed by *physical* rank.
pub fn allreduce(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    elems: usize,
    data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    allreduce_segment(topo, params, map, algo, elems, 0..elems, data)
}

/// Fault-aware [`allreduce`]: consults the fault session on both the
/// timing path (degraded links, stragglers, detection timeouts, retry
/// cost) and the functional path (checksummed messages, deterministic
/// retransmission) and aborts with a [`CollectiveFault`] instead of
/// silently computing garbage when a peer is dead or a message exhausts
/// its retry budget.
pub fn allreduce_ft(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    elems: usize,
    data: Option<&mut [Vec<f32>]>,
    faults: Option<&mut FaultSession>,
) -> Result<AllreduceReport, CollectiveFault> {
    allreduce_segment_ft(topo, params, map, algo, elems, 0..elems, data, faults)
}

/// Segment-level all-reduce: reduce only `segment` of a packed buffer of
/// `total_elems`, such that the union of disjoint segment reductions is
/// **bit-identical** to one monolithic packed all-reduce. This is the
/// primitive behind bucketed, backward-overlapped gradient reduction.
///
/// How each algorithm achieves that:
///
/// * **Recursive halving/doubling** treats the segment as its own vector
///   (p balanced blocks over the segment, like a real bucketed
///   implementation). Element placement cannot change the bits: every
///   element's partials combine along the same rank-pairing tree
///   regardless of which block holds it — only the operand sides swap,
///   and IEEE addition commutes.
/// * **Binomial tree** sends whole vectors along a fixed tree, so the
///   segment messages are simply the monolithic messages cut to the
///   segment.
/// * **Ring** folds each element sequentially around the ring starting
///   at its block's owner, so its per-element association *does* depend
///   on block geometry; the ring therefore runs the monolithic block
///   schedule restricted to the segment (blocks outside move zero
///   bytes), reproducing the monolithic fold order exactly.
///
/// The cost model charges each segment run its own start-up latencies
/// and per-step straggler jitter — the realistic price of bucketing.
pub fn allreduce_segment(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    total_elems: usize,
    segment: std::ops::Range<usize>,
    data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    allreduce_segment_ft(topo, params, map, algo, total_elems, segment, data, None)
        .expect("infallible without fault injection")
}

/// Fault-aware [`allreduce_segment`]; see [`allreduce_ft`].
#[allow(clippy::too_many_arguments)]
pub fn allreduce_segment_ft(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    total_elems: usize,
    segment: std::ops::Range<usize>,
    data: Option<&mut [Vec<f32>]>,
    mut faults: Option<&mut FaultSession>,
) -> Result<AllreduceReport, CollectiveFault> {
    let p = topo.nodes;
    assert!(
        segment.end <= total_elems,
        "segment {segment:?} exceeds buffer of {total_elems}"
    );
    if let Some(d) = data.as_deref() {
        assert_eq!(d.len(), p, "one buffer per node");
        assert!(d.iter().all(|v| v.len() == total_elems));
    }
    if p == 1 {
        return Ok(AllreduceReport {
            elapsed: SimTime::ZERO,
            steps: 0,
            cross_bytes: 0,
            total_bytes: 0,
        });
    }
    let seq = if let Some(f) = faults.as_deref_mut() {
        // A dead peer never answers the synchronisation handshake that
        // opens the collective; the keep-alive timeout fires and the
        // abort is charged as pure latency in the cost model.
        if let Some(&rank) = f.dead_nodes().iter().find(|&&n| n < p) {
            let elapsed_s = f.detect();
            return Err(CollectiveFault::DeadRank { rank, elapsed_s });
        }
        f.begin_collective()
    } else {
        0
    };
    if matches!(
        algo,
        Algorithm::RecursiveHalvingDoubling | Algorithm::Binomial
    ) {
        assert!(
            p.is_power_of_two(),
            "{} needs a power-of-two node count",
            match algo {
                Algorithm::Binomial => "binomial tree",
                _ => "recursive halving/doubling",
            }
        );
    }
    let spec = CommSpec::new(*topo, map, algo, total_elems, segment)
        .expect("validated configuration must schedule");
    run_schedule(&spec, params, data, faults, seq)
}

/// Execute a collective from its symbolic schedule: every step's
/// transfers (for the cost model) and messages (for the functional path)
/// are built from the per-rank op lists [`CommSpec`] derives in closed
/// form, so the runtime and the `swcheck::comm` static verifier share one
/// schedule by construction. Ops expand in ascending-rank order with
/// sends first — the byte-accounting order the blessed bench baselines
/// were recorded under.
fn run_schedule(
    spec: &CommSpec,
    params: &NetParams,
    mut data: Option<&mut [Vec<f32>]>,
    faults: Option<&mut FaultSession>,
    seq: u64,
) -> Result<AllreduceReport, CollectiveFault> {
    let topo = &spec.topo;
    let map = spec.map;
    let chunks = spec.chunk_table();
    let mut acc = StepAccum::new(topo, params, faults, seq);
    let mut ops = Vec::new();
    for step in 0..spec.num_steps() {
        ops.clear();
        spec.expand_step_into(step, &mut ops);
        let mut transfers = Vec::with_capacity(ops.len() / 2 + 1);
        let mut msgs: Vec<Msg> = Vec::new();
        for op in ops.iter().filter(|o| o.is_send) {
            let (lo, hi) = CommSpec::elem_span(&chunks, op.chunks);
            let bytes = (hi - lo) * 4;
            let src_phys = map.physical(topo, op.rank);
            let dst_phys = map.physical(topo, op.peer);
            transfers.push(Transfer {
                src: src_phys,
                dst: dst_phys,
                bytes,
                reduce_bytes: if op.reduce { bytes } else { 0 },
            });
            if let Some(d) = data.as_deref() {
                if hi > lo {
                    msgs.push((
                        src_phys,
                        dst_phys,
                        lo..hi,
                        d[src_phys][lo..hi].to_vec(),
                        op.reduce,
                    ));
                }
            }
        }
        let si = acc.step(&transfers)?;
        if let Some(d) = data.as_deref_mut() {
            deliver(d, msgs, acc.faults(), seq, si);
        }
    }
    Ok(acc.finish())
}

struct StepAccum<'a> {
    topo: &'a Topology,
    params: &'a NetParams,
    elapsed: SimTime,
    steps: usize,
    cross_bytes: u64,
    total_bytes: u64,
    faults: Option<&'a mut FaultSession>,
    /// Sequence number of this collective within the fault session.
    seq: u64,
}

impl<'a> StepAccum<'a> {
    fn new(
        topo: &'a Topology,
        params: &'a NetParams,
        faults: Option<&'a mut FaultSession>,
        seq: u64,
    ) -> Self {
        StepAccum {
            topo,
            params,
            elapsed: SimTime::ZERO,
            steps: 0,
            cross_bytes: 0,
            total_bytes: 0,
            faults,
            seq,
        }
    }

    /// Advance one bulk-synchronous step and return its index, or the
    /// fault that aborted the collective mid-flight. Checksum
    /// retransmissions (detected by the receiver, replayed by the
    /// sender) are charged here: start-up + uncontended wire time +
    /// seeded decorrelated-jitter backoff per extra attempt, bounded by
    /// the retry budget.
    fn step(&mut self, transfers: &[Transfer]) -> Result<usize, CollectiveFault> {
        self.elapsed += step_time_faulty(self.topo, self.params, transfers, self.faults.as_deref());
        let idx = self.steps;
        self.steps += 1;
        for t in transfers {
            self.total_bytes += t.bytes as u64;
            if self.topo.crosses(t.src, t.dst) {
                self.cross_bytes += t.bytes as u64;
            }
        }
        if let Some(f) = self.faults.as_deref_mut() {
            if f.corruption_rate() > 0.0 {
                for t in transfers.iter().filter(|t| t.bytes > 0) {
                    let mut attempt = 0u32;
                    while f.corrupts(self.seq, idx, t.src, t.dst, attempt) {
                        f.report.corrupted_msgs += 1;
                        attempt += 1;
                        if attempt > f.max_retries() {
                            f.report.retries_exhausted += 1;
                            return Err(CollectiveFault::RetriesExhausted {
                                src: t.src,
                                dst: t.dst,
                                step: idx,
                                elapsed_s: self.elapsed.seconds(),
                            });
                        }
                        f.report.retries += 1;
                        let retry = self.params.alpha(t.bytes)
                            + t.bytes as f64 * self.params.beta1
                                / self.params.collective_efficiency
                            + f.backoff_s(self.seq, idx, t.src, t.dst, attempt);
                        f.report.retry_cost_s += retry;
                        self.elapsed += SimTime::from_seconds(retry);
                        self.total_bytes += t.bytes as u64;
                        if self.topo.crosses(t.src, t.dst) {
                            self.cross_bytes += t.bytes as u64;
                        }
                    }
                }
            }
        }
        Ok(idx)
    }

    fn faults(&self) -> Option<&FaultSession> {
        self.faults.as_deref()
    }

    fn finish(self) -> AllreduceReport {
        AllreduceReport {
            elapsed: self.elapsed,
            steps: self.steps,
            cross_bytes: self.cross_bytes,
            total_bytes: self.total_bytes,
        }
    }
}

/// Apply a batch of (src_phys, dst_phys, range, payload, reduce) messages.
type Msg = (usize, usize, std::ops::Range<usize>, Vec<f32>, bool);

fn deliver(
    data: &mut [Vec<f32>],
    msgs: Vec<Msg>,
    faults: Option<&FaultSession>,
    seq: u64,
    step: usize,
) {
    for (src, dst, range, payload, reduce) in msgs {
        let payload = receive(payload, faults, seq, step, src, dst);
        let target = &mut data[dst][range];
        if reduce {
            for (t, v) in target.iter_mut().zip(&payload) {
                *t += v;
            }
        } else {
            target.copy_from_slice(&payload);
        }
    }
}

/// The functional half of the transport: the sender stamps a Fletcher-64
/// checksum, the corruption model may damage the payload in flight, the
/// receiver verifies and requests retransmission until a clean copy
/// arrives. The attempt budget was already enforced on the timing path
/// (the step aborts before delivery), so this loop terminates on exactly
/// the attempt the cost model charged for.
fn receive(
    payload: Vec<f32>,
    faults: Option<&FaultSession>,
    seq: u64,
    step: usize,
    src: usize,
    dst: usize,
) -> Vec<f32> {
    let Some(f) = faults else { return payload };
    if f.corruption_rate() <= 0.0 {
        return payload;
    }
    let stamped = swfault::checksum(&payload);
    let mut attempt = 0u32;
    while f.corrupts(seq, step, src, dst, attempt) {
        let mut wire = payload.clone();
        let damage = seq
            ^ ((step as u64) << 40)
            ^ ((src as u64) << 20)
            ^ dst as u64
            ^ (u64::from(attempt) << 56);
        swfault::corrupt_payload(&mut wire, damage);
        assert_ne!(
            swfault::checksum(&wire),
            stamped,
            "checksum must catch in-flight corruption"
        );
        attempt += 1;
    }
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ReduceEngine;

    fn make_data(p: usize, elems: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let data: Vec<Vec<f32>> = (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| ((r * 31 + i * 7) % 23) as f32 - 11.0)
                    .collect()
            })
            .collect();
        let mut want = vec![0.0f32; elems];
        for row in &data {
            for (w, v) in want.iter_mut().zip(row) {
                *w += v;
            }
        }
        (data, want)
    }

    fn check_correct(algo: Algorithm, map: RankMap, p: usize, elems: usize) {
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (mut data, want) = make_data(p, elems);
        let report = allreduce(&topo, &params, map, algo, elems, Some(&mut data));
        for (r, row) in data.iter().enumerate() {
            for (i, (g, w)) in row.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < 1e-3,
                    "{algo:?}/{map:?} p={p}: node {r} elem {i}: {g} vs {w}"
                );
            }
        }
        assert!(report.elapsed.seconds() > 0.0);
    }

    #[test]
    fn rhd_is_correct() {
        for p in [2, 4, 8, 16] {
            check_correct(Algorithm::RecursiveHalvingDoubling, RankMap::Natural, p, 37);
            check_correct(
                Algorithm::RecursiveHalvingDoubling,
                RankMap::RoundRobin,
                p,
                64,
            );
        }
    }

    #[test]
    fn ring_is_correct() {
        for p in [2, 3, 5, 8] {
            check_correct(Algorithm::Ring, RankMap::Natural, p, 41);
        }
    }

    #[test]
    fn binomial_is_correct() {
        for p in [2, 4, 8] {
            check_correct(Algorithm::Binomial, RankMap::Natural, p, 29);
        }
    }

    #[test]
    fn rhd_beats_binomial_wall_time() {
        // Aggregate bytes are equal (2(p-1)n in both), but binomial moves
        // whole vectors on a single link per step while RHD halves sizes
        // with all links busy — the wall-clock gap the paper exploits.
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1 << 20;
        let rhd = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        let bin = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Binomial,
            n,
            None,
        );
        assert_eq!(rhd.steps, bin.steps);
        assert!(
            rhd.elapsed.seconds() < 0.8 * bin.elapsed.seconds(),
            "rhd {} vs binomial {}",
            rhd.elapsed.seconds(),
            bin.elapsed.seconds()
        );
        // With the round-robin mapping the gap widens decisively.
        let rr = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        assert!(
            rr.elapsed.seconds() < 0.5 * bin.elapsed.seconds(),
            "rr-rhd {} vs binomial {}",
            rr.elapsed.seconds(),
            bin.elapsed.seconds()
        );
    }

    #[test]
    fn round_robin_cuts_cross_traffic() {
        // The headline claim: the remap reduces the bytes crossing the
        // central switch from (p - q)n/p to (p/q - 1)n/p.
        let topo = Topology::with_supernode(16, 4); // p=16, q=4, 4 supernodes
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1 << 18;
        let nat = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        let rr = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        // Expected ratio: (p-q) : (p/q - 1) = 12 : 3 = 4.
        let ratio = nat.cross_bytes as f64 / rr.cross_bytes as f64;
        assert!((ratio - 4.0).abs() < 0.2, "cross-byte ratio {ratio}");
        assert!(rr.elapsed.seconds() < nat.elapsed.seconds());
    }

    #[test]
    fn ring_pays_latency_rhd_pays_less() {
        // Small message on many nodes: ring's (p-1) steps lose to RHD's
        // 2 log p — the paper's argument for the binomial-based choice.
        let topo = Topology::with_supernode(64, 64);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let n = 1024; // 4 KB of gradients
        let ring = allreduce(&topo, &params, RankMap::Natural, Algorithm::Ring, n, None);
        let rhd = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            n,
            None,
        );
        assert!(ring.steps > rhd.steps * 5);
        assert!(ring.elapsed.seconds() > rhd.elapsed.seconds());
    }

    /// Data whose sums are rounding-sensitive: reciprocals make the
    /// floating-point result depend on the association order, so exact
    /// equality below really does pin the reduction schedule.
    fn fractional_data(p: usize, elems: usize) -> Vec<Vec<f32>> {
        (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| 1.0 / (1 + (r * 131 + i * 17) % 97) as f32 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn segmented_allreduce_is_bit_identical_for_every_algorithm() {
        // The tentpole invariant: executing the monolithic schedule
        // restricted to each segment in turn produces *bit-identical*
        // sums to one packed all-reduce — for every algorithm, even the
        // ring, whose per-element fold order would change if segments
        // were reduced with bucket-local block boundaries.
        let elems = 1013; // prime, so block boundaries are awkward
        let cuts = [0usize, 37, 402, 640, 1013];
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            for map in [RankMap::Natural, RankMap::RoundRobin] {
                for p in [4usize, 8] {
                    let topo = Topology::with_supernode(p, p / 2);
                    let params = NetParams::sunway(ReduceEngine::CpeClusters);
                    let mut mono = fractional_data(p, elems);
                    let mut seg = mono.clone();
                    allreduce(&topo, &params, map, algo, elems, Some(&mut mono));
                    let mut seg_elapsed = SimTime::ZERO;
                    for w in cuts.windows(2) {
                        let r = allreduce_segment(
                            &topo,
                            &params,
                            map,
                            algo,
                            elems,
                            w[0]..w[1],
                            Some(&mut seg),
                        );
                        seg_elapsed += r.elapsed;
                    }
                    assert!(seg_elapsed.seconds() > 0.0);
                    for (rank, (a, b)) in mono.iter().zip(&seg).enumerate() {
                        for (i, (x, y)) in a.iter().zip(b).enumerate() {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{algo:?}/{map:?} p={p} rank {rank} elem {i}: {x} vs {y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn segment_bytes_sum_to_monolithic_bytes() {
        let elems = 4096;
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let whole = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        let mut total = 0u64;
        let mut cross = 0u64;
        for w in [0usize, 1000, 2500, 4096].windows(2) {
            let r = allreduce_segment(
                &topo,
                &params,
                RankMap::RoundRobin,
                Algorithm::RecursiveHalvingDoubling,
                elems,
                w[0]..w[1],
                None,
            );
            total += r.total_bytes;
            cross += r.cross_bytes;
        }
        // Every rank moves (n - its block) elements per phase, so total
        // bytes are exactly linear in the segment length. Cross-switch
        // bytes depend on per-step block rounding and may deviate by a
        // few elements per transfer.
        assert_eq!(total, whole.total_bytes);
        let dev = (cross as f64 - whole.cross_bytes as f64).abs();
        assert!(
            dev <= 0.02 * whole.cross_bytes as f64,
            "cross bytes diverged: {cross} vs {}",
            whole.cross_bytes
        );
    }

    #[test]
    fn single_node_is_free() {
        let topo = Topology::new(1);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let r = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            100,
            None,
        );
        assert_eq!(r.elapsed, SimTime::ZERO);
    }
}

/// All-reduce with automatic algorithm choice for arbitrary node counts:
/// recursive halving/doubling (with the topology-aware map) when the node
/// count is a power of two, ring otherwise. Real jobs are scheduled at
/// power-of-two scales on TaihuLight, but a library should not panic on
/// 96 nodes.
pub fn allreduce_any(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    data: Option<&mut [Vec<f32>]>,
) -> AllreduceReport {
    let algo = if topo.nodes.is_power_of_two() {
        Algorithm::RecursiveHalvingDoubling
    } else {
        Algorithm::Ring
    };
    let map = if topo.nodes.is_power_of_two() {
        map
    } else {
        RankMap::Natural
    };
    allreduce(topo, params, map, algo, elems, data)
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::cost::ReduceEngine;
    use swfault::FaultPlan;

    const ALGOS: [Algorithm; 3] = [
        Algorithm::RecursiveHalvingDoubling,
        Algorithm::Ring,
        Algorithm::Binomial,
    ];

    fn rough_data(p: usize, elems: usize) -> Vec<Vec<f32>> {
        (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| 1.0 / (1 + (r * 131 + i * 17) % 97) as f32 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn corruption_is_retried_and_leaves_sums_bit_identical() {
        // Corrupted messages are caught by the checksum and
        // retransmitted, so a corrupted run must produce the *same bits*
        // as a clean run — only slower, with the retries charged to the
        // cost model and counted in the report.
        let p = 8;
        let elems = 513;
        let topo = Topology::with_supernode(p, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        for algo in ALGOS {
            let mut clean = rough_data(p, elems);
            let clean_rep = allreduce(
                &topo,
                &params,
                RankMap::RoundRobin,
                algo,
                elems,
                Some(&mut clean),
            );

            let mut faulty = rough_data(p, elems);
            let mut session =
                FaultSession::new(FaultPlan::new(2024).corruption(0.3).max_retries(8));
            session.begin_iteration(0);
            let rep = allreduce_ft(
                &topo,
                &params,
                RankMap::RoundRobin,
                algo,
                elems,
                Some(&mut faulty),
                Some(&mut session),
            )
            .expect("retry budget absorbs a 30% corruption rate");
            assert!(
                session.report.corrupted_msgs > 0,
                "{algo:?}: the plan must actually corrupt something"
            );
            assert_eq!(session.report.retries, session.report.corrupted_msgs);
            assert!(session.report.retry_cost_s > 0.0);
            assert!(
                rep.elapsed.seconds() > clean_rep.elapsed.seconds(),
                "{algo:?}: retries must cost simulated time"
            );
            assert!(rep.total_bytes > clean_rep.total_bytes);
            for (a, b) in clean.iter().zip(&faulty) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{algo:?}");
                }
            }
        }
    }

    #[test]
    fn dead_rank_aborts_with_detection_timeout() {
        let p = 8;
        let topo = Topology::with_supernode(p, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let mut session = FaultSession::new(FaultPlan::new(1).crash(3, 2).detect_timeout_s(0.5));
        session.begin_iteration(1);
        let mut data = rough_data(p, 64);
        assert!(allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            64,
            Some(&mut data),
            Some(&mut session),
        )
        .is_ok());
        session.begin_iteration(2);
        let err = allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            64,
            None,
            Some(&mut session),
        )
        .unwrap_err();
        match err {
            CollectiveFault::DeadRank { rank, elapsed_s } => {
                assert_eq!(rank, 3);
                assert_eq!(elapsed_s, 0.5);
            }
            other => panic!("expected DeadRank, got {other}"),
        }
        assert_eq!(session.report.detections, 1);
        assert_eq!(session.report.detect_latency_s, 0.5);
    }

    #[test]
    fn hopeless_corruption_exhausts_retries() {
        let p = 4;
        let topo = Topology::with_supernode(p, 2);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        // rate ~ 1: every attempt of every message corrupts.
        let mut session = FaultSession::new(FaultPlan::new(5).corruption(0.999).max_retries(2));
        session.begin_iteration(0);
        let err = allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Ring,
            256,
            None,
            Some(&mut session),
        )
        .unwrap_err();
        assert!(matches!(err, CollectiveFault::RetriesExhausted { .. }));
        assert_eq!(session.report.retries_exhausted, 1);
        assert!(err.elapsed_s() > 0.0);
    }

    #[test]
    fn degraded_uplink_slows_only_affected_iterations() {
        let p = 8;
        let elems = 1 << 16;
        let topo = Topology::with_supernode(p, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let healthy = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        let mut session = FaultSession::new(FaultPlan::new(9).degrade_link(0, 4.0, 5..6));
        session.begin_iteration(4);
        let before = allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
            Some(&mut session),
        )
        .unwrap();
        assert_eq!(
            before.elapsed.seconds().to_bits(),
            healthy.elapsed.seconds().to_bits(),
            "outside the window the timing must be bit-identical"
        );
        session.begin_iteration(5);
        let during = allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
            Some(&mut session),
        )
        .unwrap();
        assert!(
            during.elapsed.seconds() > 1.5 * healthy.elapsed.seconds(),
            "degraded uplink must dominate the cross steps: {} vs {}",
            during.elapsed.seconds(),
            healthy.elapsed.seconds()
        );
    }

    #[test]
    fn straggler_stretches_the_step() {
        let p = 8;
        let elems = 1 << 16;
        let topo = Topology::with_supernode(p, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let healthy = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Ring,
            elems,
            None,
        );
        let mut session = FaultSession::new(FaultPlan::new(11).straggle(2, 3.0, 0..100));
        session.begin_iteration(1);
        let slow = allreduce_ft(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Ring,
            elems,
            None,
            Some(&mut session),
        )
        .unwrap();
        assert!(slow.elapsed.seconds() > 1.5 * healthy.elapsed.seconds());
    }
}

#[cfg(test)]
mod any_tests {
    use super::*;
    use crate::cost::ReduceEngine;

    #[test]
    fn allreduce_any_handles_odd_node_counts() {
        for p in [3usize, 5, 6, 7, 12, 8, 16] {
            let topo = Topology::with_supernode(p, (p / 2).max(1));
            let params = NetParams::sunway(ReduceEngine::CpeClusters);
            let mut data: Vec<Vec<f32>> = (0..p)
                .map(|r| (0..17).map(|i| (r + i) as f32).collect())
                .collect();
            let mut want = vec![0.0f32; 17];
            for row in &data {
                for (w, v) in want.iter_mut().zip(row) {
                    *w += v;
                }
            }
            let r = allreduce_any(&topo, &params, RankMap::RoundRobin, 17, Some(&mut data));
            assert!(r.elapsed.seconds() > 0.0, "p={p}");
            for row in &data {
                for (g, w) in row.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-3, "p={p}");
                }
            }
        }
    }
}
