//! Closed-form all-reduce costs — Equations 2-6 of the paper — and the
//! Fig. 7 worked example (8 nodes in 2 supernodes).
//!
//! The equations assume a constant per-message latency `alpha`; our step
//! machinery uses the protocol-dependent latency of Fig. 6, so tests
//! compare against the equations evaluated with the same per-step alphas.

use crate::cost::NetParams;

/// Inputs of the closed-form model.
#[derive(Debug, Clone, Copy)]
pub struct EqInputs {
    /// Total nodes, power of two.
    pub p: usize,
    /// Nodes per supernode.
    pub q: usize,
    /// Message bytes.
    pub n: usize,
}

/// Eq. 3: original reduce-scatter.
/// `log p * alpha + (q-1) beta1 n/p + (p-q) beta2 n/p + (p-1)/p n gamma`.
pub fn original_reduce_scatter(i: EqInputs, alpha: f64, beta1: f64, beta2: f64, gamma: f64) -> f64 {
    let (p, q, n) = (i.p as f64, i.q as f64, i.n as f64);
    p.log2() * alpha
        + (q - 1.0) * beta1 * n / p
        + (p - q) * beta2 * n / p
        + (p - 1.0) / p * n * gamma
}

/// Eq. 4: original allgather (no reduction term).
pub fn original_allgather(i: EqInputs, alpha: f64, beta1: f64, beta2: f64) -> f64 {
    let (p, q, n) = (i.p as f64, i.q as f64, i.n as f64);
    p.log2() * alpha + (q - 1.0) * beta1 * n / p + (p - q) * beta2 * n / p
}

/// Eq. 5: improved (round-robin) reduce-scatter.
/// `log p * alpha + (p - p/q) beta1 n/p + (p/q - 1) beta2 n/p + (p-1)/p n gamma`.
pub fn improved_reduce_scatter(i: EqInputs, alpha: f64, beta1: f64, beta2: f64, gamma: f64) -> f64 {
    let (p, q, n) = (i.p as f64, i.q as f64, i.n as f64);
    p.log2() * alpha
        + (p - p / q) * beta1 * n / p
        + (p / q - 1.0) * beta2 * n / p
        + (p - 1.0) / p * n * gamma
}

/// Eq. 6: improved allgather.
pub fn improved_allgather(i: EqInputs, alpha: f64, beta1: f64, beta2: f64) -> f64 {
    let (p, q, n) = (i.p as f64, i.q as f64, i.n as f64);
    p.log2() * alpha + (p - p / q) * beta1 * n / p + (p / q - 1.0) * beta2 * n / p
}

/// Eq. 2: whole all-reduce under either mapping.
pub fn allreduce_closed_form(i: EqInputs, params: &NetParams, improved: bool) -> f64 {
    // Use the rendezvous alpha as the representative constant (gradient
    // payloads are far beyond the eager limit).
    let alpha = params.alpha_rendezvous;
    let (b1, b2, g) = (params.beta1, params.beta2(), params.gamma());
    if improved {
        improved_reduce_scatter(i, alpha, b1, b2, g) + improved_allgather(i, alpha, b1, b2)
    } else {
        original_reduce_scatter(i, alpha, b1, b2, g) + original_allgather(i, alpha, b1, b2)
    }
}

/// The Fig. 7 example: 8 nodes in 2 supernodes. Returns
/// `(original, improved)` costs in the figure's symbolic units evaluated
/// numerically: `6 alpha + 7/8 n gamma + (beta-terms)`.
pub fn fig7_example(n: usize, alpha: f64, beta1: f64, beta2: f64, gamma: f64) -> (f64, f64) {
    let nf = n as f64;
    // Original: 6a + 7/8 n gamma + 3/4 n beta1 + n beta2.
    let original = 6.0 * alpha + 7.0 / 8.0 * nf * gamma + 0.75 * nf * beta1 + nf * beta2;
    // Improved: 6a + 7/8 n gamma + 3/2 n beta1 + 1/4 n beta2.
    let improved = 6.0 * alpha + 7.0 / 8.0 * nf * gamma + 1.5 * nf * beta1 + 0.25 * nf * beta2;
    (original, improved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, Algorithm};
    use crate::cost::ReduceEngine;
    use crate::topology::{RankMap, Topology};

    /// Sum of beta/gamma terms must match the step machinery exactly
    /// (alphas differ because the machinery uses size-dependent latency).
    fn machinery_time(p: usize, q: usize, n_elems: usize, map: RankMap) -> (f64, usize) {
        let topo = Topology::with_supernode(p, q);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let r = allreduce(
            &topo,
            &params,
            map,
            Algorithm::RecursiveHalvingDoubling,
            n_elems,
            None,
        );
        (r.elapsed.seconds(), r.steps)
    }

    fn alphas_of_steps(p: usize, n_elems: usize, params: &NetParams) -> f64 {
        // Step message sizes: n/2, n/4, ..., n/p then back up.
        let n = n_elems * 4;
        let mut total = 0.0;
        let mut m = p / 2;
        while m >= 1 {
            total += 2.0 * params.alpha(n * m / p);
            m /= 2;
        }
        total
    }

    #[test]
    fn closed_form_matches_step_machinery() {
        for (p, q) in [(8, 4), (16, 4), (32, 8)] {
            let n_elems = 1 << 18; // 1 MB
            let params = NetParams::sunway(ReduceEngine::CpeClusters);
            let i = EqInputs {
                p,
                q,
                n: n_elems * 4,
            };
            let (b1, b2, g) = (params.beta1, params.beta2(), params.gamma());

            for (map, improved) in [(RankMap::Natural, false), (RankMap::RoundRobin, true)] {
                let (machine, steps) = machinery_time(p, q, n_elems, map);
                assert_eq!(steps, 2 * (p as f64).log2() as usize);
                let closed = if improved {
                    improved_reduce_scatter(i, 0.0, b1, b2, g) + improved_allgather(i, 0.0, b1, b2)
                } else {
                    original_reduce_scatter(i, 0.0, b1, b2, g) + original_allgather(i, 0.0, b1, b2)
                } + alphas_of_steps(p, n_elems, &params);
                let rel = (machine - closed).abs() / machine;
                assert!(
                    rel < 0.02,
                    "p={p} q={q} improved={improved}: machine {machine} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn improvement_reduces_beta2_coefficient() {
        // From p - q to p/q - 1, e.g. 1024 nodes in 4 supernodes:
        // 768 -> 3.
        let i = EqInputs {
            p: 1024,
            q: 256,
            n: 232 << 20,
        };
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let orig = allreduce_closed_form(i, &params, false);
        let imp = allreduce_closed_form(i, &params, true);
        assert!(imp < 0.55 * orig, "improved {imp} vs original {orig}");
    }

    #[test]
    fn fig7_numbers() {
        // With the figure's worked coefficients, the improved plan wins
        // whenever beta2 = 4 beta1 (0.75 + 4 = 4.75 vs 1.5 + 1 = 2.5
        // bandwidth units).
        let (orig, imp) = fig7_example(1 << 20, 0.0, 1.0, 4.0, 0.0);
        let n = (1 << 20) as f64;
        assert!((orig - 4.75 * n).abs() < 1.0);
        assert!((imp - 2.5 * n).abs() < 1.0);
    }

    #[test]
    fn fig7_matches_machinery_for_8_nodes() {
        let n_elems = 1 << 18;
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (machine_nat, _) = machinery_time(8, 4, n_elems, RankMap::Natural);
        let (machine_rr, _) = machinery_time(8, 4, n_elems, RankMap::RoundRobin);
        let alphas = alphas_of_steps(8, n_elems, &params);
        let (orig, imp) = fig7_example(
            n_elems * 4,
            0.0,
            params.beta1,
            params.beta2(),
            params.gamma(),
        );
        let rel_o = (machine_nat - (orig + alphas)).abs() / machine_nat;
        let rel_i = (machine_rr - (imp + alphas)).abs() / machine_rr;
        assert!(rel_o < 0.02, "original: {machine_nat} vs {}", orig + alphas);
        assert!(rel_i < 0.02, "improved: {machine_rr} vs {}", imp + alphas);
    }
}
