//! The alpha-beta-gamma communication cost model (after Thakur et al.
//! \[14\], which the paper adopts), calibrated to the measurements in
//! Fig. 6.
//!
//! * `alpha` — per-message start-up. The Sunway MPI switches from an
//!   eager to a rendezvous protocol around 2 KB, which is why its latency
//!   pulls away from Infiniband's for larger messages (Fig. 6, right).
//! * `beta1` — per-byte cost inside a supernode (~12 GB/s achieved of the
//!   16 GB/s theoretical link).
//! * `beta2 = 4 * beta1` — per-byte cost across supernodes when the
//!   central switch is over-subscribed (Sec. II-B: the switch carries a
//!   quarter of the aggregate bandwidth).
//! * `gamma` — per-byte cost of the local reduction, which depends on
//!   whether the sums run on the MPE (stock MPI) or are offloaded to the
//!   CPE clusters (the paper's improvement).

use sw26010::SimTime;
use swfault::FaultSession;

use crate::topology::{Topology, OVERSUBSCRIPTION};

/// Where all-reduce arithmetic runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceEngine {
    /// Stock MPI: sums on the management core, bounded by its ~9.9 GB/s
    /// copy bandwidth split over three streams.
    Mpe,
    /// swCaffe: sums on the four CPE clusters, bounded by DMA bandwidth
    /// over three streams.
    CpeClusters,
}

/// Network cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Start-up latency for messages up to `eager_limit` bytes.
    pub alpha_eager: f64,
    /// Start-up latency beyond the eager limit (rendezvous handshake).
    pub alpha_rendezvous: f64,
    pub eager_limit: usize,
    /// Per-byte time inside a supernode (s/B).
    pub beta1: f64,
    /// Reduction engine for gamma.
    pub reduce: ReduceEngine,
    /// Fraction of the raw link bandwidth a *collective* step actually
    /// achieves (pipelining gaps, intermediate copies, progress-engine
    /// overheads). 1.0 for raw P2P benchmarks; calibrated to ~0.055 for
    /// MPI collectives at scale, which reproduces the measured
    /// communication times behind Figs. 10/11 (e.g. ~1 s to all-reduce
    /// AlexNet's 232.6 MB over 1024 nodes).
    pub collective_efficiency: f64,
    /// Per-step straggler/OS-jitter coefficient: each bulk-synchronous
    /// step additionally costs `straggler_coeff * ln(nodes)` seconds.
    pub straggler_coeff: f64,
}

impl NetParams {
    /// Sunway network, calibrated to Fig. 6 (12 GB/s achieved P2P).
    pub fn sunway(reduce: ReduceEngine) -> Self {
        NetParams {
            alpha_eager: 1.5e-6,
            alpha_rendezvous: 7.0e-6,
            eager_limit: 2 * 1024,
            beta1: 1.0 / 12.0e9,
            reduce,
            collective_efficiency: 1.0,
            straggler_coeff: 0.0,
        }
    }

    /// Sunway network with the *collective-scale* calibration used for the
    /// Figs. 10/11 sweeps: MPI all-reduce software efficiency and
    /// per-step straggler jitter measured into the model (see field docs).
    pub fn sunway_allreduce(reduce: ReduceEngine) -> Self {
        NetParams {
            collective_efficiency: 0.055,
            straggler_coeff: 2.0e-3,
            ..NetParams::sunway(reduce)
        }
    }

    /// Infiniband FDR comparator for Fig. 6: similar saturated bandwidth
    /// to the Sunway network but lower latency past the eager limit
    /// (paper: "while achieving similar high-bandwidth as Infiniband, the
    /// Sunway network has higher latency when message size is larger than
    /// 2 KB").
    pub fn infiniband() -> Self {
        NetParams {
            alpha_eager: 1.2e-6,
            alpha_rendezvous: 2.5e-6,
            eager_limit: 8 * 1024,
            beta1: 1.0 / 11.0e9,
            reduce: ReduceEngine::Mpe,
            collective_efficiency: 1.0,
            straggler_coeff: 0.0,
        }
    }

    /// Start-up latency for an `n`-byte message.
    pub fn alpha(&self, n: usize) -> f64 {
        if n <= self.eager_limit {
            self.alpha_eager
        } else {
            self.alpha_rendezvous
        }
    }

    /// Over-subscribed per-byte time across supernodes.
    pub fn beta2(&self) -> f64 {
        self.beta1 * OVERSUBSCRIPTION as f64
    }

    /// Per-byte local-reduction cost.
    pub fn gamma(&self) -> f64 {
        match self.reduce {
            // Read two operands + write one at the MPE's 9.9 GB/s.
            ReduceEngine::Mpe => 3.0 / 9.9e9,
            // Same three streams, but split over the four CPE clusters
            // (each CG reduces its quarter of the packed buffer at the
            // 28 GB/s DMA rate).
            ReduceEngine::CpeClusters => 3.0 / (4.0 * 28.0e9),
        }
    }

    /// Point-to-point message time over a link with congestion factor
    /// `share >= 1` applied to the per-byte term.
    pub fn p2p(&self, bytes: usize, share: f64) -> SimTime {
        SimTime::from_seconds(self.alpha(bytes) + bytes as f64 * self.beta1 * share)
    }

    /// Fig. 6 bandwidth curve (bytes/s) for a message size.
    pub fn p2p_bandwidth(&self, bytes: usize, oversubscribed: bool) -> f64 {
        let share = if oversubscribed {
            OVERSUBSCRIPTION as f64
        } else {
            1.0
        };
        bytes as f64 / self.p2p(bytes, share).seconds()
    }

    /// Fig. 6 latency curve for a message size.
    pub fn p2p_latency(&self, bytes: usize) -> SimTime {
        self.p2p(bytes, 1.0)
    }
}

/// A set of simultaneous point-to-point transfers forming one step of a
/// collective.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    pub src: usize,
    pub dst: usize,
    pub bytes: usize,
    /// Bytes locally reduced at the destination after arrival.
    pub reduce_bytes: usize,
}

/// Duration of one bulk-synchronous step: every transfer proceeds in
/// parallel; cross-supernode flows share the quarter-bandwidth uplink of
/// their source supernode; the step ends when the slowest transfer (plus
/// its local reduction) completes.
pub fn step_time(topo: &Topology, params: &NetParams, transfers: &[Transfer]) -> SimTime {
    step_time_faulty(topo, params, transfers, None)
}

/// [`step_time`] with fault-plan perturbations: a degraded supernode
/// uplink stretches the per-byte term of every crossing transfer that
/// touches it, and a straggling endpoint stretches its whole transfer.
/// With no active perturbation the arithmetic is bit-identical to the
/// healthy path.
pub fn step_time_faulty(
    topo: &Topology,
    params: &NetParams,
    transfers: &[Transfer],
    faults: Option<&FaultSession>,
) -> SimTime {
    if transfers.is_empty() {
        return SimTime::ZERO;
    }
    let perturb = faults.filter(|f| f.perturbs_timing());
    // Count cross-supernode flows leaving each supernode.
    let mut outflows = vec![0usize; topo.supernodes()];
    for t in transfers {
        if topo.crosses(t.src, t.dst) {
            outflows[topo.supernode_of(t.src)] += 1;
        }
    }
    let mut worst = 0.0f64;
    for t in transfers {
        let share = if topo.crosses(t.src, t.dst) {
            let c = outflows[topo.supernode_of(t.src)] as f64;
            // The uplink aggregates q/4 link-bandwidths; c concurrent
            // flows split it, but a single flow still gets full link rate.
            (c * OVERSUBSCRIPTION as f64 / topo.q() as f64).max(1.0)
        } else {
            1.0
        };
        let wire = t.bytes as f64 * params.beta1 * share / params.collective_efficiency;
        let mut time = params.alpha(t.bytes) + wire + t.reduce_bytes as f64 * params.gamma();
        if let Some(f) = perturb {
            if topo.crosses(t.src, t.dst) {
                let lf = f
                    .link_factor(topo.supernode_of(t.src))
                    .max(f.link_factor(topo.supernode_of(t.dst)));
                if lf > 1.0 {
                    time += wire * (lf - 1.0);
                }
            }
            let sf = f.straggler_factor(t.src).max(f.straggler_factor(t.dst));
            if sf > 1.0 {
                time *= sf;
            }
        }
        worst = worst.max(time);
    }
    worst += params.straggler_coeff * (topo.nodes.max(2) as f64).ln();
    SimTime::from_seconds(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunway_bandwidth_saturates_at_12gbs() {
        let p = NetParams::sunway(ReduceEngine::Mpe);
        let bw = p.p2p_bandwidth(4 << 20, false);
        assert!(bw > 10.0e9 && bw <= 12.0e9, "bw {bw}");
        // Over-subscribed: about a quarter.
        let bw_os = p.p2p_bandwidth(4 << 20, true);
        assert!((bw_os - bw / 4.0).abs() / bw < 0.1, "os bw {bw_os}");
    }

    #[test]
    fn sunway_latency_exceeds_infiniband_beyond_2kb() {
        let sw = NetParams::sunway(ReduceEngine::Mpe);
        let ib = NetParams::infiniband();
        // Below the eager limit they are comparable.
        assert!(sw.p2p_latency(256).seconds() < 2.0 * ib.p2p_latency(256).seconds());
        // Beyond 2 KB the Sunway rendezvous cost dominates (Fig. 6).
        assert!(sw.p2p_latency(4096).seconds() > 1.5 * ib.p2p_latency(4096).seconds());
    }

    #[test]
    fn cpe_reduction_beats_mpe() {
        let mpe = NetParams::sunway(ReduceEngine::Mpe);
        let cpe = NetParams::sunway(ReduceEngine::CpeClusters);
        assert!(cpe.gamma() < 0.5 * mpe.gamma());
    }

    #[test]
    fn fully_crossing_step_pays_beta2() {
        // All q nodes of each supernode send across: share = 4 = beta2/beta1.
        let topo = Topology::with_supernode(8, 4);
        let p = NetParams::sunway(ReduceEngine::Mpe);
        let n = 1 << 20;
        let transfers: Vec<Transfer> = (0..4)
            .map(|i| Transfer {
                src: i,
                dst: i + 4,
                bytes: n,
                reduce_bytes: 0,
            })
            .collect();
        let t = step_time(&topo, &p, &transfers).seconds();
        let want = p.alpha(n) + n as f64 * p.beta2();
        assert!((t - want).abs() / want < 1e-9, "{t} vs {want}");
    }

    #[test]
    fn single_crossing_flow_keeps_full_bandwidth() {
        let topo = Topology::with_supernode(8, 4);
        let p = NetParams::sunway(ReduceEngine::Mpe);
        let n = 1 << 20;
        let t = step_time(
            &topo,
            &p,
            &[Transfer {
                src: 0,
                dst: 5,
                bytes: n,
                reduce_bytes: 0,
            }],
        )
        .seconds();
        let want = p.alpha(n) + n as f64 * p.beta1;
        assert!((t - want).abs() / want < 1e-9);
    }

    #[test]
    fn intra_supernode_step_uses_beta1() {
        let topo = Topology::with_supernode(8, 4);
        let p = NetParams::sunway(ReduceEngine::Mpe);
        let n = 1 << 16;
        let transfers: Vec<Transfer> = (0..2)
            .map(|i| Transfer {
                src: i,
                dst: i + 2,
                bytes: n,
                reduce_bytes: n,
            })
            .collect();
        let t = step_time(&topo, &p, &transfers).seconds();
        let want = p.alpha(n) + n as f64 * (p.beta1 + p.gamma());
        assert!((t - want).abs() / want < 1e-9);
    }
}
