//! Standalone collective primitives beyond all-reduce: broadcast, reduce
//! and reduce-scatter. S-Caffe (ref \[24\] of the paper) builds its
//! training on reduce/broadcast pairs; having them here lets the ablation
//! suite compare that design point against the all-reduce the paper
//! chose, and gives the library the surface a downstream user expects.

use sw26010::SimTime;

use crate::cost::{step_time, NetParams, Transfer};
use crate::topology::{RankMap, Topology};

/// Outcome of a primitive collective.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveReport {
    pub elapsed: SimTime,
    pub steps: usize,
}

/// Binomial-tree broadcast from logical rank 0.
pub fn broadcast(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> CollectiveReport {
    let p = topo.nodes;
    assert!(
        p.is_power_of_two(),
        "binomial broadcast needs a power-of-two node count"
    );
    if let Some(d) = data.as_deref() {
        assert_eq!(d.len(), p);
    }
    let bytes = elems * 4;
    let mut elapsed = SimTime::ZERO;
    let mut steps = 0;
    let mut mask = p / 2;
    while mask >= 1 {
        let mut transfers = Vec::new();
        let mut moves: Vec<(usize, usize)> = Vec::new();
        for r in (0..p).step_by(mask * 2) {
            let dst = r + mask;
            if dst < p {
                let src_phys = map.physical(topo, r);
                let dst_phys = map.physical(topo, dst);
                transfers.push(Transfer {
                    src: src_phys,
                    dst: dst_phys,
                    bytes,
                    reduce_bytes: 0,
                });
                moves.push((src_phys, dst_phys));
            }
        }
        elapsed += step_time(topo, params, &transfers);
        steps += 1;
        if let Some(d) = data.as_deref_mut() {
            for (src, dst) in moves {
                let payload = d[src].clone();
                d[dst].copy_from_slice(&payload);
            }
        }
        mask /= 2;
    }
    CollectiveReport { elapsed, steps }
}

/// Binomial-tree sum-reduce to logical rank 0.
pub fn reduce(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    elems: usize,
    mut data: Option<&mut [Vec<f32>]>,
) -> CollectiveReport {
    let p = topo.nodes;
    assert!(
        p.is_power_of_two(),
        "binomial reduce needs a power-of-two node count"
    );
    let bytes = elems * 4;
    let mut elapsed = SimTime::ZERO;
    let mut steps = 0;
    let mut mask = 1;
    while mask < p {
        let mut transfers = Vec::new();
        let mut moves: Vec<(usize, usize)> = Vec::new();
        for r in (0..p).step_by(mask * 2) {
            let src = r + mask;
            if src < p {
                let src_phys = map.physical(topo, src);
                let dst_phys = map.physical(topo, r);
                transfers.push(Transfer {
                    src: src_phys,
                    dst: dst_phys,
                    bytes,
                    reduce_bytes: bytes,
                });
                moves.push((src_phys, dst_phys));
            }
        }
        elapsed += step_time(topo, params, &transfers);
        steps += 1;
        if let Some(d) = data.as_deref_mut() {
            for (src, dst) in moves {
                let payload = d[src].clone();
                for (t, v) in d[dst].iter_mut().zip(&payload) {
                    *t += v;
                }
            }
        }
        mask *= 2;
    }
    CollectiveReport { elapsed, steps }
}

/// The parameter-server-style synchronisation the paper argues *against*
/// (Sec. V-A): every worker sends its gradient to one server rank, which
/// sums and sends updated state back. All traffic funnels through one
/// node's single network port.
pub fn parameter_server_round(
    topo: &Topology,
    params: &NetParams,
    server_phys: usize,
    elems: usize,
) -> CollectiveReport {
    let p = topo.nodes;
    let bytes = elems * 4;
    // Inbound: p-1 simultaneous sends into one port — serialised.
    let mut elapsed = SimTime::ZERO;
    for _ in 0..p - 1 {
        elapsed += step_time(
            topo,
            params,
            &[Transfer {
                src: (server_phys + 1) % p,
                dst: server_phys,
                bytes,
                reduce_bytes: bytes,
            }],
        );
    }
    // Outbound: p-1 sends of the fresh parameters.
    for _ in 0..p - 1 {
        elapsed += step_time(
            topo,
            params,
            &[Transfer {
                src: server_phys,
                dst: (server_phys + 1) % p,
                bytes,
                reduce_bytes: 0,
            }],
        );
    }
    CollectiveReport {
        elapsed,
        steps: 2 * (p - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, Algorithm};
    use crate::cost::ReduceEngine;

    fn data(p: usize, elems: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let d: Vec<Vec<f32>> = (0..p)
            .map(|r| (0..elems).map(|i| (r * 3 + i) as f32).collect())
            .collect();
        let mut sum = vec![0.0f32; elems];
        for row in &d {
            for (s, v) in sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        (d, sum)
    }

    #[test]
    fn broadcast_copies_root_everywhere() {
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::Mpe);
        let (mut d, _) = data(8, 13);
        let root = d[0].clone();
        let r = broadcast(&topo, &params, RankMap::Natural, 13, Some(&mut d));
        assert_eq!(r.steps, 3);
        for row in &d {
            assert_eq!(row, &root);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::Mpe);
        let (mut d, want) = data(8, 9);
        let r = reduce(&topo, &params, RankMap::Natural, 9, Some(&mut d));
        assert_eq!(r.steps, 3);
        assert_eq!(d[0], want);
    }

    #[test]
    fn reduce_plus_broadcast_equals_allreduce_result() {
        let topo = Topology::with_supernode(8, 4);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (mut d1, want) = data(8, 21);
        reduce(&topo, &params, RankMap::Natural, 21, Some(&mut d1));
        broadcast(&topo, &params, RankMap::Natural, 21, Some(&mut d1));
        for row in &d1 {
            for (g, w) in row.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
        let (mut d2, _) = data(8, 21);
        allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            21,
            Some(&mut d2),
        );
        for (a, b) in d1.iter().zip(&d2) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn parameter_server_loses_to_allreduce_at_scale() {
        // The paper's Sec. V-A argument: one network port serialises all
        // gradient traffic.
        let topo = Topology::new(256);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let elems = 10_000_000; // 40 MB
        let ps = parameter_server_round(&topo, &params, 0, elems);
        let ar = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        assert!(
            ps.elapsed.seconds() > 10.0 * ar.elapsed.seconds(),
            "parameter server {} vs all-reduce {}",
            ps.elapsed.seconds(),
            ar.elapsed.seconds()
        );
    }
}
