//! # swnet — TaihuLight interconnect model and collectives
//!
//! The substrate for Sec. V of the paper: the two-level network topology
//! (supernodes of 256 under a quarter-bandwidth central switch), the
//! alpha-beta-gamma cost model calibrated to the Fig. 6 microbenchmarks,
//! and four all-reduce implementations — ring, binomial tree, MPICH-style
//! recursive halving/doubling, and the paper's contribution: the same
//! halving/doubling under a round-robin supernode rank mapping that keeps
//! the heavy steps off the over-subscribed switch, plus CPE-cluster
//! offload of the reduction arithmetic.
//!
//! All collectives run *functionally* over per-node buffers (so tests can
//! assert every algorithm computes the same sums) while a bulk-synchronous
//! step machinery accumulates simulated time; `analysis` carries the
//! closed-form Equations 2-6 and the Fig. 7 example, cross-validated
//! against the machinery.

pub mod analysis;
pub mod collectives;
pub mod cost;
pub mod primitives;
pub mod schedule;
pub mod topology;

pub use collectives::{
    allreduce, allreduce_any, allreduce_ft, allreduce_segment, allreduce_segment_ft, Algorithm,
    AllreduceReport,
};
pub use cost::{step_time_faulty, NetParams, ReduceEngine, Transfer};
pub use primitives::{broadcast, parameter_server_round, reduce, CollectiveReport};
pub use schedule::{
    ChunkSpan, CommPhase, CommSchedule, CommSpec, RankOp, ScheduleError, StepOps, UniformStep,
};
pub use swfault::{CollectiveFault, FaultPlan, FaultReport, FaultSession};
pub use topology::{RankMap, Topology, TopologyError, OVERSUBSCRIPTION, SUPERNODE_SIZE};
