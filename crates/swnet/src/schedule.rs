//! Symbolic per-rank communication schedules for the all-reduce
//! algorithms in [`crate::collectives`].
//!
//! A [`CommSpec`] names a collective configuration (topology, rank map,
//! algorithm, buffer geometry); this module derives, in closed form, the
//! exact sequence of bulk-synchronous steps the runtime executes — which
//! rank sends which gradient chunks to which peer, and whether the
//! receiver folds or copies. The collectives themselves consume the same
//! step generator (see `collectives::run_schedule`), so the symbolic
//! schedule is the *single source of truth*, not a parallel
//! re-implementation that could drift: whatever `swcheck::comm` proves
//! about the schedule holds for the simulation by construction.
//!
//! Two representations keep 40k-rank verification cheap:
//!
//! * [`StepOps::Uniform`] — the ring's steps are identical for every rank
//!   up to rotation (`rank r` sends chunk `(r + shift) mod p` to
//!   `r + 1`). One descriptor stands for `p` operations, so checkers can
//!   reason algebraically in O(1) per step instead of materializing the
//!   Θ(p²) operation list.
//! * [`StepOps::Explicit`] — recursive halving/doubling and the binomial
//!   tree have rank-dependent spans; their per-rank operations are
//!   generated from closed forms over the rank's bits (dyadic intervals),
//!   with no mutable per-rank state, so any single step can be produced
//!   in O(p) without replaying the steps before it.
//!
//! Chunk indices, not element offsets, address payloads: each algorithm
//! fixes a chunk table (`chunk_table`) mapping chunk index → element
//! span, mirroring the block geometry of the runtime exactly (including
//! the ring's empty clamped blocks under segmented reduction).

use crate::collectives::Algorithm;
use crate::topology::{RankMap, Topology, TopologyError};

/// Half-open span of chunk indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSpan {
    pub lo: usize,
    pub hi: usize,
}

impl ChunkSpan {
    pub fn new(lo: usize, hi: usize) -> Self {
        ChunkSpan { lo, hi }
    }

    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    pub fn contains(&self, chunk: usize) -> bool {
        self.lo <= chunk && chunk < self.hi
    }
}

/// Which half of the collective a step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPhase {
    /// Partial sums are being combined (reduce-scatter / reduce-to-root):
    /// receivers fold payloads into their accumulators.
    Reduce,
    /// Fully reduced chunks are being distributed (allgather /
    /// broadcast): receivers copy payloads.
    Gather,
}

/// One endpoint operation in a rank's per-step schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankOp {
    /// Logical rank executing the operation.
    pub rank: usize,
    /// Logical peer (destination of a send, source of a recv).
    pub peer: usize,
    /// Send (`true`) or receive (`false`).
    pub is_send: bool,
    /// Chunks carried by the message.
    pub chunks: ChunkSpan,
    /// Whether the receiver folds (`+=`) rather than copies.
    pub reduce: bool,
}

/// A step whose operations are identical for every rank up to rotation:
/// rank `r` sends chunk `(r + chunk_shift) mod p` to `(r + peer_delta)
/// mod p` (and symmetrically receives chunk `(r - peer_delta +
/// chunk_shift) mod p` from `(r - peer_delta) mod p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformStep {
    pub phase: CommPhase,
    pub peer_delta: usize,
    pub chunk_shift: usize,
    pub reduce: bool,
}

/// Symbolic form of one bulk-synchronous step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOps {
    Uniform(UniformStep),
    Explicit { phase: CommPhase, ops: Vec<RankOp> },
}

impl StepOps {
    pub fn phase(&self) -> CommPhase {
        match self {
            StepOps::Uniform(u) => u.phase,
            StepOps::Explicit { phase, .. } => *phase,
        }
    }
}

/// Rejection of an unschedulable configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// RHD and the binomial tree require a power-of-two rank count.
    NonPowerOfTwo { algo: Algorithm, nodes: usize },
    /// The reduced segment exceeds the packed buffer.
    SegmentOutOfBounds { lo: usize, hi: usize, total: usize },
    /// The topology or rank map itself is invalid.
    Topology(TopologyError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NonPowerOfTwo { algo, nodes } => {
                write!(
                    f,
                    "{algo:?} requires a power-of-two rank count, got {nodes}"
                )
            }
            ScheduleError::SegmentOutOfBounds { lo, hi, total } => {
                write!(f, "segment {lo}..{hi} exceeds buffer of {total} elements")
            }
            ScheduleError::Topology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<TopologyError> for ScheduleError {
    fn from(e: TopologyError) -> Self {
        ScheduleError::Topology(e)
    }
}

/// Balanced block partition of `n` elements into `p` blocks (the same
/// geometry the runtime uses).
pub(crate) fn block_range(n: usize, p: usize, b: usize) -> (usize, usize) {
    let base = n / p;
    let rem = n % p;
    let lo = b * base + b.min(rem);
    let hi = lo + base + usize::from(b < rem);
    (lo, hi)
}

/// Intersect a half-open element span with the active segment, collapsing
/// disjoint pairs to an empty span.
pub(crate) fn clamp_span(span: (usize, usize), seg: (usize, usize)) -> (usize, usize) {
    let lo = span.0.max(seg.0);
    let hi = span.1.min(seg.1);
    (lo, lo.max(hi))
}

/// A collective configuration whose schedule can be derived symbolically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommSpec {
    pub topo: Topology,
    pub map: RankMap,
    pub algo: Algorithm,
    /// Packed buffer length in f32 elements.
    pub total_elems: usize,
    /// Reduced segment, half-open.
    pub seg_lo: usize,
    pub seg_hi: usize,
}

impl CommSpec {
    pub fn new(
        topo: Topology,
        map: RankMap,
        algo: Algorithm,
        total_elems: usize,
        segment: std::ops::Range<usize>,
    ) -> Result<Self, ScheduleError> {
        Topology::try_with_supernode(topo.nodes, topo.supernode_size)?;
        if segment.end > total_elems || segment.start > segment.end {
            return Err(ScheduleError::SegmentOutOfBounds {
                lo: segment.start,
                hi: segment.end,
                total: total_elems,
            });
        }
        if matches!(
            algo,
            Algorithm::RecursiveHalvingDoubling | Algorithm::Binomial
        ) && !topo.nodes.is_power_of_two()
        {
            return Err(ScheduleError::NonPowerOfTwo {
                algo,
                nodes: topo.nodes,
            });
        }
        Ok(CommSpec {
            topo,
            map,
            algo,
            total_elems,
            seg_lo: segment.start,
            seg_hi: segment.end,
        })
    }

    /// Whole-buffer convenience constructor.
    pub fn monolithic(
        topo: Topology,
        map: RankMap,
        algo: Algorithm,
        elems: usize,
    ) -> Result<Self, ScheduleError> {
        CommSpec::new(topo, map, algo, elems, 0..elems)
    }

    pub fn nodes(&self) -> usize {
        self.topo.nodes
    }

    /// Number of payload chunks the schedule addresses.
    pub fn num_chunks(&self) -> usize {
        match self.algo {
            Algorithm::Binomial => 1,
            _ => self.topo.nodes,
        }
    }

    /// Chunk index → element span table, matching the runtime's block
    /// geometry exactly.
    pub fn chunk_table(&self) -> Vec<(usize, usize)> {
        let p = self.topo.nodes;
        let seg = (self.seg_lo, self.seg_hi);
        match self.algo {
            // RHD partitions the *segment* into p balanced blocks.
            Algorithm::RecursiveHalvingDoubling => {
                let n = self.seg_hi - self.seg_lo;
                (0..p)
                    .map(|b| {
                        let (lo, hi) = block_range(n, p, b);
                        (self.seg_lo + lo, self.seg_lo + hi)
                    })
                    .collect()
            }
            // The ring runs the monolithic block schedule restricted to
            // the segment: blocks outside clamp to empty spans.
            Algorithm::Ring => (0..p)
                .map(|b| clamp_span(block_range(self.total_elems, p, b), seg))
                .collect(),
            // The binomial tree moves the whole segment as one chunk.
            Algorithm::Binomial => vec![seg],
        }
    }

    /// Element span of a chunk-index span under a materialized table.
    /// Chunk spans are contiguous in element space for every algorithm.
    pub fn elem_span(table: &[(usize, usize)], chunks: ChunkSpan) -> (usize, usize) {
        if chunks.is_empty() {
            return (0, 0);
        }
        (table[chunks.lo].0, table[chunks.hi - 1].1)
    }

    /// Total number of bulk-synchronous steps.
    pub fn num_steps(&self) -> usize {
        let p = self.topo.nodes;
        if p == 1 {
            return 0;
        }
        match self.algo {
            Algorithm::Ring => 2 * (p - 1),
            Algorithm::RecursiveHalvingDoubling | Algorithm::Binomial => {
                2 * p.trailing_zeros() as usize
            }
        }
    }

    /// Number of reduce-phase steps (the first half of the schedule).
    pub fn reduce_steps(&self) -> usize {
        self.num_steps() / 2
    }

    /// Chunks owned (fully reduced) by `rank` at the end of the reduce
    /// phase. The owned spans of all ranks tile the chunk space exactly —
    /// one of the invariants `swcheck::comm` verifies.
    pub fn owned_after_reduce(&self, rank: usize) -> ChunkSpan {
        let p = self.topo.nodes;
        if p == 1 {
            return ChunkSpan::new(0, self.num_chunks());
        }
        match self.algo {
            // Recursive halving leaves rank r with exactly block r.
            Algorithm::RecursiveHalvingDoubling => ChunkSpan::new(rank, rank + 1),
            // After p-1 ring steps rank r holds block (r + 1) mod p.
            Algorithm::Ring => {
                let b = (rank + 1) % p;
                ChunkSpan::new(b, b + 1)
            }
            // The tree reduces everything to rank 0.
            Algorithm::Binomial => {
                if rank == 0 {
                    ChunkSpan::new(0, 1)
                } else {
                    ChunkSpan::new(0, 0)
                }
            }
        }
    }

    /// Symbolic descriptor of one step: a single [`UniformStep`] for the
    /// ring, an explicit op list for RHD / binomial.
    pub fn step_descriptor(&self, step: usize) -> StepOps {
        let p = self.topo.nodes;
        debug_assert!(step < self.num_steps());
        match self.algo {
            Algorithm::Ring => {
                let half = p - 1;
                if step < half {
                    // Reduce-scatter: rank r sends block (r - k) mod p.
                    StepOps::Uniform(UniformStep {
                        phase: CommPhase::Reduce,
                        peer_delta: 1,
                        chunk_shift: (p - step % p) % p,
                        reduce: true,
                    })
                } else {
                    let k = step - half;
                    StepOps::Uniform(UniformStep {
                        phase: CommPhase::Gather,
                        peer_delta: 1,
                        chunk_shift: (p + 1 - k % p) % p,
                        reduce: false,
                    })
                }
            }
            Algorithm::RecursiveHalvingDoubling => {
                let mut ops = Vec::with_capacity(2 * p);
                let phase = self.rhd_step_into(step, &mut ops);
                StepOps::Explicit { phase, ops }
            }
            Algorithm::Binomial => {
                let mut ops = Vec::new();
                let phase = self.binomial_step_into(step, &mut ops);
                StepOps::Explicit { phase, ops }
            }
        }
    }

    /// Expand one step to its full per-rank op list (uniform steps
    /// included), appending into `ops`. Within a step the send and recv
    /// of one rank execute concurrently (sendrecv semantics); the
    /// emission order — ascending rank, send before recv — is the order
    /// the runtime charges transfers in, so cost-model byte accounting is
    /// reproducible from the symbolic schedule alone.
    pub fn expand_step_into(&self, step: usize, ops: &mut Vec<RankOp>) -> CommPhase {
        let p = self.topo.nodes;
        match self.algo {
            Algorithm::Ring => {
                let u = match self.step_descriptor(step) {
                    StepOps::Uniform(u) => u,
                    StepOps::Explicit { .. } => unreachable!("ring steps are uniform"),
                };
                for r in 0..p {
                    let send_chunk = (r + u.chunk_shift) % p;
                    let from = (r + p - u.peer_delta) % p;
                    let recv_chunk = (from + u.chunk_shift) % p;
                    ops.push(RankOp {
                        rank: r,
                        peer: (r + u.peer_delta) % p,
                        is_send: true,
                        chunks: ChunkSpan::new(send_chunk, send_chunk + 1),
                        reduce: u.reduce,
                    });
                    ops.push(RankOp {
                        rank: r,
                        peer: from,
                        is_send: false,
                        chunks: ChunkSpan::new(recv_chunk, recv_chunk + 1),
                        reduce: u.reduce,
                    });
                }
                u.phase
            }
            Algorithm::RecursiveHalvingDoubling => self.rhd_step_into(step, ops),
            Algorithm::Binomial => self.binomial_step_into(step, ops),
        }
    }

    /// RHD step in closed form. Before the reduce step with pair mask
    /// `m`, rank `r` works the dyadic interval `[r & !(2m-1), +2m)` of
    /// chunk space; it keeps its own half `[r & !(m-1), +m)` and sends
    /// the other to partner `r ^ m`. The allgather mirrors this: before
    /// the gather step with mask `m`, rank `r` holds `[r & !(m-1), +m)`
    /// and swaps it with its partner's adjacent interval.
    fn rhd_step_into(&self, step: usize, ops: &mut Vec<RankOp>) -> CommPhase {
        let p = self.topo.nodes;
        let levels = p.trailing_zeros() as usize;
        if step < levels {
            let mask = p >> (step + 1);
            for r in 0..p {
                let partner = r ^ mask;
                let keep_lo = r & !(mask - 1) & !(mask); // lower bits and pair bit cleared
                let keep_lo = keep_lo + if r & mask != 0 { mask } else { 0 };
                let send_lo = partner & !(mask - 1) & !(mask);
                let send_lo = send_lo + if partner & mask != 0 { mask } else { 0 };
                ops.push(RankOp {
                    rank: r,
                    peer: partner,
                    is_send: true,
                    chunks: ChunkSpan::new(send_lo, send_lo + mask),
                    reduce: true,
                });
                ops.push(RankOp {
                    rank: r,
                    peer: partner,
                    is_send: false,
                    chunks: ChunkSpan::new(keep_lo, keep_lo + mask),
                    reduce: true,
                });
            }
            CommPhase::Reduce
        } else {
            let mask = 1 << (step - levels);
            for r in 0..p {
                let partner = r ^ mask;
                let own_lo = r & !(mask - 1);
                let partner_lo = partner & !(mask - 1);
                ops.push(RankOp {
                    rank: r,
                    peer: partner,
                    is_send: true,
                    chunks: ChunkSpan::new(own_lo, own_lo + mask),
                    reduce: false,
                });
                ops.push(RankOp {
                    rank: r,
                    peer: partner,
                    is_send: false,
                    chunks: ChunkSpan::new(partner_lo, partner_lo + mask),
                    reduce: false,
                });
            }
            CommPhase::Gather
        }
    }

    /// Binomial-tree step in closed form: reduce to rank 0 with masks
    /// doubling from 1, then broadcast with masks halving from p/2.
    fn binomial_step_into(&self, step: usize, ops: &mut Vec<RankOp>) -> CommPhase {
        let p = self.topo.nodes;
        let levels = p.trailing_zeros() as usize;
        let whole = ChunkSpan::new(0, 1);
        if step < levels {
            let mask = 1usize << step;
            for r in 0..p {
                if r & mask != 0 && r % mask == 0 {
                    ops.push(RankOp {
                        rank: r,
                        peer: r - mask,
                        is_send: true,
                        chunks: whole,
                        reduce: true,
                    });
                } else if r % (mask * 2) == 0 && r + mask < p {
                    ops.push(RankOp {
                        rank: r,
                        peer: r + mask,
                        is_send: false,
                        chunks: whole,
                        reduce: true,
                    });
                }
            }
            CommPhase::Reduce
        } else {
            let mask = p >> (step - levels + 1);
            for r in 0..p {
                if r % (mask * 2) == 0 && r + mask < p {
                    ops.push(RankOp {
                        rank: r,
                        peer: r + mask,
                        is_send: true,
                        chunks: whole,
                        reduce: false,
                    });
                } else if r % (mask * 2) == mask {
                    ops.push(RankOp {
                        rank: r,
                        peer: r - mask,
                        is_send: false,
                        chunks: whole,
                        reduce: false,
                    });
                }
            }
            CommPhase::Gather
        }
    }

    /// Materialize the whole schedule with every step fully explicit —
    /// the form the exact-mode checker and the hazard-injection tests
    /// consume. Quadratic in `p` for the ring; use the step generators
    /// directly at scale.
    pub fn extract(&self) -> CommSchedule {
        let mut steps = Vec::with_capacity(self.num_steps());
        for s in 0..self.num_steps() {
            let mut ops = Vec::new();
            let phase = self.expand_step_into(s, &mut ops);
            steps.push((phase, ops));
        }
        CommSchedule { spec: *self, steps }
    }
}

/// A fully materialized schedule: every step an explicit op list. The
/// hazard-injection tests mutate `steps` to prove the checker fires.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSchedule {
    pub spec: CommSpec,
    pub steps: Vec<(CommPhase, Vec<RankOp>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(algo: Algorithm, p: usize, elems: usize) -> CommSpec {
        CommSpec::monolithic(
            Topology::with_supernode(p, (p / 2).max(1)),
            RankMap::Natural,
            algo,
            elems,
        )
        .unwrap()
    }

    #[test]
    fn non_power_of_two_is_rejected_for_tree_algorithms() {
        for algo in [Algorithm::RecursiveHalvingDoubling, Algorithm::Binomial] {
            let err =
                CommSpec::monolithic(Topology::with_supernode(6, 3), RankMap::Natural, algo, 100)
                    .unwrap_err();
            assert!(matches!(err, ScheduleError::NonPowerOfTwo { nodes: 6, .. }));
        }
        assert!(CommSpec::monolithic(
            Topology::with_supernode(6, 3),
            RankMap::Natural,
            Algorithm::Ring,
            100
        )
        .is_ok());
    }

    #[test]
    fn bad_segment_is_rejected() {
        let t = Topology::with_supernode(4, 2);
        let err = CommSpec::new(t, RankMap::Natural, Algorithm::Ring, 100, 50..200).unwrap_err();
        assert!(matches!(err, ScheduleError::SegmentOutOfBounds { .. }));
    }

    /// Reference RHD generator with mutable per-rank ranges (the shape of
    /// the original runtime loop), used to pin the closed forms.
    fn rhd_reference(p: usize) -> Vec<Vec<(usize, ChunkSpan, ChunkSpan)>> {
        let mut range: Vec<(usize, usize)> = vec![(0, p); p];
        let mut out = Vec::new();
        let mut mask = p / 2;
        while mask >= 1 {
            let mut step = Vec::new();
            for (r, slot) in range.iter_mut().enumerate() {
                let (lo, hi) = *slot;
                let mid = lo + (hi - lo) / 2;
                let (keep, send) = if r & mask == 0 {
                    ((lo, mid), (mid, hi))
                } else {
                    ((mid, hi), (lo, mid))
                };
                step.push((
                    r ^ mask,
                    ChunkSpan::new(send.0, send.1),
                    ChunkSpan::new(keep.0, keep.1),
                ));
                *slot = keep;
            }
            out.push(step);
            mask /= 2;
        }
        let mut mask = 1;
        while mask < p {
            let snap = range.clone();
            let mut step = Vec::new();
            for r in 0..p {
                let partner = r ^ mask;
                step.push((
                    partner,
                    ChunkSpan::new(snap[r].0, snap[r].1),
                    ChunkSpan::new(snap[partner].0, snap[partner].1),
                ));
                range[r] = (
                    snap[r].0.min(snap[partner].0),
                    snap[r].1.max(snap[partner].1),
                );
            }
            out.push(step);
            mask *= 2;
        }
        out
    }

    #[test]
    fn rhd_closed_form_matches_stateful_reference() {
        for p in [2usize, 4, 8, 16, 64, 256] {
            let s = spec(Algorithm::RecursiveHalvingDoubling, p, 1000);
            let reference = rhd_reference(p);
            assert_eq!(s.num_steps(), reference.len());
            for (si, ref_step) in reference.iter().enumerate() {
                let mut ops = Vec::new();
                s.expand_step_into(si, &mut ops);
                assert_eq!(ops.len(), 2 * p);
                for r in 0..p {
                    let send = &ops[2 * r];
                    let recv = &ops[2 * r + 1];
                    let (partner, ref_send, ref_recv) = ref_step[r];
                    assert!(send.is_send && !recv.is_send);
                    assert_eq!((send.rank, send.peer), (r, partner), "p={p} step {si}");
                    assert_eq!(send.chunks, ref_send, "p={p} step {si} rank {r} send");
                    assert_eq!(recv.chunks, ref_recv, "p={p} step {si} rank {r} recv");
                }
            }
        }
    }

    #[test]
    fn every_send_has_the_matching_recv_on_the_peer() {
        for (algo, ps) in [
            (Algorithm::RecursiveHalvingDoubling, vec![2usize, 8, 32]),
            (Algorithm::Ring, vec![2, 3, 7, 12]),
            (Algorithm::Binomial, vec![2, 8, 16]),
        ] {
            for p in ps {
                let sched = spec(algo, p, 503).extract();
                for (si, (_, ops)) in sched.steps.iter().enumerate() {
                    for op in ops.iter().filter(|o| o.is_send) {
                        let matched = ops.iter().any(|o| {
                            !o.is_send
                                && o.rank == op.peer
                                && o.peer == op.rank
                                && o.chunks == op.chunks
                                && o.reduce == op.reduce
                        });
                        assert!(matched, "{algo:?} p={p} step {si}: unmatched {op:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn owned_spans_tile_the_chunk_space() {
        for (algo, ps) in [
            (Algorithm::RecursiveHalvingDoubling, vec![2usize, 16]),
            (Algorithm::Ring, vec![2, 5, 9]),
            (Algorithm::Binomial, vec![4, 8]),
        ] {
            for p in ps {
                let s = spec(algo, p, 101);
                let mut covered = vec![0usize; s.num_chunks()];
                for r in 0..p {
                    let o = s.owned_after_reduce(r);
                    for slot in &mut covered[o.lo..o.hi] {
                        *slot += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "{algo:?} p={p}: ownership not a partition: {covered:?}"
                );
            }
        }
    }

    #[test]
    fn chunk_tables_tile_the_segment() {
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            let p = 8;
            let s = CommSpec::new(
                Topology::with_supernode(p, 4),
                RankMap::Natural,
                algo,
                1013,
                37..402,
            )
            .unwrap();
            let table = s.chunk_table();
            let mut nonempty: Vec<(usize, usize)> =
                table.iter().copied().filter(|(lo, hi)| hi > lo).collect();
            nonempty.sort_unstable();
            assert_eq!(nonempty.first().unwrap().0, 37, "{algo:?}");
            assert_eq!(nonempty.last().unwrap().1, 402, "{algo:?}");
            for w in nonempty.windows(2) {
                assert_eq!(w[0].1, w[1].0, "{algo:?}: gap or overlap at {w:?}");
            }
        }
    }

    #[test]
    fn ring_uniform_descriptor_agrees_with_expansion() {
        let p = 7;
        let s = spec(Algorithm::Ring, p, 91);
        for step in 0..s.num_steps() {
            let StepOps::Uniform(u) = s.step_descriptor(step) else {
                panic!("ring step {step} should be uniform");
            };
            let mut ops = Vec::new();
            s.expand_step_into(step, &mut ops);
            for r in 0..p {
                let send = &ops[2 * r];
                assert_eq!(send.peer, (r + u.peer_delta) % p);
                assert_eq!(send.chunks.lo, (r + u.chunk_shift) % p);
                assert_eq!(send.reduce, u.reduce);
            }
        }
    }
}
