//! TaihuLight interconnect topology (Sec. II-B).
//!
//! Two levels: supernodes of 256 nodes with full intra-supernode
//! bandwidth, and a central switching network between supernodes
//! provisioned at **one quarter** of the aggregate — the over-subscription
//! at the heart of the paper's all-reduce redesign.

/// Nodes per supernode on the real machine.
pub const SUPERNODE_SIZE: usize = 256;

/// Over-subscription factor of the central switching network.
pub const OVERSUBSCRIPTION: usize = 4;

/// Typed rejection of an invalid allocation or rank mapping. Construction
/// and mapping used to `assert!`; the checked constructors below return
/// this instead so callers (the cluster trainer's shrink path, the
/// `swcheck::comm` static verifier) can surface configuration errors
/// without aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// An allocation of zero nodes.
    ZeroNodes,
    /// A supernode size of zero (the machine minimum is one node).
    ZeroSupernodeSize,
    /// A logical rank at or beyond the node count.
    RankOutOfRange { logical: usize, nodes: usize },
    /// Two logical ranks mapped onto one physical node.
    NonBijectiveMap {
        logical_a: usize,
        logical_b: usize,
        physical: usize,
    },
    /// A logical rank mapped to a physical node outside the allocation.
    PhantomPhysical { logical: usize, physical: usize },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroNodes => write!(f, "topology must hold at least one node"),
            TopologyError::ZeroSupernodeSize => {
                write!(f, "supernode size must be at least one node")
            }
            TopologyError::RankOutOfRange { logical, nodes } => {
                write!(f, "logical rank {logical} out of range for {nodes} nodes")
            }
            TopologyError::NonBijectiveMap {
                logical_a,
                logical_b,
                physical,
            } => write!(
                f,
                "logical ranks {logical_a} and {logical_b} both map to physical node {physical}"
            ),
            TopologyError::PhantomPhysical { logical, physical } => write!(
                f,
                "logical rank {logical} maps to phantom physical node {physical}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A job allocation: `nodes` ranks spread over supernodes of `supernode_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub supernode_size: usize,
}

impl Topology {
    /// Standard allocation: contiguous ranks, 256-node supernodes.
    pub fn new(nodes: usize) -> Self {
        Topology::try_new(nodes).expect("invalid topology")
    }

    /// Checked [`Topology::new`].
    pub fn try_new(nodes: usize) -> Result<Self, TopologyError> {
        Topology::try_with_supernode(nodes, SUPERNODE_SIZE)
    }

    /// Test-friendly allocation with a custom supernode size.
    pub fn with_supernode(nodes: usize, supernode_size: usize) -> Self {
        Topology::try_with_supernode(nodes, supernode_size).expect("invalid topology")
    }

    /// Checked [`Topology::with_supernode`].
    pub fn try_with_supernode(nodes: usize, supernode_size: usize) -> Result<Self, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::ZeroNodes);
        }
        if supernode_size == 0 {
            return Err(TopologyError::ZeroSupernodeSize);
        }
        Ok(Topology {
            nodes,
            supernode_size,
        })
    }

    /// Supernode housing a physical rank.
    pub fn supernode_of(&self, rank: usize) -> usize {
        rank / self.supernode_size
    }

    /// Number of (partially) occupied supernodes.
    pub fn supernodes(&self) -> usize {
        self.nodes.div_ceil(self.supernode_size)
    }

    /// Nodes co-located in one supernode (the paper's `q`), for full
    /// supernodes.
    pub fn q(&self) -> usize {
        self.supernode_size.min(self.nodes)
    }

    /// Whether a physical pair communicates across the central switch.
    pub fn crosses(&self, a: usize, b: usize) -> bool {
        self.supernode_of(a) != self.supernode_of(b)
    }
}

/// Rank mapping between the collective's logical numbering and physical
/// node placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMap {
    /// MPI default: logical == physical (supernodes hold contiguous
    /// logical ranks).
    Natural,
    /// The paper's improvement: logical ranks assigned to supernodes
    /// round-robin, so large-message (large-distance) exchanges stay
    /// inside a supernode and only the small tail crosses the switch.
    RoundRobin,
}

impl RankMap {
    /// Physical node of a logical rank. Bijective for *every* allocation,
    /// including partially filled supernodes: physical nodes form a
    /// ragged matrix (one row per supernode, the last row possibly
    /// short), and logical ranks traverse it column by column — the
    /// round-robin order — switching to the shorter column height once
    /// the partial supernode is exhausted.
    pub fn physical(&self, topo: &Topology, logical: usize) -> usize {
        self.try_physical(topo, logical)
            .expect("invalid rank mapping")
    }

    /// Checked [`RankMap::physical`].
    pub fn try_physical(&self, topo: &Topology, logical: usize) -> Result<usize, TopologyError> {
        if logical >= topo.nodes {
            return Err(TopologyError::RankOutOfRange {
                logical,
                nodes: topo.nodes,
            });
        }
        Ok(match self {
            RankMap::Natural => logical,
            RankMap::RoundRobin => {
                let s = topo.supernodes();
                if s <= 1 {
                    return Ok(logical);
                }
                let ss = topo.supernode_size;
                // The first s-1 supernodes are full; the last holds the
                // remainder (1..=ss nodes).
                let rem = topo.nodes - (s - 1) * ss;
                let (sn, idx) = if logical < rem * s {
                    // Columns 0..rem exist in all s supernodes.
                    (logical % s, logical / s)
                } else {
                    // Columns rem..ss only exist in the s-1 full ones.
                    let l = logical - rem * s;
                    (l % (s - 1), rem + l / (s - 1))
                };
                sn * ss + idx
            }
        })
    }

    /// Materialize and validate the full logical→physical table: every
    /// logical rank must land on a distinct, existing physical node. The
    /// closed-form ragged-matrix mapping is proven bijective by tests,
    /// but the static checker re-establishes it per configuration so a
    /// future mapping bug cannot silently alias two ranks' gradients.
    pub fn physical_table(&self, topo: &Topology) -> Result<Vec<usize>, TopologyError> {
        let mut owner = vec![usize::MAX; topo.nodes];
        let mut table = Vec::with_capacity(topo.nodes);
        for logical in 0..topo.nodes {
            let physical = self.try_physical(topo, logical)?;
            if physical >= topo.nodes {
                return Err(TopologyError::PhantomPhysical { logical, physical });
            }
            if owner[physical] != usize::MAX {
                return Err(TopologyError::NonBijectiveMap {
                    logical_a: owner[physical],
                    logical_b: logical,
                    physical,
                });
            }
            owner[physical] = logical;
            table.push(physical);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supernode_membership() {
        let t = Topology::new(1024);
        assert_eq!(t.supernodes(), 4);
        assert_eq!(t.supernode_of(0), 0);
        assert_eq!(t.supernode_of(255), 0);
        assert_eq!(t.supernode_of(256), 1);
        assert!(t.crosses(10, 300));
        assert!(!t.crosses(10, 200));
    }

    #[test]
    fn round_robin_spreads_adjacent_logicals() {
        // Paper example: 4 supernodes; logical 0,4,8,... in supernode 0,
        // logical 1,5,9,... in supernode 1, etc.
        let t = Topology::with_supernode(16, 4);
        let m = RankMap::RoundRobin;
        for l in 0..16 {
            assert_eq!(t.supernode_of(m.physical(&t, l)), l % 4, "logical {l}");
        }
        // Bijective.
        let mut seen: Vec<usize> = (0..16).map(|l| m.physical(&t, l)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn natural_is_identity() {
        let t = Topology::new(512);
        for l in [0, 100, 511] {
            assert_eq!(RankMap::Natural.physical(&t, l), l);
        }
    }

    #[test]
    fn round_robin_is_bijective_for_uneven_allocations() {
        // Property sweep: for every allocation — including node counts
        // that do not divide evenly into supernodes — the mapping must be
        // a permutation of the physical ranks, and every physical rank it
        // produces must actually exist.
        for supernode_size in 1..=9usize {
            for nodes in 1..=40usize {
                let t = Topology::with_supernode(nodes, supernode_size);
                let m = RankMap::RoundRobin;
                let mut seen: Vec<usize> = (0..nodes).map(|l| m.physical(&t, l)).collect();
                for (l, &phys) in seen.iter().enumerate() {
                    assert!(
                        phys < nodes,
                        "nodes={nodes} ss={supernode_size}: logical {l} -> phantom physical {phys}"
                    );
                }
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..nodes).collect::<Vec<_>>(),
                    "nodes={nodes} ss={supernode_size}: mapping is not bijective"
                );
            }
        }
    }

    #[test]
    fn round_robin_spreads_uneven_fill_across_supernodes() {
        // The issue's example: 10 nodes over supernodes of 4 used to map
        // two logical ranks onto one physical node. Now adjacent logical
        // ranks land in distinct supernodes while all three supernodes
        // (4 + 4 + 2 nodes) are used.
        let t = Topology::with_supernode(10, 4);
        let m = RankMap::RoundRobin;
        for l in 0..5 {
            assert_ne!(
                t.supernode_of(m.physical(&t, 2 * l)),
                t.supernode_of(m.physical(&t, 2 * l + 1)),
                "adjacent logical ranks {l} share a supernode"
            );
        }
    }

    #[test]
    fn zero_node_allocation_is_rejected() {
        assert_eq!(Topology::try_new(0), Err(TopologyError::ZeroNodes));
        assert_eq!(
            Topology::try_with_supernode(0, 4),
            Err(TopologyError::ZeroNodes)
        );
    }

    #[test]
    fn zero_supernode_size_is_rejected() {
        assert_eq!(
            Topology::try_with_supernode(8, 0),
            Err(TopologyError::ZeroSupernodeSize)
        );
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn panicking_constructor_still_guards() {
        let _ = Topology::with_supernode(8, 0);
    }

    #[test]
    fn out_of_range_rank_is_rejected() {
        let t = Topology::with_supernode(8, 4);
        for map in [RankMap::Natural, RankMap::RoundRobin] {
            assert_eq!(
                map.try_physical(&t, 8),
                Err(TopologyError::RankOutOfRange {
                    logical: 8,
                    nodes: 8
                })
            );
            assert_eq!(
                map.try_physical(&t, usize::MAX),
                Err(TopologyError::RankOutOfRange {
                    logical: usize::MAX,
                    nodes: 8
                })
            );
        }
    }

    #[test]
    fn physical_table_proves_bijectivity() {
        for supernode_size in 1..=9usize {
            for nodes in 1..=40usize {
                let t = Topology::with_supernode(nodes, supernode_size);
                for map in [RankMap::Natural, RankMap::RoundRobin] {
                    let table = map.physical_table(&t).expect("bijective");
                    assert_eq!(table.len(), nodes);
                }
            }
        }
    }

    #[test]
    fn topology_error_messages_name_the_offenders() {
        let msg = TopologyError::NonBijectiveMap {
            logical_a: 3,
            logical_b: 7,
            physical: 5,
        }
        .to_string();
        assert!(
            msg.contains('3') && msg.contains('7') && msg.contains('5'),
            "{msg}"
        );
        assert!(TopologyError::ZeroNodes
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn round_robin_keeps_large_distances_local() {
        // Fig. 7's point: with round-robin mapping, logical distance p/2
        // stays inside a supernode.
        let t = Topology::with_supernode(8, 4);
        let m = RankMap::RoundRobin;
        for l in 0..4 {
            let a = m.physical(&t, l);
            let b = m.physical(&t, l + 4);
            assert!(
                !t.crosses(a, b),
                "distance-4 pair ({l}) must be intra-supernode"
            );
        }
        // And distance 1 crosses.
        let a = m.physical(&t, 0);
        let b = m.physical(&t, 1);
        assert!(t.crosses(a, b));
    }
}
