//! Property-based tests of the collectives: every algorithm must compute
//! the exact same sums for arbitrary node counts, payload sizes and
//! topologies, and the structural traffic invariants must hold.

use proptest::prelude::*;
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

fn node_data(p: usize, elems: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let data: Vec<Vec<f32>> = (0..p)
        .map(|r| {
            (0..elems)
                .map(|i| {
                    let x = ((r * 1000 + i) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    ((x >> 40) % 100) as f32 / 10.0 - 5.0
                })
                .collect()
        })
        .collect();
    let mut want = vec![0.0f32; elems];
    for row in &data {
        for (w, v) in want.iter_mut().zip(row) {
            *w += v;
        }
    }
    (data, want)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_algorithms_compute_the_same_sum(
        log_p in 1u32..5,
        elems in 1usize..200,
        q_div in 1usize..3,
        round_robin in prop::bool::ANY,
    ) {
        let p = 1usize << log_p;
        let q = (p / (1 << q_div)).max(1);
        let topo = Topology::with_supernode(p, q);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let map = if round_robin { RankMap::RoundRobin } else { RankMap::Natural };
        let (_, want) = node_data(p, elems);
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            let (mut data, _) = node_data(p, elems);
            allreduce(&topo, &params, map, algo, elems, Some(&mut data));
            for (r, row) in data.iter().enumerate() {
                for (i, (g, w)) in row.iter().zip(&want).enumerate() {
                    prop_assert!(
                        (g - w).abs() < 1e-3 * w.abs().max(1.0),
                        "{algo:?}/{map:?} p={p} q={q}: node {r} elem {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_works_for_any_node_count(p in 2usize..12, elems in 1usize..100) {
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (mut data, want) = node_data(p, elems);
        allreduce(&topo, &params, RankMap::Natural, Algorithm::Ring, elems, Some(&mut data));
        for row in &data {
            for (g, w) in row.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
            }
        }
    }

    #[test]
    fn round_robin_never_increases_cross_traffic(
        log_p in 2u32..6,
        q_div in 1usize..3,
        elems in 64usize..10_000,
    ) {
        let p = 1usize << log_p;
        let q = (p / (1 << q_div)).max(2);
        let topo = Topology::with_supernode(p, q);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let nat = allreduce(
            &topo, &params, RankMap::Natural, Algorithm::RecursiveHalvingDoubling, elems, None,
        );
        let rr = allreduce(
            &topo, &params, RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling, elems, None,
        );
        prop_assert!(
            rr.cross_bytes <= nat.cross_bytes,
            "remap increased cross traffic: {} vs {}",
            rr.cross_bytes,
            nat.cross_bytes
        );
        prop_assert_eq!(rr.total_bytes, nat.total_bytes);
        prop_assert_eq!(rr.steps, nat.steps);
    }

    #[test]
    fn allreduce_time_is_monotone_in_payload(
        log_p in 1u32..6,
        elems in 64usize..100_000,
    ) {
        let p = 1usize << log_p;
        let topo = Topology::new(p);
        let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
        let t1 = allreduce(
            &topo, &params, RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling, elems, None,
        )
        .elapsed
        .seconds();
        let t2 = allreduce(
            &topo, &params, RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling, 2 * elems, None,
        )
        .elapsed
        .seconds();
        prop_assert!(t2 >= t1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn broadcast_and_reduce_are_duals(
        log_p in 1u32..5,
        elems in 1usize..100,
    ) {
        use swnet::{broadcast, reduce};
        let p = 1usize << log_p;
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::Mpe);
        let (mut data, want) = node_data(p, elems);
        reduce(&topo, &params, RankMap::Natural, elems, Some(&mut data));
        for (g, w) in data[0].iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
        }
        broadcast(&topo, &params, RankMap::Natural, elems, Some(&mut data));
        for row in &data {
            for (g, w) in row.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
            }
        }
    }
}
