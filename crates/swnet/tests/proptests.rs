//! Randomised-but-deterministic tests of the collectives: every algorithm
//! must compute the exact same sums for many node counts, payload sizes
//! and topologies, and the structural traffic invariants must hold.
//!
//! Cases are drawn from a fixed-seed SplitMix64 stream instead of a
//! property-testing framework so the suite runs with zero external
//! dependencies and every failure reproduces exactly.

use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

/// Deterministic case generator (SplitMix64).
struct CaseRng {
    state: u64,
}

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn node_data(p: usize, elems: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let data: Vec<Vec<f32>> = (0..p)
        .map(|r| {
            (0..elems)
                .map(|i| {
                    let x = ((r * 1000 + i) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    ((x >> 40) % 100) as f32 / 10.0 - 5.0
                })
                .collect()
        })
        .collect();
    let mut want = vec![0.0f32; elems];
    for row in &data {
        for (w, v) in want.iter_mut().zip(row) {
            *w += v;
        }
    }
    (data, want)
}

#[test]
fn all_algorithms_compute_the_same_sum() {
    let mut rng = CaseRng::new(0xA11);
    for _ in 0..16 {
        let log_p = rng.range(1, 5) as u32;
        let elems = rng.range(1, 200);
        let q_div = rng.range(1, 3);
        let round_robin = rng.flag();
        let p = 1usize << log_p;
        let q = (p / (1 << q_div)).max(1);
        let topo = Topology::with_supernode(p, q);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let map = if round_robin {
            RankMap::RoundRobin
        } else {
            RankMap::Natural
        };
        let (_, want) = node_data(p, elems);
        for algo in [
            Algorithm::RecursiveHalvingDoubling,
            Algorithm::Ring,
            Algorithm::Binomial,
        ] {
            let (mut data, _) = node_data(p, elems);
            allreduce(&topo, &params, map, algo, elems, Some(&mut data));
            for (r, row) in data.iter().enumerate() {
                for (i, (g, w)) in row.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() < 1e-3 * w.abs().max(1.0),
                        "{algo:?}/{map:?} p={p} q={q}: node {r} elem {i}: {g} vs {w}"
                    );
                }
            }
        }
    }
}

#[test]
fn ring_works_for_any_node_count() {
    let mut rng = CaseRng::new(0x4165);
    for _ in 0..16 {
        let p = rng.range(2, 12);
        let elems = rng.range(1, 100);
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let (mut data, want) = node_data(p, elems);
        allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::Ring,
            elems,
            Some(&mut data),
        );
        for row in &data {
            for (g, w) in row.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
            }
        }
    }
}

#[test]
fn round_robin_never_increases_cross_traffic() {
    let mut rng = CaseRng::new(0x4242);
    for _ in 0..16 {
        let log_p = rng.range(2, 6) as u32;
        let q_div = rng.range(1, 3);
        let elems = rng.range(64, 10_000);
        let p = 1usize << log_p;
        let q = (p / (1 << q_div)).max(2);
        let topo = Topology::with_supernode(p, q);
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        let nat = allreduce(
            &topo,
            &params,
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        let rr = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        assert!(
            rr.cross_bytes <= nat.cross_bytes,
            "remap increased cross traffic: {} vs {}",
            rr.cross_bytes,
            nat.cross_bytes
        );
        assert_eq!(rr.total_bytes, nat.total_bytes);
        assert_eq!(rr.steps, nat.steps);
    }
}

#[test]
fn allreduce_time_is_monotone_in_payload() {
    let mut rng = CaseRng::new(0x7107);
    for _ in 0..16 {
        let log_p = rng.range(1, 6) as u32;
        let elems = rng.range(64, 100_000);
        let p = 1usize << log_p;
        let topo = Topology::new(p);
        let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
        let t1 = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        )
        .elapsed
        .seconds();
        let t2 = allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            2 * elems,
            None,
        )
        .elapsed
        .seconds();
        assert!(t2 >= t1);
    }
}

#[test]
fn broadcast_and_reduce_are_duals() {
    use swnet::{broadcast, reduce};
    let mut rng = CaseRng::new(0xD0A1);
    for _ in 0..8 {
        let log_p = rng.range(1, 5) as u32;
        let elems = rng.range(1, 100);
        let p = 1usize << log_p;
        let topo = Topology::with_supernode(p, (p / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::Mpe);
        let (mut data, want) = node_data(p, elems);
        reduce(&topo, &params, RankMap::Natural, elems, Some(&mut data));
        for (g, w) in data[0].iter().zip(&want) {
            assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
        }
        broadcast(&topo, &params, RankMap::Natural, elems, Some(&mut data));
        for row in &data {
            for (g, w) in row.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3 * w.abs().max(1.0));
            }
        }
    }
}
