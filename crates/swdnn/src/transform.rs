//! Tensor-transformation layer (Sec. IV-C).
//!
//! The explicit plan (and every other layer) uses Caffe's default NCHW
//! layout `(B, N, R, C)`; the implicit plan needs `(R, C, N, B)` so that
//! the (channel, batch) fibre at a pixel is a contiguous matrix block.
//! swCaffe inserts a transformation layer around runs of implicit-plan
//! convolutions. The movement is irregular, so it runs on the CPE cluster
//! as strided DMA plus in-LDM transposes (standing in for the SIMD shuffle
//! sequence on silicon).
//!
//! Filters `(N_o, N_i, K, K)` -> `(K, K, N_o, N_i)` are converted once at
//! layer setup (host-side helper, not charged — the paper treats filter
//! layout as layer-local state).

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

/// Dimensions of an NCHW <-> RCNB transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransShape {
    pub batch: usize,
    pub channels: usize,
    pub height: usize,
    pub width: usize,
}

impl TransShape {
    pub fn len(&self) -> usize {
        self.batch * self.channels * self.height * self.width
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Batch-chunk size: how many images' worth of a row fit in a 16 KB LDM
/// staging buffer.
fn batch_chunk(shape: &TransShape) -> usize {
    let per_b = shape.width * 4;
    (16 * 1024 / per_b).clamp(1, shape.batch)
}

/// Static LDM descriptor of both layout-transform kernels (they allocate
/// the same staging pair).
pub fn kernel_plan(name: &str, shape: &TransShape) -> KernelPlan {
    let bc = batch_chunk(shape);
    KernelPlan::new(name, 64)
        .buffer("buf", shape.width * bc * 4)
        .buffer("out", shape.width * bc * 4)
}

/// NCHW -> RCNB on the CPE cluster.
pub fn nchw_to_rcnb(
    cg: &mut CoreGroup,
    shape: &TransShape,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model(shape),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, output) = io.expect("functional transform requires operands");
    assert_eq!(input.len(), shape.len());
    assert_eq!(output.len(), shape.len());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::nchw_to_rcnb(threads, shape, input, output);
        return LaunchReport::default();
    }
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    let bc = batch_chunk(shape);
    let src = MemView::new(input);
    let dst = MemViewMut::new(output);
    let items = h * n_tot;
    cg.run_planned(&kernel_plan("swdnn.nchw_to_rcnb", shape), move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(w * bc);
        let mut out = cpe.ldm.alloc_f32(w * bc);
        let mut item = cpe.idx();
        while item < items {
            let y = item / n_tot;
            let n = item % n_tot;
            let mut b0 = 0;
            while b0 < b_tot {
                let cb = bc.min(b_tot - b0);
                // Gather rows [b0..b0+cb][n][y][:] (stride N*H*W between images).
                cpe.dma_get_strided(
                    src,
                    ((b0 * n_tot + n) * h + y) * w,
                    w,
                    n_tot * h * w,
                    cb,
                    &mut buf,
                );
                // Transpose (cb x w) -> (w x cb) in LDM (SIMD shuffles).
                cpe.compute((w * cb) as u64, || {
                    for bi in 0..cb {
                        for x in 0..w {
                            out[x * cb + bi] = buf[bi * w + x];
                        }
                    }
                });
                // Scatter to [y][x][n][b0..b0+cb] (stride N*B between x's).
                cpe.dma_put_strided(
                    dst,
                    (y * w * n_tot + n) * b_tot + b0,
                    cb,
                    n_tot * b_tot,
                    w,
                    &out[..w * cb],
                );
                b0 += cb;
            }
            item += 64;
        }
    })
}

/// RCNB -> NCHW on the CPE cluster.
pub fn rcnb_to_nchw(
    cg: &mut CoreGroup,
    shape: &TransShape,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model(shape),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, output) = io.expect("functional transform requires operands");
    assert_eq!(input.len(), shape.len());
    assert_eq!(output.len(), shape.len());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::rcnb_to_nchw(threads, shape, input, output);
        return LaunchReport::default();
    }
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    let bc = batch_chunk(shape);
    let src = MemView::new(input);
    let dst = MemViewMut::new(output);
    let items = h * n_tot;
    cg.run_planned(&kernel_plan("swdnn.rcnb_to_nchw", shape), move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(w * bc);
        let mut out = cpe.ldm.alloc_f32(w * bc);
        let mut item = cpe.idx();
        while item < items {
            let y = item / n_tot;
            let n = item % n_tot;
            let mut b0 = 0;
            while b0 < b_tot {
                let cb = bc.min(b_tot - b0);
                // Gather [y][x][n][b0..b0+cb] for all x.
                cpe.dma_get_strided(
                    src,
                    (y * w * n_tot + n) * b_tot + b0,
                    cb,
                    n_tot * b_tot,
                    w,
                    &mut buf[..w * cb],
                );
                // Transpose (w x cb) -> (cb x w).
                cpe.compute((w * cb) as u64, || {
                    for x in 0..w {
                        for bi in 0..cb {
                            out[bi * w + x] = buf[x * cb + bi];
                        }
                    }
                });
                // Scatter rows to [b][n][y][:].
                cpe.dma_put_strided(
                    dst,
                    ((b0 * n_tot + n) * h + y) * w,
                    w,
                    n_tot * h * w,
                    cb,
                    &out[..w * cb],
                );
                b0 += cb;
            }
            item += 64;
        }
    })
}

/// Closed-form duration of either direction of the transform.
pub fn time_model(shape: &TransShape) -> SimTime {
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    let bc = batch_chunk(shape);
    let chunks = b_tot.div_ceil(bc);
    let per_chunk = dma::strided_time(w * 4, bc, 64).seconds()
        + crate::gemm_flop_time((w * bc) as u64).seconds()
        + dma::strided_time(bc * 4, w, 64).seconds();
    let per_item = chunks as f64 * per_chunk;
    let per_cpe = (h * n_tot).div_ceil(64) as f64 * per_item;
    SimTime::from_seconds(sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + per_cpe)
}

/// Host-side reference / setup helper: NCHW -> RCNB.
pub fn nchw_to_rcnb_host(shape: &TransShape, input: &[f32], output: &mut [f32]) {
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    for b in 0..b_tot {
        for n in 0..n_tot {
            for y in 0..h {
                for x in 0..w {
                    output[((y * w + x) * n_tot + n) * b_tot + b] =
                        input[((b * n_tot + n) * h + y) * w + x];
                }
            }
        }
    }
}

/// Host-side reference / setup helper: RCNB -> NCHW.
pub fn rcnb_to_nchw_host(shape: &TransShape, input: &[f32], output: &mut [f32]) {
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    for b in 0..b_tot {
        for n in 0..n_tot {
            for y in 0..h {
                for x in 0..w {
                    output[((b * n_tot + n) * h + y) * w + x] =
                        input[((y * w + x) * n_tot + n) * b_tot + b];
                }
            }
        }
    }
}

/// Filter layout conversion `(N_o, N_i, K, K)` -> `(K, K, N_o, N_i)`,
/// done once at layer setup.
pub fn filters_oikk_to_kkon(no: usize, ni: usize, k: usize, w: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), no * ni * k * k);
    let mut out = vec![0.0f32; w.len()];
    for o in 0..no {
        for i in 0..ni {
            for ky in 0..k {
                for kx in 0..k {
                    out[((ky * k + kx) * no + o) * ni + i] = w[((o * ni + i) * k + ky) * k + kx];
                }
            }
        }
    }
    out
}

/// Inverse filter layout conversion `(K, K, N_o, N_i)` -> `(N_o, N_i, K, K)`.
pub fn filters_kkon_to_oikk(no: usize, ni: usize, k: usize, w: &[f32]) -> Vec<f32> {
    assert_eq!(w.len(), no * ni * k * k);
    let mut out = vec![0.0f32; w.len()];
    for o in 0..no {
        for i in 0..ni {
            for ky in 0..k {
                for kx in 0..k {
                    out[((o * ni + i) * k + ky) * k + kx] = w[((ky * k + kx) * no + o) * ni + i];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::ExecMode;

    fn pattern(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 17) % 101) as f32 - 50.0).collect()
    }

    #[test]
    fn mesh_transform_matches_host() {
        let shape = TransShape {
            batch: 6,
            channels: 5,
            height: 7,
            width: 9,
        };
        let input = pattern(shape.len());
        let mut want = vec![0.0; shape.len()];
        nchw_to_rcnb_host(&shape, &input, &mut want);
        let mut got = vec![f32::NAN; shape.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        nchw_to_rcnb(&mut cg, &shape, Some((&input, &mut got)));
        assert_eq!(got, want);
    }

    #[test]
    fn mesh_inverse_matches_host() {
        let shape = TransShape {
            batch: 6,
            channels: 5,
            height: 7,
            width: 9,
        };
        let rcnb = pattern(shape.len());
        let mut want = vec![0.0; shape.len()];
        rcnb_to_nchw_host(&shape, &rcnb, &mut want);
        let mut got = vec![f32::NAN; shape.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        rcnb_to_nchw(&mut cg, &shape, Some((&rcnb, &mut got)));
        assert_eq!(got, want);
    }

    #[test]
    fn roundtrip_is_identity() {
        let shape = TransShape {
            batch: 3,
            channels: 4,
            height: 6,
            width: 6,
        };
        let input = pattern(shape.len());
        let mut mid = vec![0.0; shape.len()];
        let mut back = vec![0.0; shape.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        nchw_to_rcnb(&mut cg, &shape, Some((&input, &mut mid)));
        rcnb_to_nchw(&mut cg, &shape, Some((&mid, &mut back)));
        assert_eq!(back, input);
    }

    #[test]
    fn chunking_handles_wide_rows() {
        // width*batch*4 > 16 KB forces multiple batch chunks.
        let shape = TransShape {
            batch: 40,
            channels: 2,
            height: 3,
            width: 224,
        };
        assert!(batch_chunk(&shape) < shape.batch);
        let input = pattern(shape.len());
        let mut got = vec![f32::NAN; shape.len()];
        let mut want = vec![0.0; shape.len()];
        nchw_to_rcnb_host(&shape, &input, &mut want);
        let mut cg = CoreGroup::new(ExecMode::Functional);
        nchw_to_rcnb(&mut cg, &shape, Some((&input, &mut got)));
        assert_eq!(got, want);
    }

    #[test]
    fn filter_roundtrip() {
        let (no, ni, k) = (6, 5, 3);
        let w = pattern(no * ni * k * k);
        let kkon = filters_oikk_to_kkon(no, ni, k, &w);
        assert_eq!(filters_kkon_to_oikk(no, ni, k, &kkon), w);
        // Spot-check one element.
        assert_eq!(
            kkon[((k + 2) * no + 4) * ni + 3],
            w[((4 * ni + 3) * k + 1) * k + 2]
        );
    }

    #[test]
    fn model_matches_mesh() {
        let shape = TransShape {
            batch: 16,
            channels: 32,
            height: 14,
            width: 14,
        };
        let input = pattern(shape.len());
        let mut out = vec![0.0; shape.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = nchw_to_rcnb(&mut cg, &shape, Some((&input, &mut out)));
        let model = time_model(&shape);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn timing_mode_charges_model() {
        let shape = TransShape {
            batch: 64,
            channels: 128,
            height: 56,
            width: 56,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let r = nchw_to_rcnb(&mut cg, &shape, None);
        assert_eq!(r.elapsed, time_model(&shape));
    }
}
