//! Blocked GEMM on the 8x8 CPE mesh with register-communication
//! broadcasts — the algorithm of Fig. 3 in the paper (after swDNN \[4\] and
//! Jiang et al. \[8\]).
//!
//! ## Algorithm
//!
//! Panels of `C` of size `(8*mt) x (8*nt)` are distributed so CPE `(i, j)`
//! owns an `mt x nt` tile. For each `8*kt`-wide K panel, CPE `(i, j)` DMA-
//! loads its own `mt x kt` tile of `A` and `kt x nt` tile of `B`, widened
//! to f64 (the chip has no single-precision register communication). The
//! panel product then takes 8 steps: at step `t`, CPE `(i, t)` broadcasts
//! its `A` tile along row `i` and CPE `(t, j)` broadcasts its `B` tile
//! along column `j`, and every CPE accumulates
//! `C(i,j) += A(i,t) * B(t,j)` in its LDM. Each element of `A` and `B` is
//! fetched from memory *once* per panel pass — the highest flop-per-byte
//! plan available on this machine (Principle 4).
//!
//! ## Two execution paths, one cost
//!
//! * **Functional**: the plan above runs on 64 real threads against the
//!   `sw26010` simulator; results are tested against [`crate::reference`].
//! * **Timing-only**: [`time_model`] charges the same plan analytically.
//!   `tests` assert the two paths agree (time within a few percent —
//!   the residual is barrier-free clock drift between steps — and
//!   counters exactly).

use sw26010::arch::{CPE_DP_FLOPS_PER_CYCLE, KERNEL_COMPUTE_EFFICIENCY, MESH_DIM};
use sw26010::rlc::{transfer_cycles, RLC_HOP_CYCLES};
use sw26010::{
    dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, RlcPattern, SimTime, Stats,
};

use crate::scheme::{Broadcast, Buffering, TilingScheme};
use crate::shapes::{GemmDims, Trans};

/// Per-CPE tile extents of a GEMM plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Rows of C per CPE.
    pub mt: usize,
    /// Columns of C per CPE.
    pub nt: usize,
    /// K extent per CPE per panel.
    pub kt: usize,
}

/// Largest square tile edge that keeps the working set
/// (3 owned tiles + 2 receive buffers in f64, one f32 staging buffer)
/// inside the 64 KB LDM.
pub const MAX_TILE: usize = 32;

impl TilePlan {
    /// Choose tile extents for a problem size: full 32-wide tiles when the
    /// dimensions allow, shrunk to `ceil(dim / 8)` for small dimensions so
    /// no CPE is left entirely idle unless the dimension is smaller than
    /// the mesh itself. The result is always feasible: the pick is run
    /// through [`TilePlan::shrink_to_fit`], a *checked* path that holds in
    /// release builds too (this used to be a `debug_assert!` only).
    pub fn choose(dims: GemmDims) -> TilePlan {
        let pick = |d: usize| d.div_ceil(MESH_DIM).clamp(1, MAX_TILE);
        TilePlan {
            mt: pick(dims.m),
            nt: pick(dims.n),
            kt: pick(dims.k),
        }
        .shrink_to_fit()
        .expect("a 1x1x1 tile always fits LDM")
    }

    /// Check this plan's single-buffered working set against the LDM
    /// capacity, reusing the same [`KernelPlan::validate`] the launch
    /// path enforces. This is the feasibility filter the autotuner's
    /// candidate enumeration shares with the hand-pick path.
    pub fn check_ldm(&self) -> Result<(), sw26010::PlanViolation> {
        if self.mt == 0 || self.nt == 0 || self.kt == 0 {
            return Err(sw26010::PlanViolation::BadGeometry {
                plan: "swdnn.gemm".into(),
                n_cpes: 0,
            });
        }
        kernel_plan(*self).validate()
    }

    /// Shrink the largest extent (halving, ties broken `kt`, `nt`, `mt`)
    /// until the single-buffered working set fits LDM. Returns `None`
    /// only for a zero extent, which no amount of shrinking repairs.
    pub fn shrink_to_fit(mut self) -> Option<TilePlan> {
        if self.mt == 0 || self.nt == 0 || self.kt == 0 {
            return None;
        }
        while self.check_ldm().is_err() {
            let largest = self.kt.max(self.nt).max(self.mt);
            if largest == 1 {
                unreachable!("a 1x1x1 GEMM tile fits any LDM");
            }
            if self.kt == largest {
                self.kt = (self.kt / 2).max(1);
            } else if self.nt == largest {
                self.nt = (self.nt / 2).max(1);
            } else {
                self.mt = (self.mt / 2).max(1);
            }
        }
        Some(self)
    }

    /// Panel extents across the whole mesh.
    pub fn panel_m(&self) -> usize {
        self.mt * MESH_DIM
    }
    pub fn panel_n(&self) -> usize {
        self.nt * MESH_DIM
    }
    pub fn panel_k(&self) -> usize {
        self.kt * MESH_DIM
    }

    /// LDM bytes used per CPE by this plan.
    pub fn ldm_bytes(&self) -> usize {
        let f64b = 8;
        let own = (self.mt * self.kt + self.kt * self.nt + self.mt * self.nt) * f64b;
        let recv = (self.mt * self.kt + self.kt * self.nt) * f64b;
        let stage = self.mt.max(self.kt) * self.nt.max(self.kt) * 4;
        own + recv + stage
    }
}

/// Static LDM descriptor of the single-buffered GEMM kernel. Mirrors the
/// allocations in `execute_mesh` one-for-one so validating the plan is
/// equivalent to proving the kernel fits.
pub fn kernel_plan(plan: TilePlan) -> KernelPlan {
    let TilePlan { mt, nt, kt } = plan;
    KernelPlan::new("swdnn.gemm", 64)
        .buffer("a64", mt * kt * 8)
        .buffer("b64", kt * nt * 8)
        .buffer("c64", mt * nt * 8)
        .buffer("abuf", mt * kt * 8)
        .buffer("bbuf", kt * nt * 8)
        .buffer("stage", mt.max(kt) * nt.max(kt) * 4)
        .rlc(RlcPattern::RowAndColBroadcast)
        .inflight_dma(1)
}

/// Static LDM descriptor of the double-buffered GEMM kernel (two async
/// staging pairs plus a C staging buffer on top of the broadcast tiles).
pub fn kernel_plan_double_buffered(plan: TilePlan) -> KernelPlan {
    let TilePlan { mt, nt, kt } = plan;
    KernelPlan::new("swdnn.gemm_db", 64)
        .buffer("a64", mt * kt * 8)
        .buffer("b64", kt * nt * 8)
        .buffer("c64", mt * nt * 8)
        .buffer("abuf", mt * kt * 8)
        .buffer("bbuf", kt * nt * 8)
        .buffer("stage_a0", mt * kt * 4)
        .buffer("stage_a1", mt * kt * 4)
        .buffer("stage_b0", kt * nt * 4)
        .buffer("stage_b1", kt * nt * 4)
        .buffer("cstage", mt * nt * 4)
        .rlc(RlcPattern::RowAndColBroadcast)
        .inflight_dma(2)
}

/// Functional operands of a GEMM call (row-major, contiguous).
pub struct GemmOperands<'a> {
    pub a: &'a [f32],
    pub b: &'a [f32],
    pub c: &'a mut [f32],
}

/// `C = A*B + beta*C` on one core group.
///
/// When `cg` is in timing-only mode the analytic model is charged and
/// `ops` may be `None`; in functional mode `ops` must be provided and the
/// mesh kernel runs for real.
pub fn gemm(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    ops: Option<GemmOperands<'_>>,
) -> LaunchReport {
    gemm_with_scheme(cg, dims, ta, tb, beta, TilingScheme::hand(dims), ops)
}

/// `C = A*B + beta*C` under an explicit [`TilingScheme`] — the
/// parameterized entry the autotuner drives. The scheme is validated
/// through the same [`KernelPlan::validate`] path the launch enforces,
/// in *every* execution mode, so an infeasible scheme is rejected in
/// release builds before anything is charged or run.
pub fn gemm_with_scheme(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    scheme: TilingScheme,
    ops: Option<GemmOperands<'_>>,
) -> LaunchReport {
    if let Err(v) = scheme.validate() {
        panic!("infeasible GEMM tiling scheme: {v}");
    }
    let plan = scheme.tile;
    if cg.mode().is_functional() {
        let ops = ops.expect("functional GEMM requires operands");
        assert_eq!(ops.a.len(), dims.m * dims.k, "A size");
        assert_eq!(ops.b.len(), dims.k * dims.n, "B size");
        assert_eq!(ops.c.len(), dims.m * dims.n, "C size");
        if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
            crate::host::gemm(threads, dims, ta, tb, beta, ops.a, ops.b, ops.c);
            return LaunchReport::default();
        }
        match (scheme.broadcast, scheme.buffering) {
            (Broadcast::RowCol, Buffering::Single) => {
                execute_mesh(cg, dims, ta, tb, beta, plan, ops)
            }
            (Broadcast::RowCol, Buffering::Double) => {
                execute_mesh_db(cg, dims, ta, tb, beta, plan, ops)
            }
            (Broadcast::DmaReplicate, _) => execute_mesh_no_rlc(cg, dims, ta, tb, beta, plan, ops),
        }
    } else {
        let report = LaunchReport {
            elapsed: scheme.time_model(dims, beta),
            stats: scheme.stats_model(dims, beta),
        };
        cg.charge(report.elapsed);
        report
    }
}

fn execute_mesh(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    plan: TilePlan,
    ops: GemmOperands<'_>,
) -> LaunchReport {
    let GemmDims { m, n, k } = dims;
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = m.div_ceil(plan.panel_m());
    let panels_n = n.div_ceil(plan.panel_n());
    let panels_k = k.div_ceil(plan.panel_k());

    let a_view = MemView::new(ops.a);
    let b_view = MemView::new(ops.b);
    let c_view = MemViewMut::new(ops.c);

    let kplan = kernel_plan(plan);
    let mut total = LaunchReport::default();
    for pm in 0..panels_m {
        for pn in 0..panels_n {
            let report = cg.run_planned(&kplan, |cpe| {
                let (i, j) = (cpe.row(), cpe.col());
                // Tile origins in C.
                let ci0 = pm * plan.panel_m() + i * mt;
                let cj0 = pn * plan.panel_n() + j * nt;
                let vm = m.saturating_sub(ci0).min(mt);
                let vn = n.saturating_sub(cj0).min(nt);

                let mut a64 = cpe.ldm.alloc_f64(mt * kt);
                let mut b64 = cpe.ldm.alloc_f64(kt * nt);
                let mut c64 = cpe.ldm.alloc_f64(mt * nt);
                let mut abuf = cpe.ldm.alloc_f64(mt * kt);
                let mut bbuf = cpe.ldm.alloc_f64(kt * nt);
                let mut stage = cpe.ldm.alloc_f32(mt.max(kt) * nt.max(kt));

                // Pre-load beta * C.
                if beta != 0.0 && vm > 0 && vn > 0 {
                    cpe.dma_get_strided(c_view.as_view(), ci0 * n + cj0, vn, n, vm, &mut stage);
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                c64[r * nt + cc] = (beta * stage[r * vn + cc]) as f64;
                            }
                        }
                    });
                } else {
                    cpe.charge_flops((mt * nt) as u64); // zero fill
                }

                for pk in 0..panels_k {
                    let k0 = pk * plan.panel_k();
                    // ---- load own A tile: logical rows ci0..ci0+vm,
                    //      logical cols k0 + j*kt .. (+vak)
                    let aj0 = k0 + j * kt;
                    let vak = k.saturating_sub(aj0).min(kt);
                    load_tile(
                        cpe, a_view, ta, m, k, ci0, aj0, vm, vak, mt, kt, &mut stage, &mut a64,
                    );
                    // ---- load own B tile: logical rows k0 + i*kt,
                    //      logical cols cj0..
                    let bi0 = k0 + i * kt;
                    let vbk = k.saturating_sub(bi0).min(kt);
                    load_tile(
                        cpe, b_view, tb, k, n, bi0, cj0, vbk, vn, kt, nt, &mut stage, &mut b64,
                    );

                    // ---- 8 broadcast-and-accumulate steps
                    for t in 0..MESH_DIM {
                        if j == t {
                            cpe.rlc_row_bcast(&a64);
                        } else {
                            cpe.rlc_row_recv(t, &mut abuf);
                        }
                        if i == t {
                            cpe.rlc_col_bcast(&b64);
                        } else {
                            cpe.rlc_col_recv(t, &mut bbuf);
                        }
                        let at: &[f64] = if j == t { &a64 } else { &abuf };
                        let bt: &[f64] = if i == t { &b64 } else { &bbuf };
                        cpe.compute((2 * mt * nt * kt) as u64, || {
                            for r in 0..mt {
                                for tt in 0..kt {
                                    let av = at[r * kt + tt];
                                    if av == 0.0 {
                                        continue;
                                    }
                                    for cc in 0..nt {
                                        c64[r * nt + cc] += av * bt[tt * nt + cc];
                                    }
                                }
                            }
                        });
                    }
                }

                // ---- store C tile
                if vm > 0 && vn > 0 {
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                stage[r * vn + cc] = c64[r * nt + cc] as f32;
                            }
                        }
                    });
                    cpe.dma_put_strided(c_view, ci0 * n + cj0, vn, n, vm, &stage);
                } else {
                    cpe.charge_flops((mt * nt) as u64);
                }
            });
            total.merge(&report);
        }
    }
    total
}

/// DMA-load a logical `rows x cols` tile (valid region `vr x vc`) of a
/// row-major matrix that may be stored transposed, widening into a zero-
/// padded f64 LDM tile of extents `tr x tc`.
#[allow(clippy::too_many_arguments)]
fn load_tile(
    cpe: &mut sw26010::Cpe,
    src: MemView<'_>,
    trans: Trans,
    _rows_total: usize,
    cols_total: usize,
    r0: usize,
    c0: usize,
    vr: usize,
    vc: usize,
    tr: usize,
    tc: usize,
    stage: &mut [f32],
    tile: &mut [f64],
) {
    if vr == 0 || vc == 0 {
        cpe.compute((tr * tc) as u64, || tile.fill(0.0));
        return;
    }
    match trans {
        Trans::No => {
            // Storage row-major rows x cols: element (r, c) at r*cols + c.
            cpe.dma_get_strided(src, r0 * cols_total + c0, vc, cols_total, vr, stage);
            cpe.compute((tr * tc) as u64, || {
                tile.fill(0.0);
                for r in 0..vr {
                    for c in 0..vc {
                        tile[r * tc + c] = stage[r * vc + c] as f64;
                    }
                }
            });
        }
        Trans::Yes => {
            // Stored transposed: logical (r, c) at storage c*ld + r where
            // ld equals the logical row count of the *logical* matrix...
            // storage is cols_logical x rows_logical. Here the logical
            // matrix is rows_total x cols_total stored as
            // cols_total x rows_total with leading dimension rows_total.
            cpe.dma_get_strided(src, c0 * _rows_total + r0, vr, _rows_total, vc, stage);
            cpe.compute((tr * tc) as u64, || {
                tile.fill(0.0);
                for r in 0..vr {
                    for c in 0..vc {
                        tile[r * tc + c] = stage[c * vr + r] as f64;
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------
// Analytic model
// ---------------------------------------------------------------------

fn cycles_to_time(cycles: f64) -> SimTime {
    SimTime::from_cycles(cycles)
}

fn flop_cycles(flops: u64) -> f64 {
    flops as f64 / (CPE_DP_FLOPS_PER_CYCLE * KERNEL_COMPUTE_EFFICIENCY)
}

/// Closed-form duration of [`gemm`] for a problem size, mirroring the
/// charging logic of the mesh kernel (interior, full-tile CPEs dominate
/// the makespan).
pub fn time_model(dims: GemmDims, beta: f32, plan: TilePlan) -> SimTime {
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let panels_k = dims.k.div_ceil(plan.panel_k());

    // Per k panel: two strided tile loads + converts, then 8 steps of
    // (A transfer, B transfer — receive path pays send + hop + read — and
    // the tile product).
    let t_load_a = dma::strided_time(kt * 4, mt, 64).seconds()
        + cycles_to_time(flop_cycles((mt * kt) as u64)).seconds();
    let t_load_b = dma::strided_time(nt * 4, kt, 64).seconds()
        + cycles_to_time(flop_cycles((kt * nt) as u64)).seconds();
    let sa = transfer_cycles(mt * kt * 8);
    let sb = transfer_cycles(kt * nt * 8);
    let comp = flop_cycles((2 * mt * nt * kt) as u64);
    let t_step = cycles_to_time(2.0 * sa + 2.0 * sb + 2.0 * RLC_HOP_CYCLES + comp).seconds();
    let t_panel = t_load_a + t_load_b + MESH_DIM as f64 * t_step;

    // Per launch: optional C pre-load, K panels, C store, spawn overhead.
    let t_cload = if beta != 0.0 {
        dma::strided_time(nt * 4, mt, 64).seconds()
            + cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    } else {
        cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    };
    let t_cstore = cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
        + dma::strided_time(nt * 4, mt, 64).seconds();
    let t_launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + t_cload
        + panels_k as f64 * t_panel
        + t_cstore;

    SimTime::from_seconds((panels_m * panels_n) as f64 * t_launch)
}

/// Counter totals of [`gemm`], mirroring the mesh kernel's charges exactly.
pub fn stats_model(dims: GemmDims, beta: f32, plan: TilePlan) -> Stats {
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let panels_k = dims.k.div_ceil(plan.panel_k());
    let launches = (panels_m * panels_n) as u64;
    let kpanels = launches * panels_k as u64;

    // DMA bytes: valid regions only. A is read once per n-panel, B once
    // per m-panel, C written once (and read once if beta != 0).
    let mut dma_get_bytes =
        (panels_n * dims.m * dims.k * 4 + panels_m * dims.k * dims.n * 4) as u64;
    if beta != 0.0 {
        dma_get_bytes += (dims.m * dims.n * 4) as u64;
    }
    // DMA request count: per CPE per k panel 2 loads, plus C store (and
    // optional C load) — only CPEs with a non-empty valid region issue
    // requests. We count full-mesh for simplicity of the headline number;
    // the per-request startup already dominates edge effects.
    let cpes = 64u64;
    // Flops: padded tile products plus widen/convert charges.
    let per_step = (2 * mt * nt * kt) as u64 * cpes;
    let converts_per_kpanel = ((mt * kt) + (kt * nt)) as u64 * cpes;
    let c_charges = 2 * (mt * nt) as u64 * cpes; // zero/preload + store convert
    Stats {
        launches,
        dma_get_bytes,
        dma_put_bytes: (dims.m * dims.n * 4) as u64,
        dma_requests: kpanels * 2 * cpes + launches * cpes * if beta != 0.0 { 2 } else { 1 },
        // RLC: per k panel, 8 steps x (8 A-senders + 8 B-senders).
        rlc_messages: kpanels * 8 * (8 + 8),
        rlc_bytes: kpanels * 8 * 8 * ((mt * kt + kt * nt) * 8) as u64,
        flops: kpanels * (8 * per_step + converts_per_kpanel) + launches * c_charges,
        ..Default::default()
    }
}

/// Effective flop rate of the *useful* (un-padded) work for a problem size:
/// `2mnk / time`. This is the "Gflops" column of Table II.
pub fn effective_gflops(dims: GemmDims, elapsed: SimTime) -> f64 {
    dims.flops() as f64 / elapsed.seconds() / 1.0e9
}

// ---------------------------------------------------------------------
// Ablation: GEMM without register communication (Principle 4 control)
// ---------------------------------------------------------------------

/// Time model of a GEMM where each CPE DMA-loads the full A row-panel and
/// B column-panel itself instead of sharing tiles over the register buses.
/// Same compute, ~8x the B/A traffic — the Principle 4 ablation.
pub fn time_model_no_rlc(dims: GemmDims, plan: TilePlan) -> SimTime {
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let panels_k = dims.k.div_ceil(plan.panel_k());

    // Per k panel each CPE loads an mt x (8kt) strip of A (contiguous
    // rows of 8kt) and an (8kt) x nt strip of B.
    let t_load_a = dma::strided_time(8 * kt * 4, mt, 64).seconds()
        + cycles_to_time(flop_cycles((mt * 8 * kt) as u64)).seconds();
    let t_load_b = dma::strided_time(nt * 4, 8 * kt, 64).seconds()
        + cycles_to_time(flop_cycles((8 * kt * nt) as u64)).seconds();
    let comp = flop_cycles((2 * mt * nt * 8 * kt) as u64);
    let t_panel = t_load_a + t_load_b + cycles_to_time(comp).seconds();
    let t_launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + panels_k as f64 * t_panel
        + cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
        + dma::strided_time(nt * 4, mt, 64).seconds();
    SimTime::from_seconds((panels_m * panels_n) as f64 * t_launch)
}

/// Duration of the *functional* no-RLC GEMM path
/// ([`Broadcast::DmaReplicate`] in a [`TilingScheme`]): the ablation
/// model above plus the C pre-load term the mesh kernel charges, so the
/// scheme dispatch in timing mode mirrors the mesh exactly like the
/// broadcast paths do.
pub fn time_model_no_rlc_scheme(dims: GemmDims, beta: f32, plan: TilePlan) -> SimTime {
    let TilePlan { mt, nt, .. } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let t_cload = if beta != 0.0 {
        dma::strided_time(nt * 4, mt, 64).seconds()
            + cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    } else {
        cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    };
    SimTime::from_seconds(
        time_model_no_rlc(dims, plan).seconds() + (panels_m * panels_n) as f64 * t_cload,
    )
}

/// Counter totals of the no-RLC GEMM path, mirroring
/// [`execute_mesh_no_rlc`]'s charges: every element of `A` is fetched by
/// all 8 CPEs of its mesh row and every element of `B` by all 8 CPEs of
/// its mesh column — the ~8x traffic Principle 4's broadcasts avoid.
pub fn stats_model_no_rlc(dims: GemmDims, beta: f32, plan: TilePlan) -> Stats {
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let panels_k = dims.k.div_ceil(plan.panel_k());
    let launches = (panels_m * panels_n) as u64;
    let kpanels = launches * panels_k as u64;
    let cpes = 64u64;

    let mut dma_get_bytes =
        8 * (panels_n * dims.m * dims.k * 4 + panels_m * dims.k * dims.n * 4) as u64;
    if beta != 0.0 {
        dma_get_bytes += (dims.m * dims.n * 4) as u64;
    }
    let strip = 8 * kt;
    let per_panel_flops = (mt * strip + strip * nt + 2 * mt * nt * strip) as u64 * cpes;
    let c_charges = 2 * (mt * nt) as u64 * cpes;
    Stats {
        launches,
        dma_get_bytes,
        dma_put_bytes: (dims.m * dims.n * 4) as u64,
        dma_requests: kpanels * 2 * cpes + launches * cpes * if beta != 0.0 { 2 } else { 1 },
        rlc_messages: 0,
        rlc_bytes: 0,
        flops: kpanels * per_panel_flops + launches * c_charges,
        ..Default::default()
    }
}

/// Static LDM descriptor of the no-RLC GEMM kernel: each CPE stages the
/// full `mt x 8kt` A strip and `8kt x nt` B strip itself, so the tiles
/// are 8x the broadcast kernel's and feasibility binds much earlier.
pub fn kernel_plan_no_rlc(plan: TilePlan) -> KernelPlan {
    let TilePlan { mt, nt, kt } = plan;
    let strip = MESH_DIM * kt;
    let stage = (mt * strip).max(strip * nt).max(mt * nt);
    KernelPlan::new("swdnn.gemm_norlc", 64)
        .buffer("a64", mt * strip * 8)
        .buffer("b64", strip * nt * 8)
        .buffer("c64", mt * nt * 8)
        .buffer("stage", stage * 4)
        .rlc(RlcPattern::None)
        .inflight_dma(1)
}

/// Functional GEMM without register communication: identical math and
/// k-accumulation order to [`execute_mesh`] (so results are bitwise
/// identical), but each CPE DMA-replicates the whole A row strip and B
/// column strip instead of broadcasting tiles over the buses.
fn execute_mesh_no_rlc(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    plan: TilePlan,
    ops: GemmOperands<'_>,
) -> LaunchReport {
    let GemmDims { m, n, k } = dims;
    let TilePlan { mt, nt, kt } = plan;
    let strip = MESH_DIM * kt;
    let panels_m = m.div_ceil(plan.panel_m());
    let panels_n = n.div_ceil(plan.panel_n());
    let panels_k = k.div_ceil(plan.panel_k());

    let a_view = MemView::new(ops.a);
    let b_view = MemView::new(ops.b);
    let c_view = MemViewMut::new(ops.c);

    let kplan = kernel_plan_no_rlc(plan);
    let mut total = LaunchReport::default();
    for pm in 0..panels_m {
        for pn in 0..panels_n {
            let report = cg.run_planned(&kplan, |cpe| {
                let (i, j) = (cpe.row(), cpe.col());
                let ci0 = pm * plan.panel_m() + i * mt;
                let cj0 = pn * plan.panel_n() + j * nt;
                let vm = m.saturating_sub(ci0).min(mt);
                let vn = n.saturating_sub(cj0).min(nt);

                let mut a64 = cpe.ldm.alloc_f64(mt * strip);
                let mut b64 = cpe.ldm.alloc_f64(strip * nt);
                let mut c64 = cpe.ldm.alloc_f64(mt * nt);
                let mut stage = cpe.ldm.alloc_f32((mt * strip).max(strip * nt).max(mt * nt));

                if beta != 0.0 && vm > 0 && vn > 0 {
                    cpe.dma_get_strided(c_view.as_view(), ci0 * n + cj0, vn, n, vm, &mut stage);
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                c64[r * nt + cc] = (beta * stage[r * vn + cc]) as f64;
                            }
                        }
                    });
                } else {
                    cpe.charge_flops((mt * nt) as u64);
                }

                for pk in 0..panels_k {
                    let k0 = pk * plan.panel_k();
                    let vk = k.saturating_sub(k0).min(strip);
                    // Full A row strip and B column strip — no sharing.
                    load_tile(
                        cpe, a_view, ta, m, k, ci0, k0, vm, vk, mt, strip, &mut stage, &mut a64,
                    );
                    load_tile(
                        cpe, b_view, tb, k, n, k0, cj0, vk, vn, strip, nt, &mut stage, &mut b64,
                    );
                    cpe.compute((2 * mt * nt * strip) as u64, || {
                        for r in 0..mt {
                            for tt in 0..strip {
                                let av = a64[r * strip + tt];
                                if av == 0.0 {
                                    continue;
                                }
                                for cc in 0..nt {
                                    c64[r * nt + cc] += av * b64[tt * nt + cc];
                                }
                            }
                        }
                    });
                }

                if vm > 0 && vn > 0 {
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                stage[r * vn + cc] = c64[r * nt + cc] as f32;
                            }
                        }
                    });
                    cpe.dma_put_strided(c_view, ci0 * n + cj0, vn, n, vm, &stage);
                } else {
                    cpe.charge_flops((mt * nt) as u64);
                }
            });
            total.merge(&report);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) % 1000) as f32 / 250.0 - 2.0
            })
            .collect()
    }

    fn check_gemm(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, beta: f32) {
        let dims = GemmDims::new(m, n, k);
        let a = pattern(m * k, 1);
        let b = pattern(k * n, 2);
        let c0 = pattern(m * n, 3);

        let mut expected = c0.clone();
        reference::gemm(dims, ta, tb, &a, &b, beta, &mut expected);

        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut c = c0.clone();
        gemm(
            &mut cg,
            dims,
            ta,
            tb,
            beta,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut c,
            }),
        );

        for (i, (got, want)) in c.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "({m},{n},{k},{ta:?},{tb:?},beta={beta}) mismatch at {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn mesh_matches_reference_small() {
        check_gemm(8, 8, 8, Trans::No, Trans::No, 0.0);
    }

    #[test]
    fn mesh_matches_reference_unaligned() {
        check_gemm(13, 17, 9, Trans::No, Trans::No, 0.0);
    }

    #[test]
    fn mesh_matches_reference_multi_panel() {
        // Forces panels_m = panels_n = panels_k = 2 with tiny tiles.
        check_gemm(20, 23, 19, Trans::No, Trans::No, 0.0);
    }

    #[test]
    fn mesh_matches_reference_beta_one() {
        check_gemm(16, 16, 16, Trans::No, Trans::No, 1.0);
    }

    #[test]
    fn mesh_matches_reference_trans_a() {
        check_gemm(12, 10, 14, Trans::Yes, Trans::No, 0.0);
    }

    #[test]
    fn mesh_matches_reference_trans_b() {
        check_gemm(12, 10, 14, Trans::No, Trans::Yes, 0.0);
    }

    #[test]
    fn mesh_matches_reference_trans_both() {
        check_gemm(11, 9, 13, Trans::Yes, Trans::Yes, 1.0);
    }

    #[test]
    fn mesh_matches_reference_larger() {
        check_gemm(96, 80, 72, Trans::No, Trans::No, 0.0);
    }

    #[test]
    fn tiny_dims_work() {
        check_gemm(1, 1, 1, Trans::No, Trans::No, 0.0);
        check_gemm(3, 1, 5, Trans::No, Trans::No, 1.0);
    }

    #[test]
    fn plan_fits_ldm() {
        for dims in [
            GemmDims::new(1, 1, 1),
            GemmDims::new(4096, 4096, 4096),
            GemmDims::new(64, 25088, 4096),
        ] {
            let plan = TilePlan::choose(dims);
            assert!(
                plan.ldm_bytes() <= sw26010::arch::LDM_BYTES,
                "{dims:?} -> {plan:?}"
            );
        }
    }

    #[test]
    fn ldm_feasibility_is_checked_at_the_exact_64kb_boundary() {
        // 16mt + 16nt + 12*mt*nt with kt = 1; (mt, nt) = (4, 1023) lands
        // exactly on the 65536-byte capacity.
        let at_boundary = TilePlan {
            mt: 4,
            nt: 1023,
            kt: 1,
        };
        assert_eq!(at_boundary.ldm_bytes(), sw26010::arch::LDM_BYTES);
        at_boundary.check_ldm().unwrap();
        assert_eq!(at_boundary.shrink_to_fit(), Some(at_boundary));

        // One more column crosses the boundary and must be rejected with
        // the named-buffer diagnostic — a real check, not a debug_assert.
        let over = TilePlan {
            mt: 4,
            nt: 1024,
            kt: 1,
        };
        assert!(over.ldm_bytes() > sw26010::arch::LDM_BYTES);
        match over.check_ldm() {
            Err(sw26010::PlanViolation::LdmOverflow {
                required, capacity, ..
            }) => {
                assert!(required > capacity);
            }
            other => panic!("expected LdmOverflow, got {other:?}"),
        }
        // Shrink-to-fit repairs it into a feasible plan.
        let fixed = over.shrink_to_fit().unwrap();
        fixed.check_ldm().unwrap();
    }

    #[test]
    fn zero_extent_plans_are_rejected() {
        let p = TilePlan {
            mt: 0,
            nt: 8,
            kt: 8,
        };
        assert!(p.check_ldm().is_err());
        assert_eq!(p.shrink_to_fit(), None);
    }

    #[test]
    fn chosen_plans_always_fit_in_release_too() {
        // The old path debug_assert!ed; this exercises the checked path
        // over a sweep of adversarial dims.
        for m in [1, 7, 64, 513, 50176] {
            for n in [1, 27, 196, 4096] {
                for k in [1, 27, 512, 4608] {
                    TilePlan::choose(GemmDims::new(m, n, k))
                        .check_ldm()
                        .unwrap();
                }
            }
        }
    }

    #[test]
    fn no_rlc_mesh_matches_reference_and_broadcast_bitwise() {
        for (m, n, k, ta, tb, beta) in [
            (20, 23, 19, Trans::No, Trans::No, 0.0f32),
            (13, 17, 70, Trans::Yes, Trans::No, 1.0),
            (33, 9, 40, Trans::No, Trans::Yes, 0.0),
        ] {
            let dims = GemmDims::new(m, n, k);
            let a = pattern(m * k, 1);
            let b = pattern(k * n, 2);
            let c0 = pattern(m * n, 3);
            let scheme = TilingScheme {
                tile: TilePlan::choose(dims),
                buffering: Buffering::Single,
                broadcast: Broadcast::DmaReplicate,
            };
            let mut got = c0.clone();
            let mut cg = CoreGroup::new(ExecMode::Functional);
            gemm_with_scheme(
                &mut cg,
                dims,
                ta,
                tb,
                beta,
                scheme,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut got,
                }),
            );
            let mut want = c0.clone();
            let mut cg2 = CoreGroup::new(ExecMode::Functional);
            gemm(
                &mut cg2,
                dims,
                ta,
                tb,
                beta,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut want,
                }),
            );
            // Same k-accumulation order => bitwise identical to the
            // broadcast kernel, not merely close.
            assert_eq!(got, want, "({m},{n},{k},{ta:?},{tb:?},beta={beta})");
        }
    }

    #[test]
    fn no_rlc_scheme_model_matches_mesh() {
        let dims = GemmDims::new(128, 96, 160);
        let plan = TilePlan::choose(dims);
        let scheme = TilingScheme {
            tile: plan,
            buffering: Buffering::Single,
            broadcast: Broadcast::DmaReplicate,
        };
        let a = pattern(dims.m * dims.k, 4);
        let b = pattern(dims.k * dims.n, 5);
        let mut c = vec![0.0f32; dims.m * dims.n];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = gemm_with_scheme(
            &mut cg,
            dims,
            Trans::No,
            Trans::No,
            0.0,
            scheme,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut c,
            }),
        );
        let model_t = time_model_no_rlc_scheme(dims, 0.0, plan);
        let rel = (mesh.elapsed.seconds() - model_t.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.05,
            "mesh {:.3}us vs model {:.3}us (rel {rel:.3})",
            mesh.elapsed.micros(),
            model_t.micros()
        );
        let model_s = stats_model_no_rlc(dims, 0.0, plan);
        assert_eq!(mesh.stats.flops, model_s.flops, "flops");
        assert_eq!(mesh.stats.rlc_messages, 0);
        assert_eq!(mesh.stats.dma_get_bytes, model_s.dma_get_bytes, "get bytes");
        assert_eq!(mesh.stats.dma_put_bytes, model_s.dma_put_bytes, "put bytes");
    }

    #[test]
    #[should_panic(expected = "infeasible GEMM tiling scheme")]
    fn infeasible_scheme_is_rejected_before_launch() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let scheme = TilingScheme {
            tile: TilePlan {
                mt: 64,
                nt: 64,
                kt: 64,
            },
            buffering: Buffering::Single,
            broadcast: Broadcast::RowCol,
        };
        gemm_with_scheme(
            &mut cg,
            GemmDims::new(512, 512, 512),
            Trans::No,
            Trans::No,
            0.0,
            scheme,
            None,
        );
    }

    #[test]
    fn timing_model_matches_mesh_execution() {
        // Ground truth: the mesh run in timing-only mode. The analytic
        // model must agree closely; counters must agree exactly.
        for (m, n, k) in [(256, 256, 256), (256, 128, 512), (64, 320, 192)] {
            let dims = GemmDims::new(m, n, k);
            let plan = TilePlan::choose(dims);
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let a = pattern(m * k, 1);
            let b = pattern(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mesh = gemm(
                &mut cg,
                dims,
                Trans::No,
                Trans::No,
                0.0,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut c,
                }),
            );
            let model_t = time_model(dims, 0.0, plan);
            let rel = (mesh.elapsed.seconds() - model_t.seconds()).abs() / mesh.elapsed.seconds();
            assert!(
                rel < 0.05,
                "({m},{n},{k}): mesh {:.3}us vs model {:.3}us (rel {rel:.3})",
                mesh.elapsed.micros(),
                model_t.micros()
            );
            let model_s = stats_model(dims, 0.0, plan);
            assert_eq!(mesh.stats.flops, model_s.flops, "flops ({m},{n},{k})");
            assert_eq!(mesh.stats.rlc_bytes, model_s.rlc_bytes, "rlc bytes");
            assert_eq!(mesh.stats.rlc_messages, model_s.rlc_messages, "rlc msgs");
            assert_eq!(mesh.stats.dma_put_bytes, model_s.dma_put_bytes, "put bytes");
            assert_eq!(mesh.stats.dma_get_bytes, model_s.dma_get_bytes, "get bytes");
        }
    }

    #[test]
    fn timing_only_mode_charges_model() {
        let dims = GemmDims::new(512, 512, 512);
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let r = gemm(&mut cg, dims, Trans::No, Trans::No, 0.0, None);
        assert!((cg.elapsed().seconds() - r.elapsed.seconds()).abs() < 1e-12);
        assert_eq!(r.elapsed, time_model(dims, 0.0, TilePlan::choose(dims)));
    }

    #[test]
    fn large_gemm_approaches_table_ii_rates() {
        // Paper Table II reports 300-416 Gflops on the large VGG GEMMs.
        // A square 2048 problem should land in that neighbourhood
        // (roughly 40-60% of the 742 Gflops peak).
        let dims = GemmDims::new(2048, 2048, 2048);
        let t = time_model(dims, 0.0, TilePlan::choose(dims));
        let gflops = effective_gflops(dims, t);
        assert!(
            (250.0..=550.0).contains(&gflops),
            "large GEMM at {gflops:.0} Gflops is outside the plausible band"
        );
    }

    #[test]
    fn small_k_degrades_throughput() {
        // The paper notes m (and generally the shared dimension) must be
        // large for compute-bound GEMM; k = 27 (conv1_1) is memory-bound.
        let big = GemmDims::new(512, 1024, 512);
        let small_k = GemmDims::new(512, 1024, 27);
        let g_big = effective_gflops(big, time_model(big, 0.0, TilePlan::choose(big)));
        let g_small =
            effective_gflops(small_k, time_model(small_k, 0.0, TilePlan::choose(small_k)));
        assert!(
            g_small < 0.5 * g_big,
            "small-k {g_small:.0} vs big {g_big:.0}"
        );
    }

    #[test]
    fn rlc_beats_no_rlc_ablation() {
        // Principle 4: register communication must clearly beat per-CPE
        // DMA replication for compute-heavy shapes.
        let dims = GemmDims::new(1024, 1024, 1024);
        let plan = TilePlan::choose(dims);
        let with = time_model(dims, 0.0, plan).seconds();
        let without = time_model_no_rlc(dims, plan).seconds();
        assert!(without > 1.3 * with, "with={with} without={without}");
    }
}

// ---------------------------------------------------------------------
// Design-space probe: double-buffered tile loads
// ---------------------------------------------------------------------

/// Time model of a GEMM whose next-panel tile DMA overlaps the current
/// panel's broadcast-and-accumulate steps (double buffering via the async
/// DMA engine).
///
/// This is a *design-space probe*, not the default plan: the paper's
/// measured kernels land at the synchronous model's rates (Table II), so
/// the default stays synchronous; this model quantifies what the extra
/// ~16 KB of LDM staging would buy. The prefetched tiles still pay their
/// f64 widening at panel start. [`gemm_double_buffered`] is the matching
/// functional mesh kernel, validated against this model and the scalar
/// oracle.
pub fn time_model_double_buffered(dims: GemmDims, beta: f32, plan: TilePlan) -> SimTime {
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = dims.m.div_ceil(plan.panel_m());
    let panels_n = dims.n.div_ceil(plan.panel_n());
    let panels_k = dims.k.div_ceil(plan.panel_k());

    let t_dma =
        dma::strided_time(kt * 4, mt, 64).seconds() + dma::strided_time(nt * 4, kt, 64).seconds();
    let t_convert = cycles_to_time(flop_cycles((mt * kt) as u64)).seconds()
        + cycles_to_time(flop_cycles((kt * nt) as u64)).seconds();
    let sa = transfer_cycles(mt * kt * 8);
    let sb = transfer_cycles(kt * nt * 8);
    let comp = flop_cycles((2 * mt * nt * kt) as u64);
    let t_steps = MESH_DIM as f64
        * cycles_to_time(2.0 * sa + 2.0 * sb + 2.0 * RLC_HOP_CYCLES + comp).seconds();
    // First panel loads synchronously; the rest hide their DMA behind the
    // previous panel's steps.
    let t_first = t_dma + t_convert + t_steps;
    let t_rest = t_convert + t_steps.max(t_dma);

    let t_cload = if beta != 0.0 {
        dma::strided_time(nt * 4, mt, 64).seconds()
            + cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    } else {
        cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
    };
    let t_cstore = cycles_to_time(flop_cycles((mt * nt) as u64)).seconds()
        + dma::strided_time(nt * 4, mt, 64).seconds();
    let t_launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + t_cload
        + t_first
        + (panels_k.saturating_sub(1)) as f64 * t_rest
        + t_cstore;
    SimTime::from_seconds((panels_m * panels_n) as f64 * t_launch)
}

#[cfg(test)]
mod db_tests {
    use super::*;

    #[test]
    fn double_buffering_helps_but_is_bounded() {
        for (m, n, k) in [(1024, 1024, 1024), (512, 3136, 1152), (64, 50176, 27)] {
            let dims = GemmDims::new(m, n, k);
            let plan = TilePlan::choose(dims);
            let sync = time_model(dims, 0.0, plan).seconds();
            let db = time_model_double_buffered(dims, 0.0, plan).seconds();
            assert!(db <= sync * 1.0001, "({m},{n},{k}): db {db} > sync {sync}");
            // It can hide DMA, not compute: never below the pure-compute bound.
            let comp_only = (dims.m.div_ceil(plan.panel_m())
                * dims.n.div_ceil(plan.panel_n())
                * dims.k.div_ceil(plan.panel_k())) as f64
                * MESH_DIM as f64
                * cycles_to_time(flop_cycles((2 * plan.mt * plan.nt * plan.kt) as u64)).seconds();
            assert!(
                db > comp_only,
                "({m},{n},{k}): db {db} below compute bound {comp_only}"
            );
        }
    }

    #[test]
    fn ldm_still_fits_with_double_buffers() {
        // The probe needs two extra f32 staging pairs.
        let plan = TilePlan {
            mt: 32,
            nt: 32,
            kt: 32,
        };
        let extra = 2 * (plan.mt * plan.kt + plan.kt * plan.nt) * 4;
        assert!(plan.ldm_bytes() + extra <= sw26010::arch::LDM_BYTES);
    }
}

/// Tile-fetch plan shared by the double-buffered path: where the valid
/// region of a logical tile lives and how to stage it.
#[derive(Clone, Copy)]
struct TileFetch {
    base: usize,
    block: usize,
    stride: usize,
    rows: usize,
    /// Valid logical extents (vr rows x vc cols) and transpose flag.
    vr: usize,
    vc: usize,
    transpose: bool,
}

impl TileFetch {
    /// Addressing for a logical `vr x vc` tile of a row-major matrix of
    /// `rows_total x cols_total` (stored transposed when `trans`).
    fn plan(
        trans: Trans,
        rows_total: usize,
        cols_total: usize,
        r0: usize,
        c0: usize,
        vr: usize,
        vc: usize,
    ) -> TileFetch {
        match trans {
            Trans::No => TileFetch {
                base: r0 * cols_total + c0,
                block: vc,
                stride: cols_total,
                rows: vr,
                vr,
                vc,
                transpose: false,
            },
            Trans::Yes => TileFetch {
                base: c0 * rows_total + r0,
                block: vr,
                stride: rows_total,
                rows: vc,
                vr,
                vc,
                transpose: true,
            },
        }
    }

    fn issue(
        &self,
        cpe: &mut sw26010::Cpe,
        src: MemView<'_>,
        stage: &mut [f32],
    ) -> Option<sw26010::DmaHandle> {
        if self.rows == 0 || self.block == 0 {
            return None;
        }
        Some(cpe.dma_get_strided_async(src, self.base, self.block, self.stride, self.rows, stage))
    }

    /// Widen the staged f32 data into the zero-padded f64 tile.
    fn widen(&self, cpe: &mut sw26010::Cpe, stage: &[f32], tr: usize, tc: usize, tile: &mut [f64]) {
        let (vr, vc, transpose) = (self.vr, self.vc, self.transpose);
        cpe.compute((tr * tc) as u64, || {
            tile.fill(0.0);
            if transpose {
                for r in 0..vr {
                    for c in 0..vc {
                        tile[r * tc + c] = stage[c * vr + r] as f64;
                    }
                }
            } else {
                for r in 0..vr {
                    for c in 0..vc {
                        tile[r * tc + c] = stage[r * vc + c] as f64;
                    }
                }
            }
        });
    }
}

/// Double-buffered GEMM: identical math to [`gemm`], but the next K
/// panel's A/B tiles stream in (async DMA) while the current panel's
/// broadcast-and-accumulate steps run. Costs two extra f32 staging pairs
/// of LDM. Timing-only mode charges [`time_model_double_buffered`].
pub fn gemm_double_buffered(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    ops: Option<GemmOperands<'_>>,
) -> LaunchReport {
    let scheme = TilingScheme {
        tile: TilePlan::choose(dims),
        buffering: Buffering::Double,
        broadcast: Broadcast::RowCol,
    };
    gemm_with_scheme(cg, dims, ta, tb, beta, scheme, ops)
}

fn execute_mesh_db(
    cg: &mut CoreGroup,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    plan: TilePlan,
    ops: GemmOperands<'_>,
) -> LaunchReport {
    let GemmDims { m, n, k } = dims;
    let TilePlan { mt, nt, kt } = plan;
    let panels_m = m.div_ceil(plan.panel_m());
    let panels_n = n.div_ceil(plan.panel_n());
    let panels_k = k.div_ceil(plan.panel_k());

    let a_view = MemView::new(ops.a);
    let b_view = MemView::new(ops.b);
    let c_view = MemViewMut::new(ops.c);

    let kplan = kernel_plan_double_buffered(plan);
    let mut total = LaunchReport::default();
    for pm in 0..panels_m {
        for pn in 0..panels_n {
            let report = cg.run_planned(&kplan, |cpe| {
                let (i, j) = (cpe.row(), cpe.col());
                let ci0 = pm * plan.panel_m() + i * mt;
                let cj0 = pn * plan.panel_n() + j * nt;
                let vm = m.saturating_sub(ci0).min(mt);
                let vn = n.saturating_sub(cj0).min(nt);

                let mut a64 = cpe.ldm.alloc_f64(mt * kt);
                let mut b64 = cpe.ldm.alloc_f64(kt * nt);
                let mut c64 = cpe.ldm.alloc_f64(mt * nt);
                let mut abuf = cpe.ldm.alloc_f64(mt * kt);
                let mut bbuf = cpe.ldm.alloc_f64(kt * nt);
                // Two staging pairs for the double buffer.
                let mut stage_a = [cpe.ldm.alloc_f32(mt * kt), cpe.ldm.alloc_f32(mt * kt)];
                let mut stage_b = [cpe.ldm.alloc_f32(kt * nt), cpe.ldm.alloc_f32(kt * nt)];
                let mut cstage = cpe.ldm.alloc_f32(mt * nt);

                if beta != 0.0 && vm > 0 && vn > 0 {
                    cpe.dma_get_strided(c_view.as_view(), ci0 * n + cj0, vn, n, vm, &mut cstage);
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                c64[r * nt + cc] = (beta * cstage[r * vn + cc]) as f64;
                            }
                        }
                    });
                } else {
                    cpe.charge_flops((mt * nt) as u64);
                }

                // Fetch plan for K panel `pk`.
                let fetch = |pk: usize| -> (TileFetch, TileFetch) {
                    let k0 = pk * plan.panel_k();
                    let aj0 = k0 + j * kt;
                    let vak = k.saturating_sub(aj0).min(kt);
                    let bi0 = k0 + i * kt;
                    let vbk = k.saturating_sub(bi0).min(kt);
                    (
                        TileFetch::plan(ta, m, k, ci0, aj0, vm, vak),
                        TileFetch::plan(tb, k, n, bi0, cj0, vbk, vn),
                    )
                };

                // Prefetch panel 0.
                let (fa0, fb0) = fetch(0);
                let mut handles = [
                    (
                        fa0.issue(cpe, a_view, &mut stage_a[0]),
                        fb0.issue(cpe, b_view, &mut stage_b[0]),
                        fa0,
                        fb0,
                    ),
                    (None, None, fa0, fb0),
                ];
                let mut cur = 0usize;
                for pk in 0..panels_k {
                    let (ha, hb, fa, fb) = handles[cur];
                    if let Some(h) = ha {
                        cpe.dma_wait(h);
                    }
                    if let Some(h) = hb {
                        cpe.dma_wait(h);
                    }
                    fa.widen(cpe, &stage_a[cur], mt, kt, &mut a64);
                    fb.widen(cpe, &stage_b[cur], kt, nt, &mut b64);
                    // Kick off the next panel's fetch before computing.
                    let nxt = 1 - cur;
                    if pk + 1 < panels_k {
                        let (fan, fbn) = fetch(pk + 1);
                        handles[nxt] = (
                            fan.issue(cpe, a_view, &mut stage_a[nxt]),
                            fbn.issue(cpe, b_view, &mut stage_b[nxt]),
                            fan,
                            fbn,
                        );
                    }
                    for t in 0..MESH_DIM {
                        if j == t {
                            cpe.rlc_row_bcast(&a64);
                        } else {
                            cpe.rlc_row_recv(t, &mut abuf);
                        }
                        if i == t {
                            cpe.rlc_col_bcast(&b64);
                        } else {
                            cpe.rlc_col_recv(t, &mut bbuf);
                        }
                        let at: &[f64] = if j == t { &a64 } else { &abuf };
                        let bt: &[f64] = if i == t { &b64 } else { &bbuf };
                        cpe.compute((2 * mt * nt * kt) as u64, || {
                            for r in 0..mt {
                                for tt in 0..kt {
                                    let av = at[r * kt + tt];
                                    if av == 0.0 {
                                        continue;
                                    }
                                    for cc in 0..nt {
                                        c64[r * nt + cc] += av * bt[tt * nt + cc];
                                    }
                                }
                            }
                        });
                    }
                    cur = nxt;
                }

                if vm > 0 && vn > 0 {
                    cpe.compute((mt * nt) as u64, || {
                        for r in 0..vm {
                            for cc in 0..vn {
                                cstage[r * vn + cc] = c64[r * nt + cc] as f32;
                            }
                        }
                    });
                    cpe.dma_put_strided(c_view, ci0 * n + cj0, vn, n, vm, &cstage);
                } else {
                    cpe.charge_flops((mt * nt) as u64);
                }
            });
            total.merge(&report);
        }
    }
    total
}

#[cfg(test)]
mod db_mesh_tests {
    use super::*;
    use crate::reference;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) % 1000) as f32 / 250.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn double_buffered_mesh_matches_reference() {
        for (m, n, k, ta, tb, beta) in [
            (24, 20, 40, Trans::No, Trans::No, 0.0f32),
            (17, 9, 70, Trans::Yes, Trans::No, 1.0),
            (33, 41, 19, Trans::No, Trans::Yes, 0.0),
        ] {
            let dims = GemmDims::new(m, n, k);
            let a = pattern(m * k, 1);
            let b = pattern(k * n, 2);
            let c0 = pattern(m * n, 3);
            let mut want = c0.clone();
            reference::gemm(dims, ta, tb, &a, &b, beta, &mut want);
            let mut got = c0;
            let mut cg = CoreGroup::new(ExecMode::Functional);
            gemm_double_buffered(
                &mut cg,
                dims,
                ta,
                tb,
                beta,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut got,
                }),
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "db ({m},{n},{k}) elem {i}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn double_buffered_mesh_is_faster_than_sync() {
        // Multi-K-panel problem: prefetch must hide tile DMA.
        let dims = GemmDims::new(128, 128, 1024);
        let a = pattern(dims.m * dims.k, 1);
        let b = pattern(dims.k * dims.n, 2);
        let run_sync = {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut c = vec![0.0f32; dims.m * dims.n];
            gemm(
                &mut cg,
                dims,
                Trans::No,
                Trans::No,
                0.0,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut c,
                }),
            )
        };
        let run_db = {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut c = vec![0.0f32; dims.m * dims.n];
            gemm_double_buffered(
                &mut cg,
                dims,
                Trans::No,
                Trans::No,
                0.0,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut c,
                }),
            )
        };
        assert!(
            run_db.elapsed.seconds() < run_sync.elapsed.seconds(),
            "db {} !< sync {}",
            run_db.elapsed.micros(),
            run_sync.elapsed.micros()
        );
    }

    #[test]
    fn double_buffered_model_tracks_mesh() {
        let dims = GemmDims::new(256, 256, 512);
        let plan = TilePlan::choose(dims);
        let a = pattern(dims.m * dims.k, 5);
        let b = pattern(dims.k * dims.n, 6);
        let mut c = vec![0.0f32; dims.m * dims.n];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = gemm_double_buffered(
            &mut cg,
            dims,
            Trans::No,
            Trans::No,
            0.0,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut c,
            }),
        );
        let model = time_model_double_buffered(dims, 0.0, plan);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }
}
