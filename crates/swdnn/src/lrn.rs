//! Across-channel local response normalisation (GoogLeNet still uses it;
//! the paper's AlexNet refinement swaps it for BN).
//!
//! `scale_i = k + (alpha / n) * sum_{j in window(i)} x_j^2`,
//! `y_i = x_i * scale_i^{-beta}`.
//!
//! Work items are (image, row) pairs; the CPE stages a channels-by-width
//! slab via strided DMA (one block per channel), so the cross-channel
//! window is entirely LDM-resident.

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

/// LRN hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LrnParams {
    /// Window size (channels), odd.
    pub local_size: usize,
    pub alpha: f32,
    pub beta: f32,
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        // Caffe / AlexNet defaults.
        LrnParams {
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 1.0,
        }
    }
}

/// Width chunk that keeps `bufs` channel slabs within the LDM budget.
fn width_chunk(channels: usize, width: usize, bufs: usize) -> usize {
    let budget = 44 * 1024;
    (budget / (bufs * channels * 4)).clamp(1, width)
}

/// Static LDM descriptor of the LRN forward kernel: two all-channel slabs
/// of `width_chunk` pixels.
pub fn forward_plan(channels: usize, width: usize) -> KernelPlan {
    let wc = width_chunk(channels, width, 2);
    KernelPlan::new("swdnn.lrn.fwd", 64)
        .buffer("xs", channels * wc * 4)
        .buffer("ys", channels * wc * 4)
}

/// Static LDM descriptor of the LRN backward kernel (three slabs).
pub fn backward_plan(channels: usize, width: usize) -> KernelPlan {
    let wc = width_chunk(channels, width, 3);
    KernelPlan::new("swdnn.lrn.bwd", 64)
        .buffer("xs", channels * wc * 4)
        .buffer("gs", channels * wc * 4)
        .buffer("ds", channels * wc * 4)
}

pub(crate) fn scale_at(p: &LrnParams, channels: usize, xs: &dyn Fn(usize) -> f64, c: usize) -> f64 {
    let half = p.local_size / 2;
    let lo = c.saturating_sub(half);
    let hi = (c + half).min(channels - 1);
    let mut acc = 0.0f64;
    for j in lo..=hi {
        let v = xs(j);
        acc += v * v;
    }
    p.k as f64 + p.alpha as f64 / p.local_size as f64 * acc
}

/// LRN forward over an NCHW tensor.
pub fn forward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    p: LrnParams,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model(batch, channels, height, width, p.local_size, 2),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, output) = io.expect("functional LRN requires operands");
    let len = batch * channels * height * width;
    assert_eq!(input.len(), len);
    assert_eq!(output.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::lrn_forward(threads, batch, channels, height, width, p, input, output);
        return LaunchReport::default();
    }
    let x = MemView::new(input);
    let y = MemViewMut::new(output);
    let wc = width_chunk(channels, width, 2);
    let items = batch * height;
    cg.run_planned(&forward_plan(channels, width), move |cpe| {
        let mut xs = cpe.ldm.alloc_f32(channels * wc);
        let mut ys = cpe.ldm.alloc_f32(channels * wc);
        let mut item = cpe.idx();
        while item < items {
            let b = item / height;
            let row = item % height;
            let mut x0 = 0;
            while x0 < width {
                let n = wc.min(width - x0);
                // Slab: one strided block per channel.
                cpe.dma_get_strided(
                    x,
                    (b * channels * height + row) * width + x0,
                    n,
                    height * width,
                    channels,
                    &mut xs[..channels * n],
                );
                cpe.compute((channels * n * (p.local_size + 10)) as u64, || {
                    for xi in 0..n {
                        for c in 0..channels {
                            let get = |j: usize| xs[j * n + xi] as f64;
                            let scale = scale_at(&p, channels, &get, c);
                            ys[c * n + xi] = (get(c) * scale.powf(-(p.beta as f64))) as f32;
                        }
                    }
                });
                cpe.dma_put_strided(
                    y,
                    (b * channels * height + row) * width + x0,
                    n,
                    height * width,
                    channels,
                    &ys[..channels * n],
                );
                x0 += n;
            }
            item += 64;
        }
    })
}

/// LRN backward over an NCHW tensor.
pub fn backward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    p: LrnParams,
    io: Option<(&[f32], &[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model(batch, channels, height, width, 2 * p.local_size, 3),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, out_grad, in_grad) = io.expect("functional LRN requires operands");
    let len = batch * channels * height * width;
    assert_eq!(input.len(), len);
    assert_eq!(out_grad.len(), len);
    assert_eq!(in_grad.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::lrn_backward(
            threads, batch, channels, height, width, p, input, out_grad, in_grad,
        );
        return LaunchReport::default();
    }
    let x = MemView::new(input);
    let dy = MemView::new(out_grad);
    let dx = MemViewMut::new(in_grad);
    let wc = width_chunk(channels, width, 3);
    let items = batch * height;
    cg.run_planned(&backward_plan(channels, width), move |cpe| {
        let mut xs = cpe.ldm.alloc_f32(channels * wc);
        let mut gs = cpe.ldm.alloc_f32(channels * wc);
        let mut ds = cpe.ldm.alloc_f32(channels * wc);
        let mut item = cpe.idx();
        while item < items {
            let b = item / height;
            let row = item % height;
            let mut x0 = 0;
            while x0 < width {
                let n = wc.min(width - x0);
                let base = (b * channels * height + row) * width + x0;
                cpe.dma_get_strided(
                    x,
                    base,
                    n,
                    height * width,
                    channels,
                    &mut xs[..channels * n],
                );
                cpe.dma_get_strided(
                    dy,
                    base,
                    n,
                    height * width,
                    channels,
                    &mut gs[..channels * n],
                );
                cpe.compute((channels * n * (2 * p.local_size + 15)) as u64, || {
                    let half = p.local_size / 2;
                    for xi in 0..n {
                        let get = |j: usize| xs[j * n + xi] as f64;
                        for c in 0..channels {
                            let scale_c = scale_at(&p, channels, &get, c);
                            let mut v = gs[c * n + xi] as f64 * scale_c.powf(-(p.beta as f64));
                            // Cross terms: every j whose window contains c.
                            let lo = c.saturating_sub(half);
                            let hi = (c + half).min(channels - 1);
                            for j in lo..=hi {
                                let scale_j = scale_at(&p, channels, &get, j);
                                let yj = get(j) * scale_j.powf(-(p.beta as f64));
                                v -= 2.0 * p.alpha as f64 * p.beta as f64 / p.local_size as f64
                                    * get(c)
                                    * gs[j * n + xi] as f64
                                    * yj
                                    / scale_j;
                            }
                            ds[c * n + xi] = v as f32;
                        }
                    }
                });
                cpe.dma_put_strided(dx, base, n, height * width, channels, &ds[..channels * n]);
                x0 += n;
            }
            item += 64;
        }
    })
}

/// Shared timing model: `streams` slabs moved per chunk, window-dependent
/// flops per element.
pub fn time_model(
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    window_ops: usize,
    streams: usize,
) -> SimTime {
    let wc = width_chunk(channels, width, streams);
    let chunks = width.div_ceil(wc);
    let per_chunk = streams as f64 * dma::strided_time(wc * 4, channels, 64).seconds()
        + crate::gemm_flop_time((channels * wc * (window_ops + 10)) as u64).seconds();
    let per_item = chunks as f64 * per_chunk;
    SimTime::from_seconds(
        sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
            + (batch * height).div_ceil(64) as f64 * per_item,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: i64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as i64 * 23 + seed) % 13) - 6) as f32 * 0.21)
            .collect()
    }

    fn host_forward(b: usize, c: usize, h: usize, w: usize, p: &LrnParams, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; x.len()];
        for bi in 0..b {
            for yi in 0..h {
                for xi in 0..w {
                    for ci in 0..c {
                        let get = |j: usize| x[((bi * c + j) * h + yi) * w + xi] as f64;
                        let scale = scale_at(p, c, &get, ci);
                        y[((bi * c + ci) * h + yi) * w + xi] =
                            (get(ci) * scale.powf(-(p.beta as f64))) as f32;
                    }
                }
            }
        }
        y
    }

    #[test]
    fn forward_matches_host() {
        let (b, c, h, w) = (2, 7, 4, 6);
        let p = LrnParams::default();
        let x = pattern(b * c * h * w, 1);
        let want = host_forward(b, c, h, w, &p, &x);
        let mut got = vec![0.0; x.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(&mut cg, b, c, h, w, p, Some((&x, &mut got)));
        for i in 0..x.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-5,
                "elem {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (b, c, h, w) = (1, 6, 2, 3);
        let p = LrnParams {
            local_size: 3,
            alpha: 0.1,
            beta: 0.5,
            k: 2.0,
        };
        let x = pattern(b * c * h * w, 3);
        let dy = pattern(x.len(), 5);
        let loss = |xv: &[f32]| -> f64 {
            host_forward(b, c, h, w, &p, xv)
                .iter()
                .zip(&dy)
                .map(|(a, g)| *a as f64 * *g as f64)
                .sum()
        };
        let mut dx = vec![0.0; x.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        backward(&mut cg, b, c, h, w, p, Some((&x, &dy, &mut dx)));
        let hh = 1e-3f32;
        let mut xp = x.clone();
        for idx in [0usize, 5, 17, 30] {
            let orig = xp[idx];
            xp[idx] = orig + hh;
            let up = loss(&xp);
            xp[idx] = orig - hh;
            let down = loss(&xp);
            xp[idx] = orig;
            let fd = (up - down) / (2.0 * hh as f64);
            assert!(
                (fd - dx[idx] as f64).abs() < 1e-3,
                "dx[{idx}]: fd {fd} vs {}",
                dx[idx]
            );
        }
    }

    #[test]
    fn wide_rows_are_chunked() {
        // 192 channels x 56 wide (GoogLeNet norm2 geometry, shrunk batch).
        let (b, c, h, w) = (1, 192, 3, 56);
        assert!(width_chunk(c, w, 3) < w);
        let p = LrnParams::default();
        let x = pattern(b * c * h * w, 7);
        let want = host_forward(b, c, h, w, &p, &x);
        let mut got = vec![0.0; x.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(&mut cg, b, c, h, w, p, Some((&x, &mut got)));
        for i in 0..x.len() {
            assert!((got[i] - want[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn timing_mode_charges_model() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let p = LrnParams::default();
        let r = forward(&mut cg, 128, 64, 56, 56, p, None);
        assert_eq!(r.elapsed, time_model(128, 64, 56, 56, p.local_size, 2));
    }
}
