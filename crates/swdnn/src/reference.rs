//! Scalar reference implementations.
//!
//! These are the oracles for unit and property tests: straightforward,
//! obviously-correct loops with no blocking, no LDM and no mesh. Every
//! accelerated kernel in this crate must agree with its reference
//! implementation to within floating-point reassociation error.
//!
//! To mirror the hardware (which computes single-precision work in double
//! precision — the SW26010 has no native f32 arithmetic), accumulations
//! here are carried out in f64, which also makes the oracles a tight
//! comparison target.

use crate::shapes::{ConvShape, GemmDims, PoolMethod, PoolShape, Trans};

/// `C = A * B + beta * C` on row-major matrices with optional transposes.
pub fn gemm(dims: GemmDims, ta: Trans, tb: Trans, a: &[f32], b: &[f32], beta: f32, c: &mut [f32]) {
    let GemmDims { m, n, k } = dims;
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for t in 0..k {
                let av = if ta.is_trans() {
                    a[t * m + i]
                } else {
                    a[i * k + t]
                };
                let bv = if tb.is_trans() {
                    b[j * k + t]
                } else {
                    b[t * n + j]
                };
                acc += av as f64 * bv as f64;
            }
            c[i * n + j] = (acc + (beta * c[i * n + j]) as f64) as f32;
        }
    }
}

/// im2col for one image: input `(N_i, R_i, C_i)` to a column matrix of
/// shape `(K*K*N_i, R_o*C_o)`, zero-padding applied implicitly.
pub fn im2col(shape: &ConvShape, image: &[f32], cols: &mut [f32]) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    assert_eq!(image.len(), shape.in_c * ih * iw);
    assert_eq!(cols.len(), shape.col_rows() * shape.col_cols());
    let mut row = 0usize;
    for c in 0..shape.in_c {
        for ky in 0..shape.k {
            for kx in 0..shape.k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let y = (oy * shape.stride + ky) as isize - shape.pad as isize;
                        let x = (ox * shape.stride + kx) as isize - shape.pad as isize;
                        let v = if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                            image[(c * ih + y as usize) * iw + x as usize]
                        } else {
                            0.0
                        };
                        cols[row * (oh * ow) + oy * ow + ox] = v;
                    }
                }
                row += 1;
            }
        }
    }
}

/// col2im for one image: scatter-add the column matrix back into image
/// layout (the adjoint of [`im2col`]).
pub fn col2im(shape: &ConvShape, cols: &[f32], image: &mut [f32]) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    assert_eq!(image.len(), shape.in_c * ih * iw);
    assert_eq!(cols.len(), shape.col_rows() * shape.col_cols());
    image.fill(0.0);
    let mut row = 0usize;
    for c in 0..shape.in_c {
        for ky in 0..shape.k {
            for kx in 0..shape.k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let y = (oy * shape.stride + ky) as isize - shape.pad as isize;
                        let x = (ox * shape.stride + kx) as isize - shape.pad as isize;
                        if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                            image[(c * ih + y as usize) * iw + x as usize] +=
                                cols[row * (oh * ow) + oy * ow + ox];
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// Direct convolution forward for the whole batch:
/// `output(b, o, y, x) = sum_{c,ky,kx} input(b, c, ...) * w(o, c, ky, kx)`.
pub fn conv_forward(shape: &ConvShape, input: &[f32], weights: &[f32], output: &mut [f32]) {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ih, iw) = (shape.in_h, shape.in_w);
    assert_eq!(input.len(), shape.input_len());
    assert_eq!(weights.len(), shape.weight_len());
    assert_eq!(output.len(), shape.output_len());
    for b in 0..shape.batch {
        for o in 0..shape.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f64;
                    for c in 0..shape.in_c {
                        for ky in 0..shape.k {
                            for kx in 0..shape.k {
                                let y = (oy * shape.stride + ky) as isize - shape.pad as isize;
                                let x = (ox * shape.stride + kx) as isize - shape.pad as isize;
                                if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                    let iv = input[((b * shape.in_c + c) * ih + y as usize) * iw
                                        + x as usize];
                                    let wv = weights
                                        [((o * shape.in_c + c) * shape.k + ky) * shape.k + kx];
                                    acc += iv as f64 * wv as f64;
                                }
                            }
                        }
                    }
                    output[((b * shape.out_c + o) * oh + oy) * ow + ox] = acc as f32;
                }
            }
        }
    }
}

/// Direct convolution backward: gradients w.r.t. input and weights.
pub fn conv_backward(
    shape: &ConvShape,
    input: &[f32],
    weights: &[f32],
    out_grad: &[f32],
    in_grad: &mut [f32],
    w_grad: &mut [f32],
) {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ih, iw) = (shape.in_h, shape.in_w);
    in_grad.fill(0.0);
    w_grad.fill(0.0);
    for b in 0..shape.batch {
        for o in 0..shape.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = out_grad[((b * shape.out_c + o) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for c in 0..shape.in_c {
                        for ky in 0..shape.k {
                            for kx in 0..shape.k {
                                let y = (oy * shape.stride + ky) as isize - shape.pad as isize;
                                let x = (ox * shape.stride + kx) as isize - shape.pad as isize;
                                if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                    let ii =
                                        ((b * shape.in_c + c) * ih + y as usize) * iw + x as usize;
                                    let wi = ((o * shape.in_c + c) * shape.k + ky) * shape.k + kx;
                                    in_grad[ii] += g * weights[wi];
                                    w_grad[wi] += g * input[ii];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Pooling forward; for max pooling also records the argmax index (into the
/// per-channel image) used by the backward pass.
pub fn pool_forward(
    shape: &PoolShape,
    input: &[f32],
    output: &mut [f32],
    argmax: Option<&mut [usize]>,
) {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ih, iw) = (shape.in_h, shape.in_w);
    assert_eq!(input.len(), shape.input_len());
    assert_eq!(output.len(), shape.output_len());
    let mut argmax = argmax;
    for b in 0..shape.batch {
        for c in 0..shape.channels {
            let img = &input[(b * shape.channels + c) * ih * iw..][..ih * iw];
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = (oy * shape.stride) as isize - shape.pad as isize;
                    let x0 = (ox * shape.stride) as isize - shape.pad as isize;
                    let oi = ((b * shape.channels + c) * oh + oy) * ow + ox;
                    match shape.method {
                        PoolMethod::Max => {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_i = 0usize;
                            for ky in 0..shape.k {
                                for kx in 0..shape.k {
                                    let y = y0 + ky as isize;
                                    let x = x0 + kx as isize;
                                    if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                        let i = y as usize * iw + x as usize;
                                        if img[i] > best {
                                            best = img[i];
                                            best_i = i;
                                        }
                                    }
                                }
                            }
                            output[oi] = if best == f32::NEG_INFINITY { 0.0 } else { best };
                            if let Some(am) = argmax.as_deref_mut() {
                                am[oi] = best_i;
                            }
                        }
                        PoolMethod::Average => {
                            let mut sum = 0.0f64;
                            let mut count = 0usize;
                            for ky in 0..shape.k {
                                for kx in 0..shape.k {
                                    let y = y0 + ky as isize;
                                    let x = x0 + kx as isize;
                                    if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                        sum += img[y as usize * iw + x as usize] as f64;
                                        count += 1;
                                    }
                                }
                            }
                            output[oi] = if count > 0 {
                                (sum / count as f64) as f32
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Pooling backward.
pub fn pool_backward(
    shape: &PoolShape,
    out_grad: &[f32],
    argmax: Option<&[usize]>,
    in_grad: &mut [f32],
) {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ih, iw) = (shape.in_h, shape.in_w);
    in_grad.fill(0.0);
    for b in 0..shape.batch {
        for c in 0..shape.channels {
            let grad_img = &mut in_grad[(b * shape.channels + c) * ih * iw..][..ih * iw];
            for oy in 0..oh {
                for ox in 0..ow {
                    let oi = ((b * shape.channels + c) * oh + oy) * ow + ox;
                    let g = out_grad[oi];
                    match shape.method {
                        PoolMethod::Max => {
                            let am = argmax.expect("max pooling backward needs argmax");
                            grad_img[am[oi]] += g;
                        }
                        PoolMethod::Average => {
                            let y0 = (oy * shape.stride) as isize - shape.pad as isize;
                            let x0 = (ox * shape.stride) as isize - shape.pad as isize;
                            let mut count = 0usize;
                            for ky in 0..shape.k {
                                for kx in 0..shape.k {
                                    let y = y0 + ky as isize;
                                    let x = x0 + kx as isize;
                                    if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                        count += 1;
                                    }
                                }
                            }
                            if count > 0 {
                                let share = g / count as f32;
                                for ky in 0..shape.k {
                                    for kx in 0..shape.k {
                                        let y = y0 + ky as isize;
                                        let x = x0 + kx as isize;
                                        if y >= 0
                                            && x >= 0
                                            && (y as usize) < ih
                                            && (x as usize) < iw
                                        {
                                            grad_img[y as usize * iw + x as usize] += share;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_identity() {
        // A * I = A.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let eye = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]; // 3x3
        let mut c = vec![0.0; 6];
        gemm(
            GemmDims::new(2, 3, 3),
            Trans::No,
            Trans::No,
            &a,
            &eye,
            0.0,
            &mut c,
        );
        assert_eq!(c, a);
    }

    #[test]
    fn gemm_transposes_agree() {
        // (A^T stored) x B must equal A x B.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let a_t = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // stored 3x2
        let b = vec![1.0, -1.0, 0.5, 2.0, 3.0, -2.0]; // 3x2
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        gemm(
            GemmDims::new(2, 2, 3),
            Trans::No,
            Trans::No,
            &a,
            &b,
            0.0,
            &mut c1,
        );
        gemm(
            GemmDims::new(2, 2, 3),
            Trans::Yes,
            Trans::No,
            &a_t,
            &b,
            0.0,
            &mut c2,
        );
        assert_eq!(c1, c2);

        let b_t = vec![1.0, 0.5, 3.0, -1.0, 2.0, -2.0]; // stored 2x3
        let mut c3 = vec![0.0; 4];
        gemm(
            GemmDims::new(2, 2, 3),
            Trans::No,
            Trans::Yes,
            &a,
            &b_t,
            0.0,
            &mut c3,
        );
        assert_eq!(c1, c3);
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![10.0, 0.0, 0.0, 10.0];
        gemm(
            GemmDims::new(2, 2, 2),
            Trans::No,
            Trans::No,
            &a,
            &b,
            1.0,
            &mut c,
        );
        assert_eq!(c, vec![12.0, 0.0, 0.0, 12.0]);
    }

    fn small_shape() -> ConvShape {
        ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 5,
            in_w: 5,
            out_c: 4,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        let shape = small_shape();
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 7) % 13) as f32 - 6.0)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 3) % 5) as f32 * 0.5 - 1.0)
            .collect();
        let mut direct = vec![0.0; shape.output_len()];
        conv_forward(&shape, &input, &weights, &mut direct);

        // Explicit plan: per image, im2col then GEMM (N_o x colrows) * cols.
        let per_img_in = shape.in_c * shape.in_h * shape.in_w;
        let per_img_out = shape.out_c * shape.out_h() * shape.out_w();
        let mut cols = vec![0.0; shape.col_rows() * shape.col_cols()];
        for b in 0..shape.batch {
            im2col(&shape, &input[b * per_img_in..][..per_img_in], &mut cols);
            let mut out = vec![0.0; per_img_out];
            gemm(
                GemmDims::new(shape.out_c, shape.col_cols(), shape.col_rows()),
                Trans::No,
                Trans::No,
                &weights,
                &cols,
                0.0,
                &mut out,
            );
            for (i, v) in out.iter().enumerate() {
                assert!(
                    (direct[b * per_img_out + i] - v).abs() < 1e-4,
                    "mismatch at image {b} element {i}"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining property of the
        // adjoint, which is exactly what backprop relies on.
        let shape = ConvShape {
            batch: 1,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 1,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let x: Vec<f32> = (0..shape.in_c * 16)
            .map(|i| (i as f32) * 0.25 - 2.0)
            .collect();
        let y: Vec<f32> = (0..shape.col_rows() * shape.col_cols())
            .map(|i| ((i % 7) as f32) - 3.0)
            .collect();
        let mut cols = vec![0.0; y.len()];
        im2col(&shape, &x, &mut cols);
        let lhs: f64 = cols
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let mut img = vec![0.0; x.len()];
        col2im(&shape, &y, &mut img);
        let rhs: f64 = x
            .iter()
            .zip(&img)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv_backward_finite_difference() {
        // Check d(loss)/d(w) where loss = sum(output) against finite
        // differences for a few weights.
        let shape = ConvShape {
            batch: 1,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 2,
            k: 3,
            stride: 1,
            pad: 0,
        };
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i % 5) as f32) * 0.3)
            .collect();
        let mut weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i % 3) as f32) * 0.2 - 0.2)
            .collect();
        let out_grad = vec![1.0f32; shape.output_len()];
        let mut in_grad = vec![0.0; shape.input_len()];
        let mut w_grad = vec![0.0; shape.weight_len()];
        conv_backward(
            &shape,
            &input,
            &weights,
            &out_grad,
            &mut in_grad,
            &mut w_grad,
        );

        let loss = |w: &[f32]| -> f64 {
            let mut out = vec![0.0; shape.output_len()];
            conv_forward(&shape, &input, w, &mut out);
            out.iter().map(|v| *v as f64).sum()
        };
        let eps = 1e-2f32;
        for wi in [0usize, 5, 11, 17] {
            let orig = weights[wi];
            weights[wi] = orig + eps;
            let up = loss(&weights);
            weights[wi] = orig - eps;
            let down = loss(&weights);
            weights[wi] = orig;
            let fd = (up - down) / (2.0 * eps as f64);
            assert!(
                (fd - w_grad[wi] as f64).abs() < 1e-2,
                "weight {wi}: fd={fd} analytic={}",
                w_grad[wi]
            );
        }
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let shape = PoolShape {
            batch: 1,
            channels: 1,
            in_h: 4,
            in_w: 4,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0, 5.0, 1.0,
            3.0, 4.0, 2.0, 0.0,
            0.0, 1.0, 1.0, 1.0,
            9.0, 0.0, 1.0, 2.0,
        ];
        let mut out = vec![0.0; 4];
        let mut am = vec![0usize; 4];
        pool_forward(&shape, &input, &mut out, Some(&mut am));
        assert_eq!(out, vec![4.0, 5.0, 9.0, 2.0]);
        let mut in_grad = vec![0.0; 16];
        pool_backward(&shape, &[1.0, 1.0, 1.0, 1.0], Some(&am), &mut in_grad);
        assert_eq!(in_grad[5], 1.0); // position of 4.0
        assert_eq!(in_grad[2], 1.0); // position of 5.0
        assert_eq!(in_grad[12], 1.0); // position of 9.0
        assert_eq!(in_grad[15], 1.0); // position of 2.0
        assert_eq!(in_grad.iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn avg_pool_is_mean() {
        let shape = PoolShape {
            batch: 1,
            channels: 1,
            in_h: 2,
            in_w: 2,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Average,
        };
        let input = vec![1.0, 2.0, 3.0, 6.0];
        let mut out = vec![0.0; 1];
        pool_forward(&shape, &input, &mut out, None);
        assert_eq!(out[0], 3.0);
        let mut in_grad = vec![0.0; 4];
        pool_backward(&shape, &[4.0], None, &mut in_grad);
        assert_eq!(in_grad, vec![1.0; 4]);
    }
}
