//! Shape descriptors shared by the kernel library.

/// Why a layer shape was rejected. Kernel entry points check shapes
/// *before* any output-extent arithmetic, so a degenerate configuration
/// (zero-sized spatial dims, kernel larger than the padded input) fails
/// with one of these instead of a usize underflow deep in an index
/// computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension that must be positive is zero (`which` names it).
    ZeroDim {
        op: &'static str,
        which: &'static str,
    },
    /// Kernel/window size or stride is zero.
    ZeroKernelOrStride { op: &'static str },
    /// The kernel/window does not fit inside the padded input, so the
    /// output extent `(in + 2*pad - k)/stride + 1` would underflow.
    KernelExceedsInput {
        op: &'static str,
        k: usize,
        padded_h: usize,
        padded_w: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroDim { op, which } => {
                write!(f, "{op}: dimension `{which}` must be positive")
            }
            ShapeError::ZeroKernelOrStride { op } => {
                write!(f, "{op}: kernel size and stride must be positive")
            }
            ShapeError::KernelExceedsInput {
                op,
                k,
                padded_h,
                padded_w,
            } => write!(
                f,
                "{op}: kernel {k} larger than padded input {padded_h}x{padded_w}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

impl From<ShapeError> for String {
    fn from(e: ShapeError) -> String {
        e.to_string()
    }
}

/// Dimensions of a GEMM `C (m x n) = A (m x k) * B (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmDims {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl GemmDims {
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmDims { m, n, k }
    }

    /// Multiply-add flop count (2mnk).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Whether an operand is stored transposed (row-major storage throughout;
/// `Trans` means the logical `m x k` matrix is stored as `k x m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Trans {
    #[default]
    No,
    Yes,
}

impl Trans {
    pub fn is_trans(self) -> bool {
        matches!(self, Trans::Yes)
    }
}

/// Configuration of a 2-D convolution, square kernels and symmetric
/// stride/padding as used by all the networks in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Mini-batch size.
    pub batch: usize,
    /// Input channels (paper: N_i).
    pub in_c: usize,
    /// Input height (paper: R_i).
    pub in_h: usize,
    /// Input width (paper: C_i).
    pub in_w: usize,
    /// Output channels / filters (paper: N_o).
    pub out_c: usize,
    /// Filter size K (K x K).
    pub k: usize,
    /// Stride S.
    pub stride: usize,
    /// Zero padding P.
    pub pad: usize,
}

impl ConvShape {
    /// Output height: (R_i + 2P - K)/S + 1.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width: (C_i + 2P - K)/S + 1.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Elements of the input tensor (B, N_i, R_i, C_i).
    pub fn input_len(&self) -> usize {
        self.batch * self.in_c * self.in_h * self.in_w
    }

    /// Elements of the output tensor (B, N_o, R_o, C_o).
    pub fn output_len(&self) -> usize {
        self.batch * self.out_c * self.out_h() * self.out_w()
    }

    /// Elements of the filter tensor (N_o, N_i, K, K).
    pub fn weight_len(&self) -> usize {
        self.out_c * self.in_c * self.k * self.k
    }

    /// Rows of the im2col matrix for one image: K*K*N_i.
    pub fn col_rows(&self) -> usize {
        self.k * self.k * self.in_c
    }

    /// Columns of the im2col matrix for one image: R_o * C_o.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Forward multiply-add flops for the whole batch.
    pub fn forward_flops(&self) -> u64 {
        2 * self.batch as u64
            * self.out_c as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.in_c as u64
            * (self.k * self.k) as u64
    }

    /// Validate that the geometry is consistent. Every conv/im2col kernel
    /// entry point calls this before touching output extents, so the
    /// `out_h()`/`out_w()` subtraction can never underflow on a shape
    /// that got past it.
    pub fn validate(&self) -> Result<(), ShapeError> {
        const OP: &str = "conv";
        for (which, v) in [
            ("batch", self.batch),
            ("in_c", self.in_c),
            ("in_h", self.in_h),
            ("in_w", self.in_w),
            ("out_c", self.out_c),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroDim { op: OP, which });
            }
        }
        if self.k == 0 || self.stride == 0 {
            return Err(ShapeError::ZeroKernelOrStride { op: OP });
        }
        if self.in_h + 2 * self.pad < self.k || self.in_w + 2 * self.pad < self.k {
            return Err(ShapeError::KernelExceedsInput {
                op: OP,
                k: self.k,
                padded_h: self.in_h + 2 * self.pad,
                padded_w: self.in_w + 2 * self.pad,
            });
        }
        Ok(())
    }
}

/// Pooling operator type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMethod {
    Max,
    Average,
}

/// Configuration of a 2-D pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolShape {
    pub batch: usize,
    pub channels: usize,
    pub in_h: usize,
    pub in_w: usize,
    /// Window size K (K x K tiles).
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
    pub method: PoolMethod,
}

impl PoolShape {
    /// Caffe-style ceil-mode output size, clipped so windows start inside
    /// the padded input.
    pub fn out_h(&self) -> usize {
        pooled_dim(self.in_h, self.k, self.stride, self.pad)
    }

    pub fn out_w(&self) -> usize {
        pooled_dim(self.in_w, self.k, self.stride, self.pad)
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.channels * self.in_h * self.in_w
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.channels * self.out_h() * self.out_w()
    }

    /// Validate that the geometry is consistent (see
    /// [`ConvShape::validate`] for the contract).
    pub fn validate(&self) -> Result<(), ShapeError> {
        const OP: &str = "pool";
        for (which, v) in [
            ("batch", self.batch),
            ("channels", self.channels),
            ("in_h", self.in_h),
            ("in_w", self.in_w),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroDim { op: OP, which });
            }
        }
        if self.k == 0 || self.stride == 0 {
            return Err(ShapeError::ZeroKernelOrStride { op: OP });
        }
        if self.in_h + 2 * self.pad < self.k || self.in_w + 2 * self.pad < self.k {
            return Err(ShapeError::KernelExceedsInput {
                op: OP,
                k: self.k,
                padded_h: self.in_h + 2 * self.pad,
                padded_w: self.in_w + 2 * self.pad,
            });
        }
        Ok(())
    }
}

fn pooled_dim(in_dim: usize, k: usize, stride: usize, pad: usize) -> usize {
    // Caffe: ceil((in + 2*pad - k) / stride) + 1, then clip the last window
    // to start within the input + padding.
    let mut out = (in_dim + 2 * pad - k).div_ceil(stride) + 1;
    if pad > 0 && (out - 1) * stride >= in_dim + pad {
        out -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_conv1_1_shape() {
        // VGG-16 conv1_1: 3 -> 64 channels, 224x224, k=3, s=1, p=1.
        let c = ConvShape {
            batch: 128,
            in_c: 3,
            in_h: 224,
            in_w: 224,
            out_c: 64,
            k: 3,
            stride: 1,
            pad: 1,
        };
        c.validate().unwrap();
        assert_eq!(c.out_h(), 224);
        assert_eq!(c.out_w(), 224);
        assert_eq!(c.col_rows(), 27);
        assert_eq!(c.col_cols(), 224 * 224);
    }

    #[test]
    fn alexnet_conv1_shape() {
        // AlexNet conv1: 3 -> 96, 227x227, k=11, s=4, p=0 -> 55x55.
        let c = ConvShape {
            batch: 256,
            in_c: 3,
            in_h: 227,
            in_w: 227,
            out_c: 96,
            k: 11,
            stride: 4,
            pad: 0,
        };
        assert_eq!(c.out_h(), 55);
        assert_eq!(c.out_w(), 55);
    }

    #[test]
    fn pool_ceil_mode_matches_caffe() {
        // AlexNet pool1: 55x55, k=3, s=2 -> 27x27 (ceil mode).
        let p = PoolShape {
            batch: 1,
            channels: 96,
            in_h: 55,
            in_w: 55,
            k: 3,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        assert_eq!(p.out_h(), 27);
        assert_eq!(p.out_w(), 27);
    }

    #[test]
    fn gemm_flops() {
        assert_eq!(GemmDims::new(2, 3, 4).flops(), 48);
    }

    #[test]
    fn invalid_conv_rejected() {
        let c = ConvShape {
            batch: 1,
            in_c: 1,
            in_h: 2,
            in_w: 2,
            out_c: 1,
            k: 5,
            stride: 1,
            pad: 0,
        };
        assert!(matches!(
            c.validate(),
            Err(ShapeError::KernelExceedsInput { k: 5, .. })
        ));
    }

    #[test]
    fn degenerate_conv_shapes_are_typed_errors() {
        let base = ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 8,
            in_w: 8,
            out_c: 4,
            k: 3,
            stride: 1,
            pad: 1,
        };
        // 0-sized spatial dim.
        let mut c = base;
        c.in_h = 0;
        assert_eq!(
            c.validate(),
            Err(ShapeError::ZeroDim {
                op: "conv",
                which: "in_h"
            })
        );
        // Zero batch / channels.
        let mut c = base;
        c.batch = 0;
        assert!(matches!(c.validate(), Err(ShapeError::ZeroDim { .. })));
        let mut c = base;
        c.in_c = 0;
        assert!(matches!(c.validate(), Err(ShapeError::ZeroDim { .. })));
        // Zero stride.
        let mut c = base;
        c.stride = 0;
        assert!(matches!(
            c.validate(),
            Err(ShapeError::ZeroKernelOrStride { .. })
        ));
        // Stride larger than the extent is degenerate but well-defined:
        // one output position.
        let mut c = base;
        c.stride = 50;
        c.validate().unwrap();
        assert_eq!((c.out_h(), c.out_w()), (1, 1));
        // The error converts into the String the layer builders expect.
        let mut c = base;
        c.k = 0;
        let as_string: String = c.validate().unwrap_err().into();
        assert!(as_string.contains("kernel size and stride"), "{as_string}");
    }

    #[test]
    fn degenerate_pool_shapes_are_typed_errors() {
        let base = PoolShape {
            batch: 1,
            channels: 4,
            in_h: 6,
            in_w: 6,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        base.validate().unwrap();
        let mut p = base;
        p.in_w = 0;
        assert_eq!(
            p.validate(),
            Err(ShapeError::ZeroDim {
                op: "pool",
                which: "in_w"
            })
        );
        let mut p = base;
        p.k = 9;
        assert!(matches!(
            p.validate(),
            Err(ShapeError::KernelExceedsInput { .. })
        ));
        let mut p = base;
        p.stride = 0;
        assert!(matches!(
            p.validate(),
            Err(ShapeError::ZeroKernelOrStride { .. })
        ));
    }
}
