//! Mixed convolution strategy (Sec. IV-B / VI-A).
//!
//! swCaffe keeps both convolution plans and picks per layer and per
//! direction: the implicit plan where its channel gates admit it and it
//! models/measures faster, the explicit plan otherwise. The paper does the
//! measurement online during the first two training iterations; the
//! [`AutoTuner`] reproduces that protocol, while [`choose_forward`] /
//! [`choose_backward`] give the model-predicted answer directly (identical
//! in the simulator, where measurements *are* the model).

use sw26010::SimTime;

use crate::shapes::ConvShape;
use crate::{conv_explicit, conv_implicit};

/// Which convolution plan to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Explicit,
    Implicit,
}

/// Model-predicted best forward strategy.
pub fn choose_forward(shape: &ConvShape) -> Strategy {
    if conv_implicit::supports_forward(shape)
        && conv_implicit::forward_time(shape) < conv_explicit::forward_time(shape)
    {
        Strategy::Implicit
    } else {
        Strategy::Explicit
    }
}

/// Model-predicted best backward strategy (both gradients considered
/// together, as swCaffe schedules them as one phase).
pub fn choose_backward(shape: &ConvShape) -> Strategy {
    if conv_implicit::supports_backward(shape)
        && implicit_backward_total(shape) < explicit_backward_total(shape)
    {
        Strategy::Implicit
    } else {
        Strategy::Explicit
    }
}

fn implicit_backward_total(shape: &ConvShape) -> SimTime {
    conv_implicit::backward_weights_time(shape) + conv_implicit::backward_input_time(shape)
}

fn explicit_backward_total(shape: &ConvShape) -> SimTime {
    conv_explicit::backward_weights_time(shape) + conv_explicit::backward_input_time(shape)
}

/// Best-available forward duration.
pub fn forward_time_best(shape: &ConvShape) -> SimTime {
    match choose_forward(shape) {
        Strategy::Explicit => conv_explicit::forward_time(shape),
        Strategy::Implicit => conv_implicit::forward_time(shape),
    }
}

/// Best-available backward duration (both gradients).
pub fn backward_time_best(shape: &ConvShape) -> SimTime {
    match choose_backward(shape) {
        Strategy::Explicit => explicit_backward_total(shape),
        Strategy::Implicit => implicit_backward_total(shape),
    }
}

/// Online autotuner reproducing the paper's protocol: run both candidate
/// plans for the first `trial_iters` iterations, record measured times,
/// then lock in the faster plan for the rest of training.
#[derive(Debug)]
pub struct AutoTuner {
    trial_iters: usize,
    seen: usize,
    explicit_total: f64,
    implicit_total: f64,
    implicit_allowed: bool,
    locked: Option<Strategy>,
}

impl AutoTuner {
    pub fn new(trial_iters: usize, implicit_allowed: bool) -> Self {
        AutoTuner {
            trial_iters,
            seen: 0,
            explicit_total: 0.0,
            implicit_total: 0.0,
            implicit_allowed,
            locked: if implicit_allowed {
                None
            } else {
                Some(Strategy::Explicit)
            },
        }
    }

    /// Strategy to use for the next iteration. During the trial window the
    /// tuner alternates so both plans get measured.
    pub fn next_strategy(&self) -> Strategy {
        match self.locked {
            Some(s) => s,
            None => {
                if self.seen.is_multiple_of(2) {
                    Strategy::Explicit
                } else {
                    Strategy::Implicit
                }
            }
        }
    }

    /// Record a measured duration for the plan that ran.
    pub fn record(&mut self, strategy: Strategy, elapsed: SimTime) {
        if self.locked.is_some() {
            return;
        }
        match strategy {
            Strategy::Explicit => self.explicit_total += elapsed.seconds(),
            Strategy::Implicit => self.implicit_total += elapsed.seconds(),
        }
        self.seen += 1;
        if self.seen >= 2 * self.trial_iters {
            self.locked = Some(
                if self.implicit_allowed && self.implicit_total < self.explicit_total {
                    Strategy::Implicit
                } else {
                    Strategy::Explicit
                },
            );
        }
    }

    /// The decision, once made.
    pub fn locked(&self) -> Option<Strategy> {
        self.locked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_layer(ni: usize, no: usize, hw: usize) -> ConvShape {
        ConvShape {
            batch: 128,
            in_c: ni,
            in_h: hw,
            in_w: hw,
            out_c: no,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn conv1_1_must_be_explicit() {
        // Paper Table II: implicit cannot handle 3 input channels.
        assert_eq!(choose_forward(&vgg_layer(3, 64, 224)), Strategy::Explicit);
        assert_eq!(choose_backward(&vgg_layer(3, 64, 224)), Strategy::Explicit);
    }

    #[test]
    fn early_backward_layers_fall_back_to_explicit() {
        // conv1_2 and conv2_1 backward: implicit gated out below 128 ch.
        assert_eq!(choose_backward(&vgg_layer(64, 64, 224)), Strategy::Explicit);
        assert_eq!(
            choose_backward(&vgg_layer(64, 128, 112)),
            Strategy::Explicit
        );
    }

    #[test]
    fn conv1_2_forward_prefers_implicit() {
        // Paper Table II: 4.30 s implicit vs 7.79 s explicit.
        assert_eq!(choose_forward(&vgg_layer(64, 64, 224)), Strategy::Implicit);
    }

    #[test]
    fn deep_small_image_layers_prefer_implicit() {
        // conv5_x: 512 channels at 14x14 — implicit wins (0.40 vs 0.62).
        assert_eq!(choose_forward(&vgg_layer(512, 512, 14)), Strategy::Implicit);
    }

    #[test]
    fn autotuner_locks_after_trials() {
        let mut t = AutoTuner::new(2, true);
        assert!(t.locked().is_none());
        // Feed measurements: implicit consistently faster.
        for i in 0..4 {
            let s = t.next_strategy();
            let elapsed = match s {
                Strategy::Explicit => SimTime::from_seconds(2.0),
                Strategy::Implicit => SimTime::from_seconds(1.0),
            };
            t.record(s, elapsed);
            if i < 3 {
                assert_eq!(t.locked().is_some(), i >= 3);
            }
        }
        assert_eq!(t.locked(), Some(Strategy::Implicit));
        assert_eq!(t.next_strategy(), Strategy::Implicit);
    }

    #[test]
    fn autotuner_respects_gate() {
        let mut t = AutoTuner::new(2, false);
        assert_eq!(t.locked(), Some(Strategy::Explicit));
        t.record(Strategy::Explicit, SimTime::from_seconds(5.0));
        assert_eq!(t.next_strategy(), Strategy::Explicit);
    }
}
