//! Declarative tiling schemes for the CPE-mesh GEMM family.
//!
//! A [`TilingScheme`] bundles everything that used to be hard-wired into
//! the kernels as `TilePlan::choose` + static constants: the LDM block
//! extents (`mt`/`nt`/`kt`), the DMA staging depth (single vs
//! double-buffered loads) and the register-communication pattern (row+col
//! broadcasts vs per-CPE DMA replication). Kernels take the scheme as a
//! value — [`crate::gemm::gemm_with_scheme`] — so the `swtune` searcher
//! can enumerate the space, while the hand-picked defaults become just
//! one point in it ([`TilingScheme::hand`]).
//!
//! Feasibility is part of the type's contract: [`TilingScheme::validate`]
//! goes through the same [`KernelPlan::validate`] the launch path
//! enforces, so an infeasible scheme is rejected with the named-buffer
//! diagnostic in release builds — there is no `debug_assert!`-only path
//! left.

use sw26010::{KernelPlan, PlanViolation, SimTime, Stats};

use crate::gemm::{self, TilePlan};
use crate::shapes::GemmDims;

/// DMA staging depth of the tile loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffering {
    /// Synchronous loads: each K panel's tiles are fetched, then used.
    Single,
    /// Two staging pairs; the next panel's fetch overlaps this panel's
    /// broadcast-and-accumulate steps (async DMA engine).
    Double,
}

/// How tiles reach the CPEs that need them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Broadcast {
    /// Row and column bus broadcasts (Fig. 3 / Principle 4): each element
    /// of A and B is DMA-fetched once per panel pass.
    RowCol,
    /// No register communication: every CPE DMA-replicates the full A row
    /// strip and B column strip itself (~8x the traffic). Kept in the
    /// search space as an honest, runnable alternative — the searcher has
    /// to *show* the broadcasts win rather than assume it.
    DmaReplicate,
}

/// One point in the GEMM design space: block extents + strategy enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingScheme {
    pub tile: TilePlan,
    pub buffering: Buffering,
    pub broadcast: Broadcast,
}

impl TilingScheme {
    /// The hand-picked plan every kernel shipped before the tuner: the
    /// `TilePlan::choose` extents, synchronous loads, bus broadcasts.
    pub fn hand(dims: GemmDims) -> TilingScheme {
        TilingScheme {
            tile: TilePlan::choose(dims),
            buffering: Buffering::Single,
            broadcast: Broadcast::RowCol,
        }
    }

    /// The launch-metadata descriptor of the kernel this scheme selects.
    pub fn kernel_plan(&self) -> KernelPlan {
        match (self.broadcast, self.buffering) {
            (Broadcast::RowCol, Buffering::Single) => gemm::kernel_plan(self.tile),
            (Broadcast::RowCol, Buffering::Double) => gemm::kernel_plan_double_buffered(self.tile),
            (Broadcast::DmaReplicate, _) => gemm::kernel_plan_no_rlc(self.tile),
        }
    }

    /// Structural feasibility: positive extents and an LDM-fitting
    /// working set for the *selected* kernel variant (double buffering
    /// and DMA replication both cost more LDM than the base kernel).
    pub fn validate(&self) -> Result<(), PlanViolation> {
        if self.tile.mt == 0 || self.tile.nt == 0 || self.tile.kt == 0 {
            return Err(PlanViolation::BadGeometry {
                plan: self.kernel_plan().name,
                n_cpes: 0,
            });
        }
        self.kernel_plan().validate()
    }

    /// Predicted duration of [`crate::gemm::gemm_with_scheme`] under this
    /// scheme — the cost model the autotuner searches with, identical to
    /// what timing-only execution charges.
    pub fn time_model(&self, dims: GemmDims, beta: f32) -> SimTime {
        match (self.broadcast, self.buffering) {
            (Broadcast::RowCol, Buffering::Single) => gemm::time_model(dims, beta, self.tile),
            (Broadcast::RowCol, Buffering::Double) => {
                gemm::time_model_double_buffered(dims, beta, self.tile)
            }
            (Broadcast::DmaReplicate, _) => gemm::time_model_no_rlc_scheme(dims, beta, self.tile),
        }
    }

    /// Predicted counter totals under this scheme.
    pub fn stats_model(&self, dims: GemmDims, beta: f32) -> Stats {
        match self.broadcast {
            Broadcast::RowCol => gemm::stats_model(dims, beta, self.tile),
            Broadcast::DmaReplicate => gemm::stats_model_no_rlc(dims, beta, self.tile),
        }
    }

    /// Compact display form, e.g. `16x24x32+db` or `8x8x8+norlc`.
    pub fn label(&self) -> String {
        let mut s = format!("{}x{}x{}", self.tile.mt, self.tile.nt, self.tile.kt);
        if self.buffering == Buffering::Double {
            s.push_str("+db");
        }
        if self.broadcast == Broadcast::DmaReplicate {
            s.push_str("+norlc");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_scheme_is_feasible_for_extreme_dims() {
        for dims in [
            GemmDims::new(1, 1, 1),
            GemmDims::new(4096, 4096, 4096),
            GemmDims::new(64, 50176, 27),
        ] {
            TilingScheme::hand(dims).validate().unwrap();
        }
    }

    #[test]
    fn variant_feasibility_binds_at_different_extents() {
        // A tile that fits the broadcast kernel can overflow the no-RLC
        // kernel (8x strips) — validate() must see the variant.
        let tile = TilePlan {
            mt: 32,
            nt: 32,
            kt: 32,
        };
        let rowcol = TilingScheme {
            tile,
            buffering: Buffering::Single,
            broadcast: Broadcast::RowCol,
        };
        rowcol.validate().unwrap();
        let norlc = TilingScheme {
            broadcast: Broadcast::DmaReplicate,
            ..rowcol
        };
        assert!(matches!(
            norlc.validate(),
            Err(PlanViolation::LdmOverflow { .. })
        ));
    }

    #[test]
    fn labels_are_compact() {
        let s = TilingScheme {
            tile: TilePlan {
                mt: 16,
                nt: 24,
                kt: 32,
            },
            buffering: Buffering::Double,
            broadcast: Broadcast::RowCol,
        };
        assert_eq!(s.label(), "16x24x32+db");
    }
}
