//! Host-native mirrors of the mesh kernels (the `HostNative` backend).
//!
//! Every function here reproduces the corresponding mesh kernel's
//! arithmetic **bit-for-bit**: same scalar types, same f32→f64 widenings,
//! same accumulation order, same rounding points. The mirrors carry no
//! timing model — callers return `LaunchReport::default()` (zero time,
//! zero counters) after running one — and no `KernelPlan` validation;
//! they exist purely for wall-clock speed.
//!
//! Parallelism comes from [`swbackend::par_tasks`]: work is split into
//! units whose results are fully determined by the unit itself (a row of
//! C, a channel's statistics, one image's softmax), so the thread count
//! never affects results. The bit-agreement property tests in
//! `tests/backend_agreement.rs` pin every mirror against the mesh.

use swbackend::par_tasks;

use crate::elementwise::CHUNK;
use crate::lrn::{self, LrnParams};
use crate::shapes::{ConvShape, GemmDims, PoolMethod, PoolShape, Trans};
use crate::transform::TransShape;

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

/// `C = A*B + beta*C`, mirroring the mesh GEMM: per-element f64
/// accumulator seeded with the f32 product `beta * c`, plain ascending-k
/// reduction (the tiled mesh schedule visits k in ascending order), and
/// the mesh's skip of zero A-values.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    threads: usize,
    dims: GemmDims,
    ta: Trans,
    tb: Trans,
    beta: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let (m, n, k) = (dims.m, dims.n, dims.k);
    let rows: Vec<(usize, &mut [f32])> = c.chunks_mut(n.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(i, crow)| {
        for (j, cv) in crow.iter_mut().enumerate() {
            let mut acc: f64 = if beta != 0.0 {
                (beta * *cv) as f64
            } else {
                0.0
            };
            for kk in 0..k {
                let av = if ta.is_trans() {
                    a[kk * m + i]
                } else {
                    a[i * k + kk]
                };
                if av == 0.0 {
                    continue;
                }
                let bv = if tb.is_trans() {
                    b[j * k + kk]
                } else {
                    b[kk * n + j]
                };
                acc += av as f64 * bv as f64;
            }
            *cv = acc as f32;
        }
    });
}

// ---------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------

/// im2col for one image (pure movement, so ordering is free).
pub fn im2col(threads: usize, shape: &ConvShape, image: &[f32], cols: &mut [f32]) {
    let (ih, iw, k, s, p) = (shape.in_h, shape.in_w, shape.k, shape.stride, shape.pad);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let rows: Vec<(usize, &mut [f32])> = cols.chunks_mut(oh * ow).enumerate().collect();
    par_tasks(threads, rows, |(r, row)| {
        let c = r / (k * k);
        let ky = (r / k) % k;
        let kx = r % k;
        for oy in 0..oh {
            let y = (oy * s + ky) as isize - p as isize;
            for ox in 0..ow {
                let x = (ox * s + kx) as isize - p as isize;
                row[oy * ow + ox] = if y >= 0 && (y as usize) < ih && x >= 0 && (x as usize) < iw {
                    image[(c * ih + y as usize) * iw + x as usize]
                } else {
                    0.0
                };
            }
        }
    });
}

/// col2im for one image: per input element, one f32 addition per valid
/// `(ky, kx)` tap in ascending order — the mesh plans both reduce to this.
pub fn col2im(threads: usize, shape: &ConvShape, cols: &[f32], image: &mut [f32]) {
    let (ih, iw, k, s, p) = (shape.in_h, shape.in_w, shape.k, shape.stride, shape.pad);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let rows: Vec<(usize, &mut [f32])> = image.chunks_mut(iw).enumerate().collect();
    par_tasks(threads, rows, |(ri, row)| {
        let c = ri / ih;
        let y = ri % ih;
        for (x, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for ky in 0..k {
                let Some(oy) = tap_source(y, ky, s, p, oh) else {
                    continue;
                };
                for kx in 0..k {
                    let Some(ox) = tap_source(x, kx, s, p, ow) else {
                        continue;
                    };
                    acc += cols[((c * k + ky) * k + kx) * (oh * ow) + oy * ow + ox];
                }
            }
            *out = acc;
        }
    });
}

/// The output coordinate whose `(kernel-tap, stride, pad)` window covers
/// input coordinate `i`, if any.
fn tap_source(i: usize, tap: usize, stride: usize, pad: usize, out_dim: usize) -> Option<usize> {
    let num = i + pad;
    if num < tap {
        return None;
    }
    let num = num - tap;
    if !num.is_multiple_of(stride) {
        return None;
    }
    let o = num / stride;
    (o < out_dim).then_some(o)
}

// ---------------------------------------------------------------------
// Implicit convolution (RCNB layouts)
// ---------------------------------------------------------------------

/// Implicit-plan forward. Input/output RCNB, weights KKON. The mesh
/// reduction visits `ky` ascending, `kx` ascending, then the channel
/// fibre in ascending order; padded tiles contribute exact-zero products,
/// which never perturb an accumulator that started at +0.0, so the mirror
/// simply skips out-of-bounds taps.
pub fn conv_implicit_forward(
    threads: usize,
    shape: &ConvShape,
    input: &[f32],
    weights: &[f32],
    output: &mut [f32],
) {
    let (ih, iw, ni, b) = (shape.in_h, shape.in_w, shape.in_c, shape.batch);
    let (k, s, p, no) = (shape.k, shape.stride, shape.pad, shape.out_c);
    let ow = shape.out_w();
    let rows: Vec<(usize, &mut [f32])> = output.chunks_mut(ow * no * b).enumerate().collect();
    par_tasks(threads, rows, |(oy, orow)| {
        for xo in 0..ow {
            for oc in 0..no {
                for bi in 0..b {
                    let mut acc = 0.0f64;
                    for ky in 0..k {
                        let y = oy * s + ky;
                        if y < p || y - p >= ih {
                            continue;
                        }
                        let y = y - p;
                        for kx in 0..k {
                            let x = xo * s + kx;
                            if x < p || x - p >= iw {
                                continue;
                            }
                            let x = x - p;
                            for ic in 0..ni {
                                let w = weights[((ky * k + kx) * no + oc) * ni + ic];
                                if w == 0.0 {
                                    continue;
                                }
                                acc += w as f64 * input[((y * iw + x) * ni + ic) * b + bi] as f64;
                            }
                        }
                    }
                    orow[(xo * no + oc) * b + bi] = acc as f32;
                }
            }
        }
    });
}

/// Implicit-plan backward data gradient (RCNB `in_grad`).
pub fn conv_implicit_backward_input(
    threads: usize,
    shape: &ConvShape,
    weights: &[f32],
    out_grad: &[f32],
    in_grad: &mut [f32],
) {
    let (iw, ni, b) = (shape.in_w, shape.in_c, shape.batch);
    let (k, s, p, no) = (shape.k, shape.stride, shape.pad, shape.out_c);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let rows: Vec<(usize, &mut [f32])> = in_grad.chunks_mut(iw * ni * b).enumerate().collect();
    par_tasks(threads, rows, |(y, grow)| {
        for x in 0..iw {
            for ic in 0..ni {
                for bi in 0..b {
                    let mut acc = 0.0f64;
                    for ky in 0..k {
                        let Some(oy) = tap_source(y, ky, s, p, oh) else {
                            continue;
                        };
                        for kx in 0..k {
                            let Some(ox) = tap_source(x, kx, s, p, ow) else {
                                continue;
                            };
                            for oc in 0..no {
                                let w = weights[((ky * k + kx) * no + oc) * ni + ic];
                                if w == 0.0 {
                                    continue;
                                }
                                acc +=
                                    w as f64 * out_grad[((oy * ow + ox) * no + oc) * b + bi] as f64;
                            }
                        }
                    }
                    grow[(x * ni + ic) * b + bi] = acc as f32;
                }
            }
        }
    });
}

/// Implicit-plan backward weight gradient (KKON `w_grad`, overwritten).
pub fn conv_implicit_backward_weights(
    threads: usize,
    shape: &ConvShape,
    input: &[f32],
    out_grad: &[f32],
    w_grad: &mut [f32],
) {
    let (ih, iw, ni, b) = (shape.in_h, shape.in_w, shape.in_c, shape.batch);
    let (k, s, p, no) = (shape.k, shape.stride, shape.pad, shape.out_c);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let taps: Vec<(usize, &mut [f32])> = w_grad.chunks_mut(no * ni).enumerate().collect();
    par_tasks(threads, taps, |(tap, chunk)| {
        let ky = tap / k;
        let kx = tap % k;
        for oc in 0..no {
            for ic in 0..ni {
                let mut acc = 0.0f64;
                for oy in 0..oh {
                    let y = oy * s + ky;
                    if y < p || y - p >= ih {
                        continue;
                    }
                    let y = y - p;
                    for xo in 0..ow {
                        let x = xo * s + kx;
                        if x < p || x - p >= iw {
                            continue;
                        }
                        let x = x - p;
                        for bi in 0..b {
                            let dy = out_grad[((oy * ow + xo) * no + oc) * b + bi];
                            if dy == 0.0 {
                                continue;
                            }
                            acc += dy as f64 * input[((y * iw + x) * ni + ic) * b + bi] as f64;
                        }
                    }
                }
                chunk[oc * ni + ic] = acc as f32;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Layout transforms (pure movement)
// ---------------------------------------------------------------------

/// NCHW -> RCNB, parallel over `y` planes.
pub fn nchw_to_rcnb(threads: usize, shape: &TransShape, input: &[f32], output: &mut [f32]) {
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    let planes: Vec<(usize, &mut [f32])> =
        output.chunks_mut(w * n_tot * b_tot).enumerate().collect();
    par_tasks(threads, planes, |(y, plane)| {
        for x in 0..w {
            for n in 0..n_tot {
                for bi in 0..b_tot {
                    plane[(x * n_tot + n) * b_tot + bi] = input[((bi * n_tot + n) * h + y) * w + x];
                }
            }
        }
    });
}

/// RCNB -> NCHW, parallel over `(b, n)` channel images.
pub fn rcnb_to_nchw(threads: usize, shape: &TransShape, input: &[f32], output: &mut [f32]) {
    let (b_tot, n_tot, h, w) = (shape.batch, shape.channels, shape.height, shape.width);
    let imgs: Vec<(usize, &mut [f32])> = output.chunks_mut(h * w).enumerate().collect();
    par_tasks(threads, imgs, |(img, out)| {
        let bi = img / n_tot;
        let n = img % n_tot;
        for y in 0..h {
            for x in 0..w {
                out[y * w + x] = input[((y * w + x) * n_tot + n) * b_tot + bi];
            }
        }
    });
}

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

/// Pooling forward, parallel over output rows `(bc, oy)`. Max pooling
/// records the strictly-greater first-max argmax exactly like the mesh;
/// average pooling accumulates the clipped window in f64.
pub fn pool_forward(
    threads: usize,
    shape: &PoolShape,
    input: &[f32],
    output: &mut [f32],
    argmax: Option<&mut [f32]>,
) {
    let ow = shape.out_w();
    match argmax {
        Some(am) => {
            let rows: Vec<(usize, &mut [f32], &mut [f32])> = output
                .chunks_mut(ow)
                .zip(am.chunks_mut(ow))
                .enumerate()
                .map(|(i, (o, a))| (i, o, a))
                .collect();
            par_tasks(threads, rows, |(item, orow, arow)| {
                pool_forward_row(shape, input, item, orow, Some(arow));
            });
        }
        None => {
            let rows: Vec<(usize, &mut [f32])> = output.chunks_mut(ow).enumerate().collect();
            par_tasks(threads, rows, |(item, orow)| {
                pool_forward_row(shape, input, item, orow, None);
            });
        }
    }
}

fn pool_forward_row(
    shape: &PoolShape,
    input: &[f32],
    item: usize,
    orow: &mut [f32],
    arow: Option<&mut [f32]>,
) {
    let (ih, iw, k, s, p) = (shape.in_h, shape.in_w, shape.k, shape.stride, shape.pad);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let bc = item / oh;
    let oy = item % oh;
    let mut arow = arow;
    for ox in 0..ow {
        let x0 = (ox * s) as isize - p as isize;
        match shape.method {
            PoolMethod::Max => {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for ky in 0..k {
                    let y = (oy * s + ky) as isize - p as isize;
                    if y < 0 || y as usize >= ih {
                        continue;
                    }
                    let y = y as usize;
                    for kx in 0..k {
                        let x = x0 + kx as isize;
                        if x < 0 || x as usize >= iw {
                            continue;
                        }
                        let v = input[(bc * ih + y) * iw + x as usize];
                        if v > best {
                            best = v;
                            best_i = y * iw + x as usize;
                        }
                    }
                }
                orow[ox] = if best == f32::NEG_INFINITY { 0.0 } else { best };
                if let Some(a) = arow.as_mut() {
                    a[ox] = best_i as f32;
                }
            }
            PoolMethod::Average => {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for ky in 0..k {
                    let y = (oy * s + ky) as isize - p as isize;
                    if y < 0 || y as usize >= ih {
                        continue;
                    }
                    let y = y as usize;
                    for kx in 0..k {
                        let x = x0 + kx as isize;
                        if x < 0 || x as usize >= iw {
                            continue;
                        }
                        sum += input[(bc * ih + y) * iw + x as usize] as f64;
                        count += 1;
                    }
                }
                orow[ox] = if count > 0 {
                    (sum / count as f64) as f32
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pooling backward, parallel over input rows `(bc, y)`. Mirrors the
/// mesh's per-row f32 accumulator and its `oy` window bounds.
pub fn pool_backward(
    threads: usize,
    shape: &PoolShape,
    out_grad: &[f32],
    argmax: Option<&[f32]>,
    in_grad: &mut [f32],
) {
    let (ih, iw, k, s, p) = (shape.in_h, shape.in_w, shape.k, shape.stride, shape.pad);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let rows: Vec<(usize, &mut [f32])> = in_grad.chunks_mut(iw).enumerate().collect();
    par_tasks(threads, rows, |(item, row)| {
        let bc = item / ih;
        let y = item % ih;
        row.fill(0.0);
        let oy_lo = (y + p).saturating_sub(k - 1).div_ceil(s);
        let oy_hi = ((y + p) / s).min(oh.saturating_sub(1));
        for oy in oy_lo..=oy_hi {
            let grow = &out_grad[(bc * oh + oy) * ow..][..ow];
            match shape.method {
                PoolMethod::Max => {
                    let arow = &argmax.expect("max pool backward requires argmax")
                        [(bc * oh + oy) * ow..][..ow];
                    for ox in 0..ow {
                        let idx = arow[ox] as usize;
                        if idx / iw == y {
                            row[idx % iw] += grow[ox];
                        }
                    }
                }
                PoolMethod::Average => {
                    for (ox, g) in grow.iter().enumerate() {
                        let x0 = (ox * s) as isize - p as isize;
                        let y0 = (oy * s) as isize - p as isize;
                        let mut count = 0usize;
                        let mut covers_y = false;
                        for ky in 0..k {
                            let yy = y0 + ky as isize;
                            if yy < 0 || yy as usize >= ih {
                                continue;
                            }
                            if yy as usize == y {
                                covers_y = true;
                            }
                            for kx in 0..k {
                                let xx = x0 + kx as isize;
                                if xx < 0 || xx as usize >= iw {
                                    continue;
                                }
                                count += 1;
                            }
                        }
                        if covers_y && count > 0 {
                            let share = *g / count as f32;
                            for kx in 0..k {
                                let xx = x0 + kx as isize;
                                if xx >= 0 && (xx as usize) < iw {
                                    row[xx as usize] += share;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Batch normalisation
// ---------------------------------------------------------------------

/// BN forward (training): phase A computes per-channel statistics with
/// the mesh's chunked f64 partial sums; phase B normalises each row with
/// pure-f32 arithmetic reading the saved f32 mean/istd.
#[allow(clippy::too_many_arguments)]
pub fn bn_forward(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    input: &[f32],
    gamma: &[f32],
    beta: &[f32],
    output: &mut [f32],
    save_mean: &mut [f32],
    save_istd: &mut [f32],
) {
    let n_per_c = (batch * spatial) as f64;
    let row_chunk = CHUNK.min(spatial.max(1));
    let chans: Vec<(usize, &mut f32, &mut f32)> = save_mean
        .iter_mut()
        .zip(save_istd.iter_mut())
        .enumerate()
        .map(|(c, (m, i))| (c, m, i))
        .collect();
    par_tasks(threads, chans, |(c, sm, si)| {
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for b in 0..batch {
            let row = &input[(b * channels + c) * spatial..][..spatial];
            let mut start = 0;
            while start < spatial {
                let n = row_chunk.min(spatial - start);
                let mut s = 0.0f64;
                let mut q = 0.0f64;
                for v in &row[start..start + n] {
                    let vd = *v as f64;
                    s += vd;
                    q += vd * vd;
                }
                sum += s;
                sq += q;
                start += n;
            }
        }
        let mean = sum / n_per_c;
        let var = (sq / n_per_c - mean * mean).max(0.0);
        let istd = 1.0 / (var + eps as f64).sqrt();
        *sm = mean as f32;
        *si = istd as f32;
    });
    let (save_mean, save_istd) = (&*save_mean, &*save_istd);
    let rows: Vec<(usize, &mut [f32])> = output.chunks_mut(spatial.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(row, orow)| {
        let c = row % channels;
        let (g, be, m, is) = (gamma[c], beta[c], save_mean[c], save_istd[c]);
        let irow = &input[row * spatial..][..spatial];
        for (o, v) in orow.iter_mut().zip(irow) {
            *o = g * (*v - m) * is + be;
        }
    });
}

/// BN backward: phase A reduces dgamma/dbeta per channel (chunked f64
/// partials, same order as the mesh); phase B forms the data gradient in
/// f64 reading the *rounded f32* phase-A results, exactly as the mesh
/// does after its cross-CPE exchange.
#[allow(clippy::too_many_arguments)]
pub fn bn_backward(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    input: &[f32],
    gamma: &[f32],
    out_grad: &[f32],
    save_mean: &[f32],
    save_istd: &[f32],
    in_grad: &mut [f32],
    gamma_grad: &mut [f32],
    beta_grad: &mut [f32],
) {
    let n_per_c = (batch * spatial) as f64;
    let row_chunk = CHUNK.min(spatial.max(1));
    let chans: Vec<(usize, &mut f32, &mut f32)> = gamma_grad
        .iter_mut()
        .zip(beta_grad.iter_mut())
        .enumerate()
        .map(|(c, (g, b))| (c, g, b))
        .collect();
    par_tasks(threads, chans, |(c, dgc, dbc)| {
        let m = save_mean[c] as f64;
        let is = save_istd[c] as f64;
        let mut dg = 0.0f64;
        let mut db = 0.0f64;
        for b in 0..batch {
            let base = (b * channels + c) * spatial;
            let xrow = &input[base..base + spatial];
            let grow = &out_grad[base..base + spatial];
            let mut start = 0;
            while start < spatial {
                let n = row_chunk.min(spatial - start);
                let mut a = 0.0f64;
                let mut bb = 0.0f64;
                for i in start..start + n {
                    let xhat = (xrow[i] as f64 - m) * is;
                    a += grow[i] as f64 * xhat;
                    bb += grow[i] as f64;
                }
                dg += a;
                db += bb;
                start += n;
            }
        }
        *dgc = dg as f32;
        *dbc = db as f32;
    });
    let (gamma_grad, beta_grad) = (&*gamma_grad, &*beta_grad);
    let rows: Vec<(usize, &mut [f32])> = in_grad.chunks_mut(spatial.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(row, drow)| {
        let c = row % channels;
        let m = save_mean[c] as f64;
        let is = save_istd[c] as f64;
        let scale = gamma[c] as f64 * save_istd[c] as f64 / n_per_c;
        let dg = gamma_grad[c] as f64;
        let db = beta_grad[c] as f64;
        let base = row * spatial;
        let xrow = &input[base..base + spatial];
        let grow = &out_grad[base..base + spatial];
        for (i, d) in drow.iter_mut().enumerate() {
            let xhat = (xrow[i] as f64 - m) * is;
            let v = scale * (n_per_c * grow[i] as f64 - db - xhat * dg);
            *d = v as f32;
        }
    });
}

/// BN inference: normalise with running statistics, f64 per element.
#[allow(clippy::too_many_arguments)]
pub fn bn_inference(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    input: &[f32],
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    output: &mut [f32],
) {
    let _ = batch;
    let rows: Vec<(usize, &mut [f32])> = output.chunks_mut(spatial.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(row, orow)| {
        let c = row % channels;
        let istd = 1.0 / (var[c] as f64 + eps as f64).sqrt();
        let irow = &input[row * spatial..][..spatial];
        for (o, v) in orow.iter_mut().zip(irow) {
            *o = (gamma[c] as f64 * (*v as f64 - mean[c] as f64) * istd + beta[c] as f64) as f32;
        }
    });
}

/// Fused bias + BN-inference + ReLU epilogue over a conv output tensor
/// (in place), mirroring `fused::forward`'s mesh epilogue: f32 bias add,
/// f64 BN transform rounded to f32, ReLU max on the rounded value.
#[allow(clippy::too_many_arguments)]
pub fn fused_epilogue(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    bias: Option<&[f32]>,
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    data: &mut [f32],
) {
    let _ = batch;
    let rows: Vec<(usize, &mut [f32])> = data.chunks_mut(spatial.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(row, drow)| {
        let c = row % channels;
        let istd = 1.0 / (var[c] as f64 + eps as f64).sqrt();
        for val in drow.iter_mut() {
            let mut t = *val;
            if let Some(b) = bias {
                t += b[c];
            }
            let u = (gamma[c] as f64 * (t as f64 - mean[c] as f64) * istd + beta[c] as f64) as f32;
            *val = u.max(0.0);
        }
    });
}

// ---------------------------------------------------------------------
// Softmax + cross-entropy
// ---------------------------------------------------------------------

/// Softmax forward, parallel per image. The exp sum accumulates the
/// *unrounded* f64 exponentials while the row stores their f32
/// roundings — the mesh does the same, so this is bit-exact.
pub fn softmax_forward(
    threads: usize,
    batch: usize,
    classes: usize,
    logits: &[f32],
    labels: &[f32],
    probs: &mut [f32],
    losses: &mut [f32],
) {
    let _ = batch;
    let rows: Vec<(usize, &mut [f32], &mut f32)> = probs
        .chunks_mut(classes)
        .zip(losses.iter_mut())
        .enumerate()
        .map(|(b, (p, l))| (b, p, l))
        .collect();
    par_tasks(threads, rows, |(b, prow, loss)| {
        prow.copy_from_slice(&logits[b * classes..][..classes]);
        let max = prow.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
        let mut sum = 0.0f64;
        for v in prow.iter_mut() {
            let e = ((*v as f64) - max).exp();
            *v = e as f32;
            sum += e;
        }
        for v in prow.iter_mut() {
            *v = (*v as f64 / sum) as f32;
        }
        let label = labels[b] as usize;
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        *loss = (-((prow[label].max(f32::MIN_POSITIVE) as f64).ln())) as f32;
    });
}

/// Softmax backward: `(p - onehot) * loss_weight`, pure f32.
pub fn softmax_backward(
    threads: usize,
    batch: usize,
    classes: usize,
    loss_weight: f32,
    probs: &[f32],
    labels: &[f32],
    in_grad: &mut [f32],
) {
    let _ = batch;
    let rows: Vec<(usize, &mut [f32])> = in_grad.chunks_mut(classes).enumerate().collect();
    par_tasks(threads, rows, |(b, drow)| {
        let label = labels[b] as usize;
        let prow = &probs[b * classes..][..classes];
        for (j, d) in drow.iter_mut().enumerate() {
            let onehot = if j == label { 1.0 } else { 0.0 };
            *d = (prow[j] - onehot) * loss_weight;
        }
    });
}

// ---------------------------------------------------------------------
// Local response normalisation
// ---------------------------------------------------------------------

/// LRN forward, parallel per batch image; per-element arithmetic is
/// shared with the mesh via `lrn::scale_at`.
#[allow(clippy::too_many_arguments)]
pub fn lrn_forward(
    threads: usize,
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    p: LrnParams,
    input: &[f32],
    output: &mut [f32],
) {
    let _ = batch;
    let per_img = channels * height * width;
    let imgs: Vec<(usize, &mut [f32])> = output.chunks_mut(per_img.max(1)).enumerate().collect();
    par_tasks(threads, imgs, |(bi, out)| {
        for row in 0..height {
            for xi in 0..width {
                let get =
                    |j: usize| input[((bi * channels + j) * height + row) * width + xi] as f64;
                for c in 0..channels {
                    let scale = lrn::scale_at(&p, channels, &get, c);
                    out[(c * height + row) * width + xi] =
                        (get(c) * scale.powf(-(p.beta as f64))) as f32;
                }
            }
        }
    });
}

/// LRN backward, parallel per batch image.
#[allow(clippy::too_many_arguments)]
pub fn lrn_backward(
    threads: usize,
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    p: LrnParams,
    input: &[f32],
    out_grad: &[f32],
    in_grad: &mut [f32],
) {
    let _ = batch;
    let per_img = channels * height * width;
    let half = p.local_size / 2;
    let imgs: Vec<(usize, &mut [f32])> = in_grad.chunks_mut(per_img.max(1)).enumerate().collect();
    par_tasks(threads, imgs, |(bi, dimg)| {
        for row in 0..height {
            for xi in 0..width {
                let get =
                    |j: usize| input[((bi * channels + j) * height + row) * width + xi] as f64;
                let gs = |j: usize| out_grad[((bi * channels + j) * height + row) * width + xi];
                for c in 0..channels {
                    let scale_c = lrn::scale_at(&p, channels, &get, c);
                    let mut v = gs(c) as f64 * scale_c.powf(-(p.beta as f64));
                    let lo = c.saturating_sub(half);
                    let hi = (c + half).min(channels - 1);
                    for j in lo..=hi {
                        let scale_j = lrn::scale_at(&p, channels, &get, j);
                        let yj = get(j) * scale_j.powf(-(p.beta as f64));
                        v -= 2.0 * p.alpha as f64 * p.beta as f64 / p.local_size as f64
                            * get(c)
                            * gs(j) as f64
                            * yj
                            / scale_j;
                    }
                    dimg[(c * height + row) * width + xi] = v as f32;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Element-wise / reduction kernels
// ---------------------------------------------------------------------

/// Per-element map `y[i] = f(x[i])`, parallel over `CHUNK`-sized pieces.
pub fn unary_map(threads: usize, x: &[f32], y: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let chunks: Vec<(usize, &mut [f32])> = y.chunks_mut(CHUNK).enumerate().collect();
    par_tasks(threads, chunks, |(ci, chunk)| {
        let base = ci * CHUNK;
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(x[base + i]);
        }
    });
}

/// Per-element map `out[i] = f(a[i], b[i])`.
pub fn binary_map(
    threads: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    let chunks: Vec<(usize, &mut [f32])> = out.chunks_mut(CHUNK).enumerate().collect();
    par_tasks(threads, chunks, |(ci, chunk)| {
        let base = ci * CHUNK;
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(a[base + i], b[base + i]);
        }
    });
}

/// `y[i] += alpha * x[i]`, pure f32.
pub fn axpy(threads: usize, alpha: f32, x: &[f32], y: &mut [f32]) {
    let chunks: Vec<(usize, &mut [f32])> = y.chunks_mut(CHUNK).enumerate().collect();
    par_tasks(threads, chunks, |(ci, chunk)| {
        let base = ci * CHUNK;
        for (i, o) in chunk.iter_mut().enumerate() {
            *o += alpha * x[base + i];
        }
    });
}

/// `x[i] *= alpha`, pure f32.
pub fn scale(threads: usize, alpha: f32, x: &mut [f32]) {
    let chunks: Vec<(usize, &mut [f32])> = x.chunks_mut(CHUNK).enumerate().collect();
    par_tasks(threads, chunks, |(_ci, chunk)| {
        for o in chunk.iter_mut() {
            *o *= alpha;
        }
    });
}

/// Per-channel bias add on NCHW data (in place).
pub fn bias_forward(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    bias: &[f32],
    data: &mut [f32],
) {
    let _ = batch;
    let rows: Vec<(usize, &mut [f32])> = data.chunks_mut(spatial.max(1)).enumerate().collect();
    par_tasks(threads, rows, |(row, drow)| {
        let b = bias[row % channels];
        for v in drow.iter_mut() {
            *v += b;
        }
    });
}

/// Per-channel bias gradient: chunked f64 reduction in the mesh's order.
pub fn bias_backward(
    threads: usize,
    batch: usize,
    channels: usize,
    spatial: usize,
    dy: &[f32],
    db: &mut [f32],
) {
    let row_chunk = CHUNK.min(spatial.max(1));
    let chans: Vec<(usize, &mut f32)> = db.iter_mut().enumerate().collect();
    par_tasks(threads, chans, |(c, out)| {
        let mut acc = 0.0f64;
        for b in 0..batch {
            let row = &dy[(b * channels + c) * spatial..][..spatial];
            let mut start = 0;
            while start < spatial {
                let n = row_chunk.min(spatial - start);
                acc += row[start..start + n].iter().map(|v| *v as f64).sum::<f64>();
                start += n;
            }
        }
        *out = acc as f32;
    });
}

/// Per-row bias add: `data[r][c] += bias[c]`.
pub fn bias_rows(threads: usize, rows: usize, row_len: usize, bias: &[f32], data: &mut [f32]) {
    let _ = rows;
    let tasks: Vec<(usize, &mut [f32])> = data.chunks_mut(row_len.max(1)).enumerate().collect();
    par_tasks(threads, tasks, |(_r, drow)| {
        for (v, b) in drow.iter_mut().zip(bias) {
            *v += *b;
        }
    });
}

/// Column sums of an `(rows x cols)` matrix: per-column running f32 sum
/// over ascending rows (what the mesh's row-group streaming reduces to).
pub fn col_sums(threads: usize, rows: usize, cols: usize, m: &[f32], out: &mut [f32]) {
    let tasks: Vec<(usize, &mut f32)> = out.iter_mut().enumerate().collect();
    par_tasks(threads, tasks, |(c, o)| {
        let mut acc = 0.0f32;
        for r in 0..rows {
            acc += m[r * cols + c];
        }
        *o = acc;
    });
}

/// Strided block copy (pure movement; serial — it is memory-bound).
#[allow(clippy::too_many_arguments)]
pub fn copy_blocks(
    block_len: usize,
    nblocks: usize,
    src: &[f32],
    src_off: usize,
    src_stride: usize,
    dst: &mut [f32],
    dst_off: usize,
    dst_stride: usize,
) {
    for blk in 0..nblocks {
        dst[dst_off + blk * dst_stride..][..block_len]
            .copy_from_slice(&src[src_off + blk * src_stride..][..block_len]);
    }
}

/// Sum of squares with the mesh's 64-lane schedule: each lane owns every
/// 64th `CHUNK`, reduces in f64, rounds its partial to f32; the partials
/// are then summed in f64 in lane order.
pub fn sumsq(threads: usize, x: &[f32]) -> f64 {
    let mut partials = [0.0f32; 64];
    let lanes: Vec<(usize, &mut f32)> = partials.iter_mut().enumerate().collect();
    par_tasks(threads, lanes, |(l, out)| {
        let mut acc = 0.0f64;
        let mut start = l * CHUNK;
        while start < x.len() {
            let n = CHUNK.min(x.len() - start);
            acc += x[start..start + n]
                .iter()
                .map(|v| *v as f64 * *v as f64)
                .sum::<f64>();
            start += 64 * CHUNK;
        }
        *out = acc as f32;
    });
    partials.iter().map(|v| *v as f64).sum::<f64>()
}
