//! Implicit-GEMM convolution (Sec. IV-B-2, after swDNN \[4\]).
//!
//! No column matrix is ever materialised: the convolution is computed as a
//! sum of K*K small matrix products directly from the `(R, C, N, B)` data
//! layout, in which the (channel, batch) fibre at each pixel is a
//! contiguous `N x B` block. The output tile stays resident in LDM across
//! the whole K*K x channel-panel reduction — the data-reuse blocking the
//! paper credits for beating the explicit plan on most layers.
//!
//! Zero padding is handled by *coordinate mapping* (the paper's padding
//! optimisation): out-of-range taps contribute zero tiles and skip their
//! DMA, with no padded copy of the input anywhere.
//!
//! The strategy degrades for small channel counts — tiles shrink below
//! what the register buses and vector pipelines need (the paper gates it
//! at 64 channels) — which the [`supports_forward`]/[`supports_backward`]
//! predicates encode for the mixed-strategy chooser.

use sw26010::arch::MESH_DIM;
use sw26010::rlc::{transfer_cycles, RLC_HOP_CYCLES};
use sw26010::{
    dma, CoreGroup, Cpe, KernelPlan, LaunchReport, MemView, MemViewMut, PlanViolation, RlcPattern,
    SimTime,
};

use crate::shapes::ConvShape;

/// Tile edge for a channel-like dimension.
fn pick_tile(d: usize) -> usize {
    d.div_ceil(MESH_DIM).clamp(1, 32)
}

/// Tile width along the flattened `(x, batch)` dimension: the largest
/// divisor of the batch size not exceeding 32, so a tile never straddles
/// two pixels' batch fibres.
fn pick_nt(batch: usize) -> usize {
    (1..=32.min(batch))
        .rev()
        .find(|d| batch.is_multiple_of(*d))
        .unwrap_or(1)
}

/// Which implicit-GEMM pass a [`ConvTiles`] triple parameterises. The
/// batch-fibre axis differs per pass: `nt` spans `(x, batch)` in the
/// forward/input-gradient kernels, `kt` does in the weight-gradient one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplicitPass {
    Forward,
    BackwardInput,
    BackwardWeights,
}

impl ImplicitPass {
    fn plan_name(self) -> &'static str {
        match self {
            ImplicitPass::Forward => "swdnn.conv_implicit.fwd",
            ImplicitPass::BackwardInput => "swdnn.conv_implicit.bwd_input",
            ImplicitPass::BackwardWeights => "swdnn.conv_implicit.bwd_weights",
        }
    }
}

/// LDM block extents of one implicit-GEMM pass — the conv analogue of
/// [`crate::gemm::TilePlan`], taken by value so `swtune` can search the
/// space while the hand picks remain just the default point in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvTiles {
    pub mt: usize,
    pub nt: usize,
    pub kt: usize,
}

impl ConvTiles {
    /// The hand-picked forward tiles every caller got before the tuner.
    pub fn hand_forward(shape: &ConvShape) -> ConvTiles {
        ConvTiles {
            mt: pick_tile(shape.out_c),
            nt: pick_nt(shape.batch),
            kt: pick_tile(shape.in_c),
        }
    }

    /// The hand-picked input-gradient tiles.
    pub fn hand_backward_input(shape: &ConvShape) -> ConvTiles {
        ConvTiles {
            mt: pick_tile(shape.in_c),
            nt: pick_nt(shape.batch),
            kt: pick_tile(shape.out_c),
        }
    }

    /// The hand-picked weight-gradient tiles (`kt` is the batch-fibre
    /// axis here; `nt` tiles the input channels).
    pub fn hand_backward_weights(shape: &ConvShape) -> ConvTiles {
        ConvTiles {
            mt: pick_tile(shape.out_c),
            nt: pick_tile(shape.in_c),
            kt: pick_nt(shape.batch),
        }
    }

    /// The tile extent spanning the flattened `(x, batch)` axis for
    /// `pass` — the one that must divide the batch size.
    pub fn fibre_tile(&self, pass: ImplicitPass) -> usize {
        match pass {
            ImplicitPass::BackwardWeights => self.kt,
            _ => self.nt,
        }
    }

    /// The LDM descriptor of the `pass` kernel under these tiles.
    pub fn kernel_plan(&self, pass: ImplicitPass) -> KernelPlan {
        tile_kernel_plan(pass.plan_name(), self.mt, self.nt, self.kt)
    }

    /// Structural feasibility for `pass` on `shape`: positive extents, a
    /// batch-dividing fibre tile, and an LDM-fitting working set — the
    /// same filter the tuner's candidate enumeration applies.
    pub fn validate(&self, pass: ImplicitPass, shape: &ConvShape) -> Result<(), PlanViolation> {
        if self.mt == 0
            || self.nt == 0
            || self.kt == 0
            || !shape.batch.is_multiple_of(self.fibre_tile(pass))
        {
            return Err(PlanViolation::BadGeometry {
                plan: pass.plan_name().into(),
                n_cpes: 0,
            });
        }
        self.kernel_plan(pass).validate()
    }
}

/// Panic with the typed shape diagnostic if `shape` is degenerate; every
/// kernel and timing-model entry funnels through this so a zero extent or
/// an oversized window fails loudly instead of wrapping in the coordinate
/// arithmetic.
fn guard_shape(shape: &ConvShape) {
    if let Err(e) = shape.validate() {
        panic!("swdnn.conv_implicit rejected shape: {e}");
    }
}

fn guard_tiles(tiles: ConvTiles, pass: ImplicitPass, shape: &ConvShape) {
    if let Err(v) = tiles.validate(pass, shape) {
        panic!("infeasible implicit-conv tiling: {v}");
    }
}

/// Shared LDM descriptor of the broadcast-GEMM core: five f64 tiles plus
/// one f32 staging buffer, exactly as each mesh kernel allocates them.
fn tile_kernel_plan(name: &str, mt: usize, nt: usize, kt: usize) -> KernelPlan {
    KernelPlan::new(name, 64)
        .buffer("a64", mt * kt * 8)
        .buffer("b64", kt * nt * 8)
        .buffer("c64", mt * nt * 8)
        .buffer("abuf", mt * kt * 8)
        .buffer("bbuf", kt * nt * 8)
        .buffer("stage", mt.max(kt) * nt.max(kt) * 4)
        .rlc(RlcPattern::RowAndColBroadcast)
        .inflight_dma(1)
}

/// Static LDM descriptor of the implicit forward kernel for `shape`.
pub fn forward_plan(shape: &ConvShape) -> KernelPlan {
    ConvTiles::hand_forward(shape).kernel_plan(ImplicitPass::Forward)
}

/// Static LDM descriptor of the implicit backward-by-input kernel.
pub fn backward_input_plan(shape: &ConvShape) -> KernelPlan {
    ConvTiles::hand_backward_input(shape).kernel_plan(ImplicitPass::BackwardInput)
}

/// Static LDM descriptor of the implicit backward-by-weights kernel.
pub fn backward_weights_plan(shape: &ConvShape) -> KernelPlan {
    ConvTiles::hand_backward_weights(shape).kernel_plan(ImplicitPass::BackwardWeights)
}

/// Strategy gate, forward: the paper's implicit plan needs >= 64 input
/// channels to feed the 256-bit SIMD and register communication.
pub fn supports_forward(shape: &ConvShape) -> bool {
    shape.in_c >= 64
}

/// Strategy gate, backward (both gradients): Table II shows the implicit
/// backward plans only win (or run at all) from 128 channels on each side.
pub fn supports_backward(shape: &ConvShape) -> bool {
    shape.in_c.min(shape.out_c) >= 128
}

/// Functional operands of an implicit forward convolution:
/// input `(R_i, C_i, N_i, B)`, weights `(K, K, N_o, N_i)`,
/// output `(R_o, C_o, N_o, B)`.
pub struct ImplicitFwdOperands<'a> {
    pub input: &'a [f32],
    pub weights: &'a [f32],
    pub output: &'a mut [f32],
}

/// Functional operands of an implicit backward convolution.
pub struct ImplicitBwdOperands<'a> {
    pub input: &'a [f32],
    pub weights: &'a [f32],
    pub out_grad: &'a [f32],
    pub in_grad: Option<&'a mut [f32]>,
    /// Overwritten `(K, K, N_o, N_i)` weight gradient.
    pub w_grad: Option<&'a mut [f32]>,
}

/// Stage an `(rows x block)` group of batch-fibre blocks into `stage` and
/// widen into the zero-padded f64 `tile` of extents `tr x tc`, optionally
/// transposing. `base` addresses element `(0, 0)`; consecutive rows are
/// `stride` elements apart.
#[allow(clippy::too_many_arguments)]
fn load_fibre_tile(
    cpe: &mut Cpe,
    src: MemView<'_>,
    base: usize,
    block: usize,
    stride: usize,
    rows: usize,
    tr: usize,
    tc: usize,
    transpose: bool,
    stage: &mut [f32],
    tile: &mut [f64],
) {
    if rows == 0 || block == 0 {
        cpe.compute((tr * tc) as u64, || tile.fill(0.0));
        return;
    }
    cpe.dma_get_strided(src, base, block, stride, rows, stage);
    cpe.compute((tr * tc) as u64, || {
        tile.fill(0.0);
        if transpose {
            for r in 0..rows {
                for c in 0..block {
                    tile[c * tc + r] = stage[r * block + c] as f64;
                }
            }
        } else {
            for r in 0..rows {
                for c in 0..block {
                    tile[r * tc + c] = stage[r * block + c] as f64;
                }
            }
        }
    });
}

/// The 8-step broadcast-and-accumulate core shared by all three kernels.
#[allow(clippy::too_many_arguments)]
fn rlc_steps(
    cpe: &mut Cpe,
    a64: &[f64],
    b64: &[f64],
    abuf: &mut [f64],
    bbuf: &mut [f64],
    c64: &mut [f64],
    mt: usize,
    nt: usize,
    kt: usize,
) {
    let (i, j) = (cpe.row(), cpe.col());
    for t in 0..MESH_DIM {
        if j == t {
            cpe.rlc_row_bcast(a64);
        } else {
            cpe.rlc_row_recv(t, abuf);
        }
        if i == t {
            cpe.rlc_col_bcast(b64);
        } else {
            cpe.rlc_col_recv(t, bbuf);
        }
        let at: &[f64] = if j == t { a64 } else { abuf };
        let bt: &[f64] = if i == t { b64 } else { bbuf };
        cpe.compute((2 * mt * nt * kt) as u64, || {
            for r in 0..mt {
                for tt in 0..kt {
                    let av = at[r * kt + tt];
                    if av == 0.0 {
                        continue;
                    }
                    for cc in 0..nt {
                        c64[r * nt + cc] += av * bt[tt * nt + cc];
                    }
                }
            }
        });
    }
}

/// Implicit forward convolution under the hand-picked tiles.
pub fn forward(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<ImplicitFwdOperands<'_>>,
) -> LaunchReport {
    forward_with_tiles(cg, shape, ConvTiles::hand_forward(shape), ops)
}

/// Implicit forward convolution under explicit tiles (the tuner's entry
/// point). The tiles are validated through [`ConvTiles::validate`] in
/// every execution mode before anything runs.
pub fn forward_with_tiles(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    tiles: ConvTiles,
    ops: Option<ImplicitFwdOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    guard_tiles(tiles, ImplicitPass::Forward, shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: forward_time_with(shape, tiles),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional conv requires operands");
    assert_eq!(ops.input.len(), shape.input_len());
    assert_eq!(ops.weights.len(), shape.weight_len());
    assert_eq!(ops.output.len(), shape.output_len());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::conv_implicit_forward(threads, shape, ops.input, ops.weights, ops.output);
        return LaunchReport::default();
    }

    let s = *shape;
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (ow, iw, ih, oh) = (s.out_w(), s.in_w, s.in_h, s.out_h());
    let ConvTiles { mt, nt, kt } = tiles;
    let panels_m = no.div_ceil(MESH_DIM * mt);
    let panels_n = (ow * b).div_ceil(MESH_DIM * nt);
    let panels_k = ni.div_ceil(MESH_DIM * kt);

    let input = MemView::new(ops.input);
    let weights = MemView::new(ops.weights);
    let output = MemViewMut::new(ops.output);

    let kplan = tiles.kernel_plan(ImplicitPass::Forward);
    let mut total = LaunchReport::default();
    for pm in 0..panels_m {
        for pn in 0..panels_n {
            let report = cg.run_planned(&kplan, |cpe| {
                let (i, j) = (cpe.row(), cpe.col());
                let m0 = pm * MESH_DIM * mt + i * mt;
                let vm = no.saturating_sub(m0).min(mt);
                let col0 = pn * MESH_DIM * nt + j * nt;
                let (x_out, b0) = (col0 / b, col0 % b);
                let vn = if x_out < ow { nt } else { 0 };

                let mut a64 = cpe.ldm.alloc_f64(mt * kt);
                let mut b64 = cpe.ldm.alloc_f64(kt * nt);
                let mut c64 = cpe.ldm.alloc_f64(mt * nt);
                let mut abuf = cpe.ldm.alloc_f64(mt * kt);
                let mut bbuf = cpe.ldm.alloc_f64(kt * nt);
                let mut stage = cpe.ldm.alloc_f32(mt.max(kt) * nt.max(kt));

                for oy in 0..oh {
                    cpe.compute((mt * nt) as u64, || c64.fill(0.0));
                    for ky in 0..s.k {
                        let y = (oy * s.stride + ky) as isize - s.pad as isize;
                        if y < 0 || y as usize >= ih {
                            continue; // coordinate-mapped padding (uniform skip)
                        }
                        let y = y as usize;
                        for kx in 0..s.k {
                            let x = (x_out * s.stride + kx) as isize - s.pad as isize;
                            let x_ok = x >= 0 && (x as usize) < iw;
                            for pk in 0..panels_k {
                                // Own W tile: rows m0.., channel cols by j.
                                let kw0 = pk * MESH_DIM * kt + j * kt;
                                let vkw = ni.saturating_sub(kw0).min(kt);
                                load_fibre_tile(
                                    cpe,
                                    weights,
                                    ((ky * s.k + kx) * no + m0) * ni + kw0,
                                    if vm > 0 { vkw } else { 0 },
                                    ni,
                                    vm,
                                    mt,
                                    kt,
                                    false,
                                    &mut stage,
                                    &mut a64,
                                );
                                // Own X tile: channel rows by i, batch fibre cols.
                                let kx0 = pk * MESH_DIM * kt + i * kt;
                                let vkx = ni.saturating_sub(kx0).min(kt);
                                let x_rows = if x_ok && vn > 0 { vkx } else { 0 };
                                load_fibre_tile(
                                    cpe,
                                    input,
                                    if x_ok {
                                        ((y * iw + x as usize) * ni + kx0) * b + b0
                                    } else {
                                        0
                                    },
                                    vn,
                                    b,
                                    x_rows,
                                    kt,
                                    nt,
                                    false,
                                    &mut stage,
                                    &mut b64,
                                );
                                rlc_steps(
                                    cpe, &a64, &b64, &mut abuf, &mut bbuf, &mut c64, mt, nt, kt,
                                );
                            }
                        }
                    }
                    // Store the finished output tile for this row.
                    if vm > 0 && vn > 0 {
                        cpe.compute((mt * nt) as u64, || {
                            for r in 0..vm {
                                for cc in 0..vn {
                                    stage[r * vn + cc] = c64[r * nt + cc] as f32;
                                }
                            }
                        });
                        cpe.dma_put_strided(
                            output,
                            ((oy * ow + x_out) * no + m0) * b + b0,
                            vn,
                            b,
                            vm,
                            &stage,
                        );
                    } else {
                        cpe.charge_flops((mt * nt) as u64);
                    }
                }
            });
            total.merge(&report);
        }
    }
    total
}

/// Implicit backward convolution (input and/or weight gradients) under
/// the hand-picked tiles.
pub fn backward(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<ImplicitBwdOperands<'_>>,
) -> LaunchReport {
    backward_with_tiles(
        cg,
        shape,
        ConvTiles::hand_backward_input(shape),
        ConvTiles::hand_backward_weights(shape),
        ops,
    )
}

/// Implicit backward convolution under explicit per-pass tiles.
pub fn backward_with_tiles(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    input_tiles: ConvTiles,
    weight_tiles: ConvTiles,
    ops: Option<ImplicitBwdOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    guard_tiles(input_tiles, ImplicitPass::BackwardInput, shape);
    guard_tiles(weight_tiles, ImplicitPass::BackwardWeights, shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: backward_weights_time_with(shape, weight_tiles)
                + backward_input_time_with(shape, input_tiles),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let mut ops = ops.expect("functional conv requires operands");
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        if let Some(w_grad) = ops.w_grad.as_deref_mut() {
            assert_eq!(ops.input.len(), shape.input_len());
            assert_eq!(ops.out_grad.len(), shape.output_len());
            assert_eq!(w_grad.len(), shape.weight_len());
            crate::host::conv_implicit_backward_weights(
                threads,
                shape,
                ops.input,
                ops.out_grad,
                w_grad,
            );
        }
        if let Some(in_grad) = ops.in_grad.as_deref_mut() {
            assert_eq!(ops.weights.len(), shape.weight_len());
            assert_eq!(ops.out_grad.len(), shape.output_len());
            assert_eq!(in_grad.len(), shape.input_len());
            crate::host::conv_implicit_backward_input(
                threads,
                shape,
                ops.weights,
                ops.out_grad,
                in_grad,
            );
        }
        return LaunchReport::default();
    }
    let mut total = LaunchReport::default();
    if let Some(w_grad) = ops.w_grad.as_deref_mut() {
        total.merge(&backward_weights_mesh(
            cg,
            shape,
            weight_tiles,
            ops.input,
            ops.out_grad,
            w_grad,
        ));
    }
    if let Some(in_grad) = ops.in_grad.as_deref_mut() {
        total.merge(&backward_input_mesh(
            cg,
            shape,
            input_tiles,
            ops.weights,
            ops.out_grad,
            in_grad,
        ));
    }
    total
}

fn backward_input_mesh(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    tiles: ConvTiles,
    weights: &[f32],
    out_grad: &[f32],
    in_grad: &mut [f32],
) -> LaunchReport {
    let s = *shape;
    assert_eq!(weights.len(), s.weight_len());
    assert_eq!(out_grad.len(), s.output_len());
    assert_eq!(in_grad.len(), s.input_len());
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (ow, iw, ih, oh) = (s.out_w(), s.in_w, s.in_h, s.out_h());
    // M = N_i, shared = N_o, N = C_i * B.
    let ConvTiles { mt, nt, kt } = tiles;
    let panels_m = ni.div_ceil(MESH_DIM * mt);
    let panels_n = (iw * b).div_ceil(MESH_DIM * nt);
    let panels_k = no.div_ceil(MESH_DIM * kt);

    let w_view = MemView::new(weights);
    let dy = MemView::new(out_grad);
    let dx = MemViewMut::new(in_grad);

    let kplan = tiles.kernel_plan(ImplicitPass::BackwardInput);
    let mut total = LaunchReport::default();
    for pm in 0..panels_m {
        for pn in 0..panels_n {
            let report = cg.run_planned(&kplan, |cpe| {
                let (i, j) = (cpe.row(), cpe.col());
                let m0 = pm * MESH_DIM * mt + i * mt;
                let vm = ni.saturating_sub(m0).min(mt);
                let col0 = pn * MESH_DIM * nt + j * nt;
                let (x_in, b0) = (col0 / b, col0 % b);
                let vn = if x_in < iw { nt } else { 0 };

                let mut a64 = cpe.ldm.alloc_f64(mt * kt);
                let mut b64 = cpe.ldm.alloc_f64(kt * nt);
                let mut c64 = cpe.ldm.alloc_f64(mt * nt);
                let mut abuf = cpe.ldm.alloc_f64(mt * kt);
                let mut bbuf = cpe.ldm.alloc_f64(kt * nt);
                let mut stage = cpe.ldm.alloc_f32(mt.max(kt) * nt.max(kt));

                for y in 0..ih {
                    cpe.compute((mt * nt) as u64, || c64.fill(0.0));
                    for ky in 0..s.k {
                        let oy_num = y as isize + s.pad as isize - ky as isize;
                        if oy_num < 0 || !(oy_num as usize).is_multiple_of(s.stride) {
                            continue;
                        }
                        let oy = oy_num as usize / s.stride;
                        if oy >= oh {
                            continue;
                        }
                        for kx in 0..s.k {
                            let ox_num = x_in as isize + s.pad as isize - kx as isize;
                            let ox_ok = ox_num >= 0
                                && (ox_num as usize).is_multiple_of(s.stride)
                                && (ox_num as usize / s.stride) < ow;
                            let ox = if ox_ok { ox_num as usize / s.stride } else { 0 };
                            for pk in 0..panels_k {
                                // Own W^T tile: rows = in-channels m0..,
                                // cols = out-channels by j; W is (K,K,No,Ni)
                                // so load channel-major and transpose.
                                let ko0 = pk * MESH_DIM * kt + j * kt;
                                let vko = no.saturating_sub(ko0).min(kt);
                                load_fibre_tile(
                                    cpe,
                                    w_view,
                                    ((ky * s.k + kx) * no + ko0) * ni + m0,
                                    if vko > 0 { vm } else { 0 },
                                    ni,
                                    vko,
                                    mt,
                                    kt,
                                    true,
                                    &mut stage,
                                    &mut a64,
                                );
                                // Own dY tile: out-channel rows by i.
                                let ko0i = pk * MESH_DIM * kt + i * kt;
                                let vkoi = no.saturating_sub(ko0i).min(kt);
                                let rows = if ox_ok && vn > 0 { vkoi } else { 0 };
                                load_fibre_tile(
                                    cpe,
                                    dy,
                                    if ox_ok {
                                        ((oy * ow + ox) * no + ko0i) * b + b0
                                    } else {
                                        0
                                    },
                                    vn,
                                    b,
                                    rows,
                                    kt,
                                    nt,
                                    false,
                                    &mut stage,
                                    &mut b64,
                                );
                                rlc_steps(
                                    cpe, &a64, &b64, &mut abuf, &mut bbuf, &mut c64, mt, nt, kt,
                                );
                            }
                        }
                    }
                    if vm > 0 && vn > 0 {
                        cpe.compute((mt * nt) as u64, || {
                            for r in 0..vm {
                                for cc in 0..vn {
                                    stage[r * vn + cc] = c64[r * nt + cc] as f32;
                                }
                            }
                        });
                        cpe.dma_put_strided(
                            dx,
                            ((y * iw + x_in) * ni + m0) * b + b0,
                            vn,
                            b,
                            vm,
                            &stage,
                        );
                    } else {
                        cpe.charge_flops((mt * nt) as u64);
                    }
                }
            });
            total.merge(&report);
        }
    }
    total
}

fn backward_weights_mesh(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    tiles: ConvTiles,
    input: &[f32],
    out_grad: &[f32],
    w_grad: &mut [f32],
) -> LaunchReport {
    let s = *shape;
    assert_eq!(input.len(), s.input_len());
    assert_eq!(out_grad.len(), s.output_len());
    assert_eq!(w_grad.len(), s.weight_len());
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (ow, iw, ih, oh) = (s.out_w(), s.in_w, s.in_h, s.out_h());
    // M = N_o, N = N_i, shared = R_o x C_o x B (looped row by row).
    let ConvTiles { mt, nt: ntw, kt } = tiles;
    let panels_m = no.div_ceil(MESH_DIM * mt);
    let panels_n = ni.div_ceil(MESH_DIM * ntw);
    let panels_k = (ow * b).div_ceil(MESH_DIM * kt);

    let x_view = MemView::new(input);
    let dy = MemView::new(out_grad);
    let dw = MemViewMut::new(w_grad);

    let kplan = tiles.kernel_plan(ImplicitPass::BackwardWeights);
    let mut total = LaunchReport::default();
    for ky in 0..s.k {
        for kx in 0..s.k {
            for pm in 0..panels_m {
                for pn in 0..panels_n {
                    let report = cg.run_planned(&kplan, |cpe| {
                        let (i, j) = (cpe.row(), cpe.col());
                        let m0 = pm * MESH_DIM * mt + i * mt;
                        let vm = no.saturating_sub(m0).min(mt);
                        let n0 = pn * MESH_DIM * ntw + j * ntw;
                        let vnw = ni.saturating_sub(n0).min(ntw);

                        let mut a64 = cpe.ldm.alloc_f64(mt * kt);
                        let mut b64 = cpe.ldm.alloc_f64(kt * ntw);
                        let mut c64 = cpe.ldm.alloc_f64(mt * ntw);
                        let mut abuf = cpe.ldm.alloc_f64(mt * kt);
                        let mut bbuf = cpe.ldm.alloc_f64(kt * ntw);
                        let mut stage = cpe.ldm.alloc_f32(mt.max(kt) * ntw.max(kt));

                        cpe.compute((mt * ntw) as u64, || c64.fill(0.0));
                        for oy in 0..oh {
                            let y = (oy * s.stride + ky) as isize - s.pad as isize;
                            if y < 0 || y as usize >= ih {
                                continue;
                            }
                            let y = y as usize;
                            for pk in 0..panels_k {
                                // Own dY tile: out-channel rows m0.., shared
                                // (x_out, b) cols by j.
                                let cj0 = pk * MESH_DIM * kt + j * kt;
                                let (xo_j, b0_j) = (cj0 / b, cj0 % b);
                                let a_rows = if xo_j < ow { vm } else { 0 };
                                load_fibre_tile(
                                    cpe,
                                    dy,
                                    if xo_j < ow {
                                        ((oy * ow + xo_j) * no + m0) * b + b0_j
                                    } else {
                                        0
                                    },
                                    kt,
                                    b,
                                    a_rows,
                                    mt,
                                    kt,
                                    false,
                                    &mut stage,
                                    &mut a64,
                                );
                                // Own X^T tile: shared (x_out, b) rows by i,
                                // in-channel cols n0..; load channel-major
                                // (block over b) and transpose.
                                let ci0 = pk * MESH_DIM * kt + i * kt;
                                let (xo_i, b0_i) = (ci0 / b, ci0 % b);
                                let x = xo_i as isize * s.stride as isize + kx as isize
                                    - s.pad as isize;
                                let x_ok = xo_i < ow && x >= 0 && (x as usize) < iw;
                                let rows = if x_ok { vnw } else { 0 };
                                load_fibre_tile(
                                    cpe,
                                    x_view,
                                    if x_ok {
                                        ((y * iw + x as usize) * ni + n0) * b + b0_i
                                    } else {
                                        0
                                    },
                                    kt,
                                    b,
                                    rows,
                                    kt,
                                    ntw,
                                    true,
                                    &mut stage,
                                    &mut b64,
                                );
                                rlc_steps(
                                    cpe, &a64, &b64, &mut abuf, &mut bbuf, &mut c64, mt, ntw, kt,
                                );
                            }
                        }
                        if vm > 0 && vnw > 0 {
                            cpe.compute((mt * ntw) as u64, || {
                                for r in 0..vm {
                                    for cc in 0..vnw {
                                        stage[r * vnw + cc] = c64[r * ntw + cc] as f32;
                                    }
                                }
                            });
                            cpe.dma_put_strided(
                                dw,
                                ((ky * s.k + kx) * no + m0) * ni + n0,
                                vnw,
                                ni,
                                vm,
                                &stage,
                            );
                        } else {
                            cpe.charge_flops((mt * ntw) as u64);
                        }
                    });
                    total.merge(&report);
                }
            }
        }
    }
    total
}

// ---------------------------------------------------------------------
// Timing models
// ---------------------------------------------------------------------

fn step_time(mt: usize, nt: usize, kt: usize) -> f64 {
    let sa = transfer_cycles(mt * kt * 8);
    let sb = transfer_cycles(kt * nt * 8);
    let comp = crate::gemm_flop_time((2 * mt * nt * kt) as u64).seconds() * sw26010::arch::CLOCK_HZ;
    SimTime::from_cycles(2.0 * sa + 2.0 * sb + 2.0 * RLC_HOP_CYCLES + comp).seconds()
}

/// Duration of the implicit forward pass for the whole batch.
pub fn forward_time(shape: &ConvShape) -> SimTime {
    forward_time_with(shape, ConvTiles::hand_forward(shape))
}

/// [`forward_time`] under explicit tiles — the tuner's cost model.
pub fn forward_time_with(shape: &ConvShape, tiles: ConvTiles) -> SimTime {
    let s = *shape;
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (ow, ih, oh) = (s.out_w(), s.in_h, s.out_h());
    let ConvTiles { mt, nt, kt } = tiles;
    let panels_m = no.div_ceil(MESH_DIM * mt);
    let panels_n = (ow * b).div_ceil(MESH_DIM * nt);
    let panels_k = ni.div_ceil(MESH_DIM * kt);

    // Valid vertical taps summed over output rows (coordinate-mapped
    // padding skips the rest).
    let valid_ky: usize = (0..oh)
        .map(|oy| {
            (0..s.k)
                .filter(|ky| {
                    let y = (oy * s.stride + ky) as isize - s.pad as isize;
                    y >= 0 && (y as usize) < ih
                })
                .count()
        })
        .sum();

    let t_inner = dma::strided_time(kt * 4, mt, 64).seconds() // W tile
        + crate::gemm_flop_time((mt * kt) as u64).seconds()
        + dma::strided_time(nt * 4, kt, 64).seconds() // X tile
        + crate::gemm_flop_time((kt * nt) as u64).seconds()
        + MESH_DIM as f64 * step_time(mt, nt, kt);
    let per_row_store = 2.0 * crate::gemm_flop_time((mt * nt) as u64).seconds()
        + dma::strided_time(nt * 4, mt, 64).seconds();
    let per_launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + valid_ky as f64 * s.k as f64 * panels_k as f64 * t_inner
        + oh as f64 * per_row_store;
    SimTime::from_seconds((panels_m * panels_n) as f64 * per_launch)
}

/// Duration of the implicit input-gradient pass for the whole batch.
pub fn backward_input_time(shape: &ConvShape) -> SimTime {
    backward_input_time_with(shape, ConvTiles::hand_backward_input(shape))
}

/// [`backward_input_time`] under explicit tiles.
pub fn backward_input_time_with(shape: &ConvShape, tiles: ConvTiles) -> SimTime {
    let s = *shape;
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (iw, ih, oh) = (s.in_w, s.in_h, s.out_h());
    let ConvTiles { mt, nt, kt } = tiles;
    let panels_m = ni.div_ceil(MESH_DIM * mt);
    let panels_n = (iw * b).div_ceil(MESH_DIM * nt);
    let panels_k = no.div_ceil(MESH_DIM * kt);

    let valid_ky: usize = (0..ih)
        .map(|y| {
            (0..s.k)
                .filter(|ky| {
                    let oy_num = y as isize + s.pad as isize - *ky as isize;
                    oy_num >= 0
                        && (oy_num as usize).is_multiple_of(s.stride)
                        && (oy_num as usize / s.stride) < oh
                })
                .count()
        })
        .sum();

    let t_inner = dma::strided_time(mt * 4, kt, 64).seconds() // W^T tile
        + crate::gemm_flop_time((mt * kt) as u64).seconds()
        + dma::strided_time(nt * 4, kt, 64).seconds() // dY tile
        + crate::gemm_flop_time((kt * nt) as u64).seconds()
        + MESH_DIM as f64 * step_time(mt, nt, kt);
    let per_row_store = 2.0 * crate::gemm_flop_time((mt * nt) as u64).seconds()
        + dma::strided_time(nt * 4, mt, 64).seconds();
    let per_launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + valid_ky as f64 * s.k as f64 * panels_k as f64 * t_inner
        + ih as f64 * per_row_store;
    SimTime::from_seconds((panels_m * panels_n) as f64 * per_launch)
}

/// Duration of the implicit weight-gradient pass for the whole batch.
pub fn backward_weights_time(shape: &ConvShape) -> SimTime {
    backward_weights_time_with(shape, ConvTiles::hand_backward_weights(shape))
}

/// [`backward_weights_time`] under explicit tiles.
pub fn backward_weights_time_with(shape: &ConvShape, tiles: ConvTiles) -> SimTime {
    let s = *shape;
    let b = s.batch;
    let (no, ni) = (s.out_c, s.in_c);
    let (ow, ih, oh) = (s.out_w(), s.in_h, s.out_h());
    let ConvTiles { mt, nt: ntw, kt } = tiles;
    let panels_m = no.div_ceil(MESH_DIM * mt);
    let panels_n = ni.div_ceil(MESH_DIM * ntw);
    let panels_k = (ow * b).div_ceil(MESH_DIM * kt);

    let per_tap_rows = |ky: usize| {
        (0..oh)
            .filter(|oy| {
                let y = (oy * s.stride + ky) as isize - s.pad as isize;
                y >= 0 && (y as usize) < ih
            })
            .count()
    };
    let valid_rows: usize = (0..s.k).map(per_tap_rows).sum();

    let t_inner = dma::strided_time(kt * 4, mt, 64).seconds() // dY tile
        + crate::gemm_flop_time((mt * kt) as u64).seconds()
        + dma::strided_time(kt * 4, ntw, 64).seconds() // X^T tile
        + crate::gemm_flop_time((kt * ntw) as u64).seconds()
        + MESH_DIM as f64 * step_time(mt, ntw, kt);
    let per_launch_fixed = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
        + 2.0 * crate::gemm_flop_time((mt * ntw) as u64).seconds()
        + dma::strided_time(ntw * 4, mt, 64).seconds();
    // One launch batch per (ky, kx); valid_rows is summed over ky, and kx
    // multiplies uniformly.
    let total = (panels_m * panels_n) as f64
        * (s.k as f64 * s.k as f64 * per_launch_fixed
            + s.k as f64 * valid_rows as f64 * panels_k as f64 * t_inner);
    SimTime::from_seconds(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::transform::{
        filters_oikk_to_kkon, nchw_to_rcnb_host, rcnb_to_nchw_host, TransShape,
    };
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed);
                ((x >> 35) % 400) as f32 / 200.0 - 1.0
            })
            .collect()
    }

    fn in_trans(s: &ConvShape) -> TransShape {
        TransShape {
            batch: s.batch,
            channels: s.in_c,
            height: s.in_h,
            width: s.in_w,
        }
    }

    fn out_trans(s: &ConvShape) -> TransShape {
        TransShape {
            batch: s.batch,
            channels: s.out_c,
            height: s.out_h(),
            width: s.out_w(),
        }
    }

    fn check_forward(s: ConvShape) {
        let input_nchw = pattern(s.input_len(), 1);
        let weights_oikk = pattern(s.weight_len(), 2);
        let mut want = vec![0.0; s.output_len()];
        reference::conv_forward(&s, &input_nchw, &weights_oikk, &mut want);

        let mut input_rcnb = vec![0.0; s.input_len()];
        nchw_to_rcnb_host(&in_trans(&s), &input_nchw, &mut input_rcnb);
        let weights = filters_oikk_to_kkon(s.out_c, s.in_c, s.k, &weights_oikk);
        let mut out_rcnb = vec![0.0; s.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            &s,
            Some(ImplicitFwdOperands {
                input: &input_rcnb,
                weights: &weights,
                output: &mut out_rcnb,
            }),
        );
        let mut got = vec![0.0; s.output_len()];
        rcnb_to_nchw_host(&out_trans(&s), &out_rcnb, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-3 * w.abs().max(1.0),
                "implicit fwd {s:?} elem {i}: {g} vs {w}"
            );
        }
    }

    fn check_backward(s: ConvShape) {
        let input_nchw = pattern(s.input_len(), 3);
        let weights_oikk = pattern(s.weight_len(), 4);
        let dy_nchw = pattern(s.output_len(), 5);
        let mut want_dx = vec![0.0; s.input_len()];
        let mut want_dw = vec![0.0; s.weight_len()];
        reference::conv_backward(
            &s,
            &input_nchw,
            &weights_oikk,
            &dy_nchw,
            &mut want_dx,
            &mut want_dw,
        );

        let mut input_rcnb = vec![0.0; s.input_len()];
        nchw_to_rcnb_host(&in_trans(&s), &input_nchw, &mut input_rcnb);
        let mut dy_rcnb = vec![0.0; s.output_len()];
        nchw_to_rcnb_host(&out_trans(&s), &dy_nchw, &mut dy_rcnb);
        let weights = filters_oikk_to_kkon(s.out_c, s.in_c, s.k, &weights_oikk);

        let mut dx_rcnb = vec![0.0; s.input_len()];
        let mut dw_kkon = vec![0.0; s.weight_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        backward(
            &mut cg,
            &s,
            Some(ImplicitBwdOperands {
                input: &input_rcnb,
                weights: &weights,
                out_grad: &dy_rcnb,
                in_grad: Some(&mut dx_rcnb),
                w_grad: Some(&mut dw_kkon),
            }),
        );

        let mut got_dx = vec![0.0; s.input_len()];
        rcnb_to_nchw_host(&in_trans(&s), &dx_rcnb, &mut got_dx);
        let got_dw = crate::transform::filters_kkon_to_oikk(s.out_c, s.in_c, s.k, &dw_kkon);
        for (i, (g, w)) in got_dx.iter().zip(&want_dx).enumerate() {
            assert!(
                (g - w).abs() < 1e-2 * w.abs().max(1.0),
                "implicit dX {s:?} elem {i}: {g} vs {w}"
            );
        }
        for (i, (g, w)) in got_dw.iter().zip(&want_dw).enumerate() {
            assert!(
                (g - w).abs() < 1e-2 * w.abs().max(1.0),
                "implicit dW {s:?} elem {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn forward_padded_stride1() {
        check_forward(ConvShape {
            batch: 4,
            in_c: 5,
            in_h: 6,
            in_w: 6,
            out_c: 7,
            k: 3,
            stride: 1,
            pad: 1,
        });
    }

    #[test]
    fn forward_strided() {
        check_forward(ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 9,
            in_w: 9,
            out_c: 4,
            k: 3,
            stride: 2,
            pad: 1,
        });
    }

    #[test]
    fn forward_one_by_one() {
        check_forward(ConvShape {
            batch: 8,
            in_c: 6,
            in_h: 4,
            in_w: 4,
            out_c: 10,
            k: 1,
            stride: 1,
            pad: 0,
        });
    }

    #[test]
    fn forward_wide_batch() {
        // batch 33 exercises pick_nt's divisor search (nt = 11).
        assert_eq!(pick_nt(33), 11);
        check_forward(ConvShape {
            batch: 33,
            in_c: 2,
            in_h: 4,
            in_w: 4,
            out_c: 3,
            k: 3,
            stride: 1,
            pad: 1,
        });
    }

    #[test]
    fn backward_padded_stride1() {
        check_backward(ConvShape {
            batch: 3,
            in_c: 4,
            in_h: 6,
            in_w: 6,
            out_c: 5,
            k: 3,
            stride: 1,
            pad: 1,
        });
    }

    #[test]
    fn backward_strided() {
        check_backward(ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 9,
            in_w: 9,
            out_c: 4,
            k: 3,
            stride: 2,
            pad: 1,
        });
    }

    #[test]
    fn strategy_gates_match_table_ii() {
        let mk = |ni, no| ConvShape {
            batch: 128,
            in_c: ni,
            in_h: 56,
            in_w: 56,
            out_c: no,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert!(!supports_forward(&mk(3, 64))); // conv1_1
        assert!(supports_forward(&mk(64, 64))); // conv1_2
        assert!(!supports_backward(&mk(64, 64))); // conv1_2 backward
        assert!(!supports_backward(&mk(64, 128))); // conv2_1 backward
        assert!(supports_backward(&mk(128, 128))); // conv2_2 backward
    }

    #[test]
    fn timing_mode_charges_models() {
        let s = ConvShape {
            batch: 128,
            in_c: 128,
            in_h: 56,
            in_w: 56,
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let f = forward(&mut cg, &s, None);
        assert_eq!(f.elapsed, forward_time(&s));
        let b = backward(&mut cg, &s, None);
        assert_eq!(
            b.elapsed,
            backward_weights_time(&s) + backward_input_time(&s)
        );
    }

    #[test]
    fn forward_model_matches_mesh() {
        let s = ConvShape {
            batch: 8,
            in_c: 16,
            in_h: 6,
            in_w: 6,
            out_c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let input = vec![0.0f32; s.input_len()];
        let weights = vec![0.0f32; s.weight_len()];
        let mut out = vec![0.0f32; s.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = forward(
            &mut cg,
            &s,
            Some(ImplicitFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut out,
            }),
        );
        let model = forward_time(&s);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn searched_tiles_match_hand_tiles_bitwise() {
        // The accumulation over (ky, kx, channel) is ascending for every
        // tile triple, so any feasible tiling must reproduce the hand
        // plan's output bit for bit — the invariant the tuner relies on.
        let s = ConvShape {
            batch: 6,
            in_c: 20,
            in_h: 5,
            in_w: 5,
            out_c: 12,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let input = pattern(s.input_len(), 7);
        let weights = pattern(s.weight_len(), 8);
        let run = |tiles: ConvTiles| {
            let mut out = vec![0.0f32; s.output_len()];
            let mut cg = CoreGroup::new(ExecMode::Functional);
            forward_with_tiles(
                &mut cg,
                &s,
                tiles,
                Some(ImplicitFwdOperands {
                    input: &input,
                    weights: &weights,
                    output: &mut out,
                }),
            );
            out
        };
        let hand = run(ConvTiles::hand_forward(&s));
        for tiles in [
            ConvTiles {
                mt: 1,
                nt: 1,
                kt: 1,
            },
            ConvTiles {
                mt: 5,
                nt: 6,
                kt: 2,
            },
            ConvTiles {
                mt: 2,
                nt: 3,
                kt: 7,
            },
        ] {
            tiles.validate(ImplicitPass::Forward, &s).unwrap();
            assert_eq!(run(tiles), hand, "tiles {tiles:?}");
        }
    }

    #[test]
    #[should_panic(expected = "infeasible implicit-conv tiling")]
    fn non_dividing_fibre_tile_is_rejected() {
        let s = ConvShape {
            batch: 6,
            in_c: 8,
            in_h: 4,
            in_w: 4,
            out_c: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        // nt = 4 does not divide batch 6.
        forward_with_tiles(
            &mut cg,
            &s,
            ConvTiles {
                mt: 1,
                nt: 4,
                kt: 1,
            },
            None,
        );
    }

    #[test]
    #[should_panic(expected = "swdnn.conv_implicit rejected shape")]
    fn degenerate_shape_fails_with_typed_diagnostic() {
        let s = ConvShape {
            batch: 4,
            in_c: 8,
            in_h: 0,
            in_w: 4,
            out_c: 8,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        forward(&mut cg, &s, None);
    }

    #[test]
    #[should_panic(expected = "swdnn.conv_implicit rejected shape")]
    fn oversized_window_fails_before_underflow() {
        // k = 9 on a 4x4 unpadded input: out_h() would underflow; the
        // typed guard must fire first.
        let s = ConvShape {
            batch: 4,
            in_c: 8,
            in_h: 4,
            in_w: 4,
            out_c: 8,
            k: 9,
            stride: 1,
            pad: 0,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        backward(&mut cg, &s, None);
    }

    #[test]
    fn small_channels_degrade_throughput() {
        // The rationale for the 64-channel gate: effective flops collapse
        // when channel tiles shrink.
        let base = ConvShape {
            batch: 128,
            in_c: 256,
            in_h: 28,
            in_w: 28,
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let small = ConvShape {
            in_c: 16,
            out_c: 16,
            ..base
        };
        let rate = |s: &ConvShape| s.forward_flops() as f64 / forward_time(s).seconds();
        assert!(
            rate(&small) < 0.4 * rate(&base),
            "small-channel rate {:.1}G vs base {:.1}G",
            rate(&small) / 1e9,
            rate(&base) / 1e9
        );
    }
}

#[cfg(test)]
mod model_validation {
    use super::*;
    use sw26010::ExecMode;

    fn small() -> ConvShape {
        ConvShape {
            batch: 8,
            in_c: 16,
            in_h: 6,
            in_w: 6,
            out_c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn backward_input_model_matches_mesh() {
        let s = small();
        let weights = vec![0.0f32; s.weight_len()];
        let dy = vec![0.0f32; s.output_len()];
        let mut dx = vec![0.0f32; s.input_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let tiles = ConvTiles::hand_backward_input(&s);
        let mesh = backward_input_mesh(&mut cg, &s, tiles, &weights, &dy, &mut dx);
        let model = backward_input_time(&s);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn backward_weights_model_matches_mesh() {
        let s = small();
        let input = vec![0.0f32; s.input_len()];
        let dy = vec![0.0f32; s.output_len()];
        let mut dw = vec![0.0f32; s.weight_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let tiles = ConvTiles::hand_backward_weights(&s);
        let mesh = backward_weights_mesh(&mut cg, &s, tiles, &input, &dy, &mut dw);
        let model = backward_weights_time(&s);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn strided_conv_models_stay_consistent() {
        // Stride-2 ResNet-style downsampling: models must stay finite and
        // ordered (backward-weights > 0, forward > 0).
        let s = ConvShape {
            batch: 32,
            in_c: 256,
            in_h: 28,
            in_w: 28,
            out_c: 512,
            k: 1,
            stride: 2,
            pad: 0,
        };
        let f = forward_time(&s).seconds();
        let bw = backward_weights_time(&s).seconds();
        let bi = backward_input_time(&s).seconds();
        assert!(f > 0.0 && bw > 0.0 && bi > 0.0);
        assert!(f.is_finite() && bw.is_finite() && bi.is_finite());
    }
}
