//! # swdnn — DNN kernels for the (simulated) SW26010 CPE cluster
//!
//! Rust reproduction of the layer-kernel library behind swCaffe
//! (Section IV of the paper, building on swDNN \[4\]): register-communication
//! GEMM, explicit (im2col/col2im) and implicit convolution with a mixed
//! autotuning strategy, tensor layout transformation, pooling, and the
//! element-wise / normalisation kernels the five benchmark networks need.
//!
//! Every kernel has two faces kept in lock-step by tests:
//! a *functional* mesh execution on the `sw26010` simulator (checked
//! against the scalar oracles in [`mod@reference`]) and an *analytic timing
//! model* used when the core group runs in timing-only mode.

pub mod bn;
pub mod conv;
pub mod conv_explicit;
pub mod conv_implicit;
pub mod elementwise;
pub mod fused;
pub mod gemm;
pub mod host;
pub mod im2col;
pub mod lrn;
pub mod pool;
pub mod reference;
pub mod scheme;
pub mod shapes;
pub mod softmax;
pub mod transform;

pub use conv_explicit::ExplicitSchemes;
pub use conv_implicit::{ConvTiles, ImplicitPass};
pub use im2col::Im2colStrategy;
pub use scheme::{Broadcast, Buffering, TilingScheme};
pub use shapes::{ConvShape, GemmDims, PoolMethod, PoolShape, ShapeError, Trans};

use sw26010::arch::{CPE_DP_FLOPS_PER_CYCLE, KERNEL_COMPUTE_EFFICIENCY};
use sw26010::SimTime;

/// Duration of `flops` vector operations at the tuned-kernel rate — the
/// unit the per-kernel timing models are built from.
pub fn gemm_flop_time(flops: u64) -> SimTime {
    SimTime::from_cycles(flops as f64 / (CPE_DP_FLOPS_PER_CYCLE * KERNEL_COMPUTE_EFFICIENCY))
}
