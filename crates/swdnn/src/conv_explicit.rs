//! Explicit-GEMM convolution: im2col -> GEMM -> col2im (Sec. IV-B-1).
//!
//! This is the plan inherited from original Caffe, re-hosted on the CPE
//! cluster: the lowering runs as the Fig. 4 DMA kernels and the matrix
//! product as the register-communication GEMM. It is the only plan that
//! handles arbitrary channel counts (the first layers of every network),
//! at the price of materialising the `(K*K*N_i) x (R_o*C_o)` column matrix
//! in main memory once per image and direction.

use sw26010::{CoreGroup, LaunchReport, SimTime};

use crate::gemm::{self, GemmOperands};
use crate::im2col::{self, Col2imOperands, Im2colOperands};
use crate::scheme::TilingScheme;
use crate::shapes::{ConvShape, GemmDims, Trans};

/// The GEMM tiling schemes of the three explicit-plan passes. Each pass
/// runs one GEMM per image; the scheme parameterises it so the tuner can
/// search per-layer, with [`ExplicitSchemes::hand`] as the default point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitSchemes {
    pub forward: TilingScheme,
    pub backward_weights: TilingScheme,
    pub backward_input: TilingScheme,
}

impl ExplicitSchemes {
    /// The hand-picked schemes every caller got before the tuner.
    pub fn hand(shape: &ConvShape) -> ExplicitSchemes {
        ExplicitSchemes {
            forward: TilingScheme::hand(fwd_gemm_dims(shape)),
            backward_weights: TilingScheme::hand(bwd_weights_gemm_dims(shape)),
            backward_input: TilingScheme::hand(bwd_input_gemm_dims(shape)),
        }
    }
}

/// Functional operands of a forward convolution, all NCHW row-major:
/// input `(B, N_i, R_i, C_i)`, weights `(N_o, N_i, K, K)`,
/// output `(B, N_o, R_o, C_o)`.
pub struct ConvFwdOperands<'a> {
    pub input: &'a [f32],
    pub weights: &'a [f32],
    pub output: &'a mut [f32],
}

/// Functional operands of a backward convolution. Either gradient target
/// may be omitted (e.g. the first layer never needs `in_grad`).
pub struct ConvBwdOperands<'a> {
    pub input: &'a [f32],
    pub weights: &'a [f32],
    pub out_grad: &'a [f32],
    pub in_grad: Option<&'a mut [f32]>,
    /// Overwritten (not accumulated) — the batch loop accumulates
    /// internally via the GEMM's beta.
    pub w_grad: Option<&'a mut [f32]>,
}

/// Dims of the forward GEMM (`W x cols`), exposed so the tuner can key
/// its GEMM search on the exact per-pass problem.
pub fn fwd_gemm_dims(shape: &ConvShape) -> GemmDims {
    GemmDims::new(shape.out_c, shape.col_cols(), shape.col_rows())
}

/// Dims of the weight-gradient GEMM (`dY x cols^T`).
pub fn bwd_weights_gemm_dims(shape: &ConvShape) -> GemmDims {
    GemmDims::new(shape.out_c, shape.col_rows(), shape.col_cols())
}

/// Dims of the input-gradient GEMM (`W^T x dY`).
pub fn bwd_input_gemm_dims(shape: &ConvShape) -> GemmDims {
    GemmDims::new(shape.col_rows(), shape.col_cols(), shape.out_c)
}

/// Forward convolution with the explicit plan and hand-picked blocking.
pub fn forward(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<ConvFwdOperands<'_>>,
) -> LaunchReport {
    forward_with_scheme(cg, shape, TilingScheme::hand(fwd_gemm_dims(shape)), ops)
}

/// Forward convolution with an explicit GEMM tiling scheme (the tuner's
/// entry point; the scheme only steers the per-image GEMM).
pub fn forward_with_scheme(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    scheme: TilingScheme,
    ops: Option<ConvFwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: forward_time_with_scheme(shape, scheme),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional conv requires operands");
    assert_eq!(ops.input.len(), shape.input_len());
    assert_eq!(ops.weights.len(), shape.weight_len());
    assert_eq!(ops.output.len(), shape.output_len());
    let per_in = shape.in_c * shape.in_h * shape.in_w;
    let per_out = shape.out_c * shape.out_h() * shape.out_w();
    let mut cols = vec![0.0f32; shape.col_rows() * shape.col_cols()];
    let mut total = LaunchReport::default();
    for b in 0..shape.batch {
        total.merge(&im2col::im2col(
            cg,
            shape,
            Some(Im2colOperands {
                image: &ops.input[b * per_in..][..per_in],
                cols: &mut cols,
            }),
        ));
        total.merge(&gemm::gemm_with_scheme(
            cg,
            fwd_gemm_dims(shape),
            Trans::No,
            Trans::No,
            0.0,
            scheme,
            Some(GemmOperands {
                a: ops.weights,
                b: &cols,
                c: &mut ops.output[b * per_out..][..per_out],
            }),
        ));
    }
    total
}

/// Backward convolution with the explicit plan and hand-picked blocking.
pub fn backward(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<ConvBwdOperands<'_>>,
) -> LaunchReport {
    let hand = ExplicitSchemes::hand(shape);
    backward_with_schemes(cg, shape, hand, ops)
}

/// Backward convolution with explicit per-pass GEMM tiling schemes.
pub fn backward_with_schemes(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    schemes: ExplicitSchemes,
    ops: Option<ConvBwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        // Timing mode has no operand optionality information; charge the
        // full backward (both gradients), the common case during training.
        let report = LaunchReport {
            elapsed: backward_weights_time_with_scheme(shape, schemes.backward_weights)
                + backward_input_time_with_scheme(shape, schemes.backward_input),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let mut ops = ops.expect("functional conv requires operands");
    let per_in = shape.in_c * shape.in_h * shape.in_w;
    let per_out = shape.out_c * shape.out_h() * shape.out_w();
    let col_len = shape.col_rows() * shape.col_cols();
    let mut cols = vec![0.0f32; col_len];
    let mut total = LaunchReport::default();

    if let Some(w_grad) = ops.w_grad.as_deref_mut() {
        assert_eq!(w_grad.len(), shape.weight_len());
        for b in 0..shape.batch {
            total.merge(&im2col::im2col(
                cg,
                shape,
                Some(Im2colOperands {
                    image: &ops.input[b * per_in..][..per_in],
                    cols: &mut cols,
                }),
            ));
            // dW (No x KKNi) += dY_b (No x CoRo) * cols_b^T.
            total.merge(&gemm::gemm_with_scheme(
                cg,
                bwd_weights_gemm_dims(shape),
                Trans::No,
                Trans::Yes,
                if b == 0 { 0.0 } else { 1.0 },
                schemes.backward_weights,
                Some(GemmOperands {
                    a: &ops.out_grad[b * per_out..][..per_out],
                    b: &cols,
                    c: w_grad,
                }),
            ));
        }
    }

    if let Some(in_grad) = ops.in_grad.as_deref_mut() {
        assert_eq!(in_grad.len(), shape.input_len());
        for b in 0..shape.batch {
            // dCols (KKNi x CoRo) = W^T * dY_b, then col2im.
            total.merge(&gemm::gemm_with_scheme(
                cg,
                bwd_input_gemm_dims(shape),
                Trans::Yes,
                Trans::No,
                0.0,
                schemes.backward_input,
                Some(GemmOperands {
                    a: ops.weights,
                    b: &ops.out_grad[b * per_out..][..per_out],
                    c: &mut cols,
                }),
            ));
            total.merge(&im2col::col2im(
                cg,
                shape,
                Some(Col2imOperands {
                    cols: &cols,
                    image: &mut in_grad[b * per_in..][..per_in],
                }),
            ));
        }
    }
    total
}

/// Duration of the explicit forward pass for the whole batch.
pub fn forward_time(shape: &ConvShape) -> SimTime {
    forward_time_with_scheme(shape, TilingScheme::hand(fwd_gemm_dims(shape)))
}

/// [`forward_time`] under an explicit GEMM scheme — the tuner's cost
/// model for the explicit plan.
pub fn forward_time_with_scheme(shape: &ConvShape, scheme: TilingScheme) -> SimTime {
    let dims = fwd_gemm_dims(shape);
    let per_image =
        im2col::time_model_im2col(shape).seconds() + scheme.time_model(dims, 0.0).seconds();
    SimTime::from_seconds(shape.batch as f64 * per_image)
}

/// Duration of the explicit weight-gradient pass for the whole batch.
pub fn backward_weights_time(shape: &ConvShape) -> SimTime {
    backward_weights_time_with_scheme(shape, TilingScheme::hand(bwd_weights_gemm_dims(shape)))
}

/// [`backward_weights_time`] under an explicit GEMM scheme.
pub fn backward_weights_time_with_scheme(shape: &ConvShape, scheme: TilingScheme) -> SimTime {
    let dims = bwd_weights_gemm_dims(shape);
    let per_image =
        im2col::time_model_im2col(shape).seconds() + scheme.time_model(dims, 1.0).seconds();
    SimTime::from_seconds(shape.batch as f64 * per_image)
}

/// Duration of the explicit input-gradient pass for the whole batch.
pub fn backward_input_time(shape: &ConvShape) -> SimTime {
    backward_input_time_with_scheme(shape, TilingScheme::hand(bwd_input_gemm_dims(shape)))
}

/// [`backward_input_time`] under an explicit GEMM scheme.
pub fn backward_input_time_with_scheme(shape: &ConvShape, scheme: TilingScheme) -> SimTime {
    let dims = bwd_input_gemm_dims(shape);
    let per_image =
        scheme.time_model(dims, 0.0).seconds() + im2col::time_model_col2im(shape).seconds();
    SimTime::from_seconds(shape.batch as f64 * per_image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(seed);
                ((x >> 40) % 200) as f32 / 100.0 - 1.0
            })
            .collect()
    }

    fn check_shape(shape: ConvShape) {
        shape.validate().unwrap();
        let input = pattern(shape.input_len(), 11);
        let weights = pattern(shape.weight_len(), 22);
        let out_grad = pattern(shape.output_len(), 33);

        // Forward.
        let mut want_out = vec![0.0; shape.output_len()];
        reference::conv_forward(&shape, &input, &weights, &mut want_out);
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut got_out = vec![0.0; shape.output_len()];
        forward(
            &mut cg,
            &shape,
            Some(ConvFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut got_out,
            }),
        );
        for (i, (g, w)) in got_out.iter().zip(&want_out).enumerate() {
            assert!(
                (g - w).abs() < 1e-3 * w.abs().max(1.0),
                "fwd {shape:?} elem {i}: {g} vs {w}"
            );
        }

        // Backward.
        let mut want_ig = vec![0.0; shape.input_len()];
        let mut want_wg = vec![0.0; shape.weight_len()];
        reference::conv_backward(
            &shape,
            &input,
            &weights,
            &out_grad,
            &mut want_ig,
            &mut want_wg,
        );
        let mut got_ig = vec![0.0; shape.input_len()];
        let mut got_wg = vec![0.0; shape.weight_len()];
        backward(
            &mut cg,
            &shape,
            Some(ConvBwdOperands {
                input: &input,
                weights: &weights,
                out_grad: &out_grad,
                in_grad: Some(&mut got_ig),
                w_grad: Some(&mut got_wg),
            }),
        );
        for (i, (g, w)) in got_wg.iter().zip(&want_wg).enumerate() {
            assert!(
                (g - w).abs() < 1e-2 * w.abs().max(1.0),
                "w_grad {shape:?} elem {i}: {g} vs {w}"
            );
        }
        for (i, (g, w)) in got_ig.iter().zip(&want_ig).enumerate() {
            assert!(
                (g - w).abs() < 1e-2 * w.abs().max(1.0),
                "in_grad {shape:?} elem {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn padded_stride1() {
        check_shape(ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 8,
            in_w: 8,
            out_c: 5,
            k: 3,
            stride: 1,
            pad: 1,
        });
    }

    #[test]
    fn strided_unpadded() {
        check_shape(ConvShape {
            batch: 2,
            in_c: 2,
            in_h: 11,
            in_w: 11,
            out_c: 4,
            k: 3,
            stride: 2,
            pad: 0,
        });
    }

    #[test]
    fn kernel_5_stride_3() {
        check_shape(ConvShape {
            batch: 1,
            in_c: 2,
            in_h: 13,
            in_w: 13,
            out_c: 3,
            k: 5,
            stride: 3,
            pad: 2,
        });
    }

    #[test]
    fn one_by_one_conv() {
        check_shape(ConvShape {
            batch: 2,
            in_c: 6,
            in_h: 5,
            in_w: 5,
            out_c: 4,
            k: 1,
            stride: 1,
            pad: 0,
        });
    }

    #[test]
    fn timing_mode_charges_models() {
        let shape = ConvShape {
            batch: 4,
            in_c: 64,
            in_h: 56,
            in_w: 56,
            out_c: 128,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let f = forward(&mut cg, &shape, None);
        assert_eq!(f.elapsed, forward_time(&shape));
        let b = backward(&mut cg, &shape, None);
        assert_eq!(
            b.elapsed,
            backward_weights_time(&shape) + backward_input_time(&shape)
        );
        assert!((cg.elapsed().seconds() - (f.elapsed + b.elapsed).seconds()).abs() < 1e-12);
    }

    #[test]
    fn early_layers_pay_more_for_im2col() {
        // Paper Sec. VI-A: im2col/col2im account for most of the time in
        // the first layers (large images, few channels) and little in the
        // deep layers. Compare the im2col share of conv1_1 vs conv4_1.
        let conv1_1 = ConvShape {
            batch: 1,
            in_c: 3,
            in_h: 224,
            in_w: 224,
            out_c: 64,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let conv4_1 = ConvShape {
            batch: 1,
            in_c: 256,
            in_h: 28,
            in_w: 28,
            out_c: 512,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let share =
            |s: &ConvShape| im2col::time_model_im2col(s).seconds() / forward_time(s).seconds();
        let early = share(&conv1_1);
        let deep = share(&conv4_1);
        assert!(
            early > 2.0 * deep,
            "early share {early:.3} should dwarf deep share {deep:.3}"
        );
        // And conv1_1's effective rate must be far below peak (the paper
        // reports single-digit Gflops there vs ~740 peak).
        let dims = fwd_gemm_dims(&conv1_1);
        let gflops = dims.flops() as f64 / forward_time(&conv1_1).seconds() / 1e9;
        assert!(
            gflops < 120.0,
            "conv1_1 at {gflops:.0} Gflops is implausibly fast"
        );
    }
}
