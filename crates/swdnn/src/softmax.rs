//! Softmax + cross-entropy loss (Caffe's `SoftmaxWithLoss`).
//!
//! One work item per image: the logit row (1000 entries for ImageNet) fits
//! comfortably in LDM, so each CPE streams rows, computes a numerically
//! stable softmax, and emits the probability row plus its per-image loss.

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

/// Static LDM descriptor of the softmax forward kernel (one class row).
pub fn forward_plan(classes: usize) -> KernelPlan {
    KernelPlan::new("swdnn.softmax.fwd", 64).buffer("row", classes * 4)
}

/// Static LDM descriptor of the softmax backward kernel.
pub fn backward_plan(classes: usize) -> KernelPlan {
    KernelPlan::new("swdnn.softmax.bwd", 64).buffer("row", classes * 4)
}

/// Charged cost of one exp/log evaluation, in flops (software
/// transcendentals on the CPE pipelines).
const TRANSCENDENTAL_FLOPS: u64 = 20;

/// Functional operands of the forward pass.
pub struct SoftmaxFwdOperands<'a> {
    /// Logits, `(B, C)` row-major.
    pub logits: &'a [f32],
    /// Class labels, one per image (integral values stored as f32).
    pub labels: &'a [f32],
    /// Output probabilities, `(B, C)`.
    pub probs: &'a mut [f32],
    /// Per-image losses, `(B)`.
    pub losses: &'a mut [f32],
}

/// Softmax + cross-entropy forward.
pub fn forward(
    cg: &mut CoreGroup,
    batch: usize,
    classes: usize,
    ops: Option<SoftmaxFwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: forward_time(batch, classes),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional softmax requires operands");
    assert_eq!(ops.logits.len(), batch * classes);
    assert_eq!(ops.labels.len(), batch);
    assert_eq!(ops.probs.len(), batch * classes);
    assert_eq!(ops.losses.len(), batch);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::softmax_forward(
            threads, batch, classes, ops.logits, ops.labels, ops.probs, ops.losses,
        );
        return LaunchReport::default();
    }
    let x = MemView::new(ops.logits);
    let labels = MemView::new(ops.labels);
    let probs = MemViewMut::new(ops.probs);
    let losses = MemViewMut::new(ops.losses);
    cg.run_planned(&forward_plan(classes), move |cpe| {
        let mut row = cpe.ldm.alloc_f32(classes);
        let mut lab = [0.0f32; 1];
        let mut b = cpe.idx();
        while b < batch {
            cpe.dma_get(x, b * classes, &mut row);
            cpe.dma_get(labels, b, &mut lab);
            let loss = cpe.compute(classes as u64 * (TRANSCENDENTAL_FLOPS + 3), || {
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
                let mut sum = 0.0f64;
                for v in row.iter_mut() {
                    let e = ((*v as f64) - max).exp();
                    *v = e as f32;
                    sum += e;
                }
                for v in row.iter_mut() {
                    *v = (*v as f64 / sum) as f32;
                }
                let label = lab[0] as usize;
                assert!(label < classes, "label {label} out of range");
                -(row[label].max(f32::MIN_POSITIVE) as f64).ln()
            });
            cpe.dma_put(probs, b * classes, &row);
            cpe.dma_put(losses, b, &[loss as f32]);
            b += 64;
        }
    })
}

/// Functional operands of the backward pass.
pub struct SoftmaxBwdOperands<'a> {
    pub probs: &'a [f32],
    pub labels: &'a [f32],
    /// Gradient w.r.t. the logits, `(B, C)`: `(p - onehot) * loss_weight`.
    pub in_grad: &'a mut [f32],
}

/// Softmax + cross-entropy backward. `loss_weight` is typically `1/B`.
pub fn backward(
    cg: &mut CoreGroup,
    batch: usize,
    classes: usize,
    loss_weight: f32,
    ops: Option<SoftmaxBwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: backward_time(batch, classes),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional softmax requires operands");
    assert_eq!(ops.probs.len(), batch * classes);
    assert_eq!(ops.in_grad.len(), batch * classes);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::softmax_backward(
            threads,
            batch,
            classes,
            loss_weight,
            ops.probs,
            ops.labels,
            ops.in_grad,
        );
        return LaunchReport::default();
    }
    let p = MemView::new(ops.probs);
    let labels = MemView::new(ops.labels);
    let dx = MemViewMut::new(ops.in_grad);
    cg.run_planned(&backward_plan(classes), move |cpe| {
        let mut row = cpe.ldm.alloc_f32(classes);
        let mut lab = [0.0f32; 1];
        let mut b = cpe.idx();
        while b < batch {
            cpe.dma_get(p, b * classes, &mut row);
            cpe.dma_get(labels, b, &mut lab);
            cpe.compute(2 * classes as u64, || {
                let label = lab[0] as usize;
                for (c, v) in row.iter_mut().enumerate() {
                    let onehot = if c == label { 1.0 } else { 0.0 };
                    *v = (*v - onehot) * loss_weight;
                }
            });
            cpe.dma_put(dx, b * classes, &row);
            b += 64;
        }
    })
}

/// Duration of the forward pass.
pub fn forward_time(batch: usize, classes: usize) -> SimTime {
    let per_item = dma::continuous_time(classes * 4, 64).seconds() * 2.0
        + crate::gemm_flop_time(classes as u64 * (TRANSCENDENTAL_FLOPS + 3)).seconds();
    SimTime::from_seconds(
        sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + batch.div_ceil(64) as f64 * per_item,
    )
}

/// Duration of the backward pass.
pub fn backward_time(batch: usize, classes: usize) -> SimTime {
    let per_item = dma::continuous_time(classes * 4, 64).seconds() * 2.0
        + crate::gemm_flop_time(2 * classes as u64).seconds();
    SimTime::from_seconds(
        sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + batch.div_ceil(64) as f64 * per_item,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::ExecMode;

    #[test]
    fn probabilities_sum_to_one_and_loss_is_correct() {
        let (b, c) = (70, 11);
        let logits: Vec<f32> = (0..b * c)
            .map(|i| ((i * 7) % 13) as f32 * 0.3 - 2.0)
            .collect();
        let labels: Vec<f32> = (0..b).map(|i| (i % c) as f32).collect();
        let mut probs = vec![0.0; b * c];
        let mut losses = vec![0.0; b];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            b,
            c,
            Some(SoftmaxFwdOperands {
                logits: &logits,
                labels: &labels,
                probs: &mut probs,
                losses: &mut losses,
            }),
        );
        for bi in 0..b {
            let row = &probs[bi * c..][..c];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {bi} sums to {sum}");
            assert!(row.iter().all(|v| *v >= 0.0));
            let want = -(row[labels[bi] as usize]).ln();
            assert!((losses[bi] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_is_p_minus_onehot() {
        let (b, c) = (5, 4);
        let logits: Vec<f32> = (0..b * c).map(|i| (i % 7) as f32 * 0.5).collect();
        let labels: Vec<f32> = vec![0.0, 1.0, 2.0, 3.0, 1.0];
        let mut probs = vec![0.0; b * c];
        let mut losses = vec![0.0; b];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            b,
            c,
            Some(SoftmaxFwdOperands {
                logits: &logits,
                labels: &labels,
                probs: &mut probs,
                losses: &mut losses,
            }),
        );
        let mut dx = vec![0.0; b * c];
        backward(
            &mut cg,
            b,
            c,
            1.0 / b as f32,
            Some(SoftmaxBwdOperands {
                probs: &probs,
                labels: &labels,
                in_grad: &mut dx,
            }),
        );
        for bi in 0..b {
            for ci in 0..c {
                let onehot = if ci == labels[bi] as usize { 1.0 } else { 0.0 };
                let want = (probs[bi * c + ci] - onehot) / b as f32;
                assert!((dx[bi * c + ci] - want).abs() < 1e-6);
            }
        }
        // Gradient rows sum to ~0 (softmax property).
        for bi in 0..b {
            let s: f32 = dx[bi * c..][..c].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let (b, c) = (2, 3);
        let logits = vec![1000.0, 1001.0, 999.0, -1000.0, -1000.5, -999.0];
        let labels = vec![1.0, 2.0];
        let mut probs = vec![0.0; b * c];
        let mut losses = vec![0.0; b];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            b,
            c,
            Some(SoftmaxFwdOperands {
                logits: &logits,
                labels: &labels,
                probs: &mut probs,
                losses: &mut losses,
            }),
        );
        assert!(probs.iter().all(|v| v.is_finite()));
        assert!(losses.iter().all(|v| v.is_finite()));
    }
}
