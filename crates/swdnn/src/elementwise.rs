//! Element-wise kernels: ReLU, dropout-mask application, element sums,
//! scalar AXPY, and per-channel bias/scale application.
//!
//! All of these stream flat arrays through LDM in large chunks — the
//! textbook Principle 2/3 pattern (DMA in, vector op, DMA out, blocks of
//! several KB per CPE).

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

/// Elements each CPE stages per chunk (16 KB of f32 — large enough to
/// amortise the DMA start-up latency per Fig. 2).
pub const CHUNK: usize = 4096;

/// Static LDM descriptor of a streaming kernel with `streams` staging
/// buffers of `CHUNK` f32 elements each.
pub fn stream_plan(name: &str, streams: usize) -> KernelPlan {
    let mut p = KernelPlan::new(name, 64);
    for s in 0..streams {
        p = p.buffer(format!("stream{s}"), CHUNK * 4);
    }
    p
}

/// Static LDM descriptor of the bias forward kernel (full bias vector
/// plus one row chunk).
pub fn bias_forward_plan(channels: usize, spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bias.fwd", 64)
        .buffer("bias", channels * 4)
        .buffer("buf", row_chunk * 4)
}

/// Static LDM descriptor of the bias backward kernel.
pub fn bias_backward_plan(spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bias.bwd", 64).buffer("buf", row_chunk * 4)
}

/// Static LDM descriptor of the row-broadcast bias kernel.
pub fn bias_rows_plan(row_len: usize) -> KernelPlan {
    let chunk = CHUNK.min(row_len);
    KernelPlan::new("swdnn.bias.rows", 64)
        .buffer("bias", chunk * 4)
        .buffer("buf", chunk * 4)
}

/// Columns per strided chunk in [`col_sums`].
const COL_CHUNK: usize = 64;

/// Static LDM descriptor of the column-sum kernel (a row-group staging
/// buffer plus a column accumulator).
pub fn col_sums_plan() -> KernelPlan {
    let row_group = (CHUNK / COL_CHUNK).max(1);
    KernelPlan::new("swdnn.col_sums", 64)
        .buffer("buf", row_group * COL_CHUNK * 4)
        .buffer("acc", COL_CHUNK * 4)
}

/// Static LDM descriptor of the strided block-copy kernel.
pub fn copy_blocks_plan(block_len: usize) -> KernelPlan {
    let chunk = CHUNK.min(block_len.max(1));
    KernelPlan::new("swdnn.copy_blocks", 64).buffer("buf", chunk * 4)
}

/// Generic one-input one-output streaming map. `flops_per_elem` is charged
/// per element processed.
pub fn unary_map(
    cg: &mut CoreGroup,
    len: usize,
    flops_per_elem: u64,
    io: Option<(&[f32], &mut [f32])>,
    f: impl Fn(f32) -> f32 + Sync,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: stream_time(len, 1, 1, flops_per_elem),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, output) = io.expect("functional map requires operands");
    assert_eq!(input.len(), len);
    assert_eq!(output.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::unary_map(threads, input, output, f);
        return LaunchReport::default();
    }
    let src = MemView::new(input);
    let dst = MemViewMut::new(output);
    let f = &f;
    cg.run_planned(&stream_plan("swdnn.unary_map", 1), move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(CHUNK);
        let mut start = cpe.idx() * CHUNK;
        while start < len {
            let n = CHUNK.min(len - start);
            cpe.dma_get(src, start, &mut buf[..n]);
            cpe.compute((n as u64) * flops_per_elem.max(1), || {
                for v in buf[..n].iter_mut() {
                    *v = f(*v);
                }
            });
            cpe.dma_put(dst, start, &buf[..n]);
            start += 64 * CHUNK;
        }
    })
}

/// Generic two-input one-output streaming map.
pub fn binary_map(
    cg: &mut CoreGroup,
    len: usize,
    flops_per_elem: u64,
    io: Option<(&[f32], &[f32], &mut [f32])>,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: stream_time(len, 2, 1, flops_per_elem),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (a, b, out) = io.expect("functional map requires operands");
    assert_eq!(a.len(), len);
    assert_eq!(b.len(), len);
    assert_eq!(out.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::binary_map(threads, a, b, out, f);
        return LaunchReport::default();
    }
    let av = MemView::new(a);
    let bv = MemView::new(b);
    let dst = MemViewMut::new(out);
    let f = &f;
    cg.run_planned(&stream_plan("swdnn.binary_map", 2), move |cpe| {
        let mut abuf = cpe.ldm.alloc_f32(CHUNK);
        let mut bbuf = cpe.ldm.alloc_f32(CHUNK);
        let mut start = cpe.idx() * CHUNK;
        while start < len {
            let n = CHUNK.min(len - start);
            cpe.dma_get(av, start, &mut abuf[..n]);
            cpe.dma_get(bv, start, &mut bbuf[..n]);
            cpe.compute((n as u64) * flops_per_elem.max(1), || {
                for i in 0..n {
                    abuf[i] = f(abuf[i], bbuf[i]);
                }
            });
            cpe.dma_put(dst, start, &abuf[..n]);
            start += 64 * CHUNK;
        }
    })
}

/// Duration of a streaming kernel over `len` elements with `reads` input
/// streams and `writes` output streams.
pub fn stream_time(len: usize, reads: usize, writes: usize, flops_per_elem: u64) -> SimTime {
    // Chunk-exact: walk the makespan CPE's (CPE 0's) actual chunk
    // sequence, so small tensors are not billed for full 16 KB chunks.
    let mut t = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS;
    let mut off = 0;
    while off < len {
        let n = CHUNK.min(len - off);
        t += (reads + writes) as f64 * dma::continuous_time(n * 4, 64).seconds()
            + crate::gemm_flop_time(n as u64 * flops_per_elem.max(1)).seconds();
        off += 64 * CHUNK;
    }
    SimTime::from_seconds(t)
}

/// Duration of a row-wise streaming kernel, excluding the launch
/// overhead: the makespan CPE handles `ceil(rows/64)` rows, each streamed
/// in `chunk`-element pieces with `streams` DMA transfers per piece.
pub fn row_stream_time(
    rows: usize,
    row_len: usize,
    chunk: usize,
    streams: usize,
    flops_per_elem: u64,
) -> f64 {
    rows.div_ceil(64) as f64 * chunk_walk_time(row_len, chunk, streams, flops_per_elem)
}

/// Cost of streaming one `row_len`-element row in `chunk`-sized pieces.
pub fn chunk_walk_time(row_len: usize, chunk: usize, streams: usize, flops_per_elem: u64) -> f64 {
    let chunk = chunk.max(1);
    let mut per_row = 0.0;
    let mut off = 0;
    while off < row_len {
        let n = chunk.min(row_len - off);
        per_row += streams as f64 * dma::continuous_time(n * 4, 64).seconds()
            + crate::gemm_flop_time(n as u64 * flops_per_elem).seconds();
        off += n;
    }
    per_row
}

/// ReLU forward: `y = max(0, x)`.
pub fn relu_forward(
    cg: &mut CoreGroup,
    len: usize,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    unary_map(cg, len, 1, io, |v| v.max(0.0))
}

/// ReLU backward: `dx = dy * [x > 0]`.
pub fn relu_backward(
    cg: &mut CoreGroup,
    len: usize,
    io: Option<(&[f32], &[f32], &mut [f32])>,
) -> LaunchReport {
    binary_map(cg, len, 1, io, |dy, x| if x > 0.0 { dy } else { 0.0 })
}

/// Dropout application: `y = x * mask` where the (already scaled) mask was
/// drawn by the framework.
pub fn apply_mask(
    cg: &mut CoreGroup,
    len: usize,
    io: Option<(&[f32], &[f32], &mut [f32])>,
) -> LaunchReport {
    binary_map(cg, len, 1, io, |x, m| x * m)
}

/// Element-wise sum `out = a + b` (ResNet shortcut joins).
pub fn add(
    cg: &mut CoreGroup,
    len: usize,
    io: Option<(&[f32], &[f32], &mut [f32])>,
) -> LaunchReport {
    binary_map(cg, len, 1, io, |a, b| a + b)
}

/// `y += alpha * x` (SGD updates, gradient accumulation).
pub fn axpy(
    cg: &mut CoreGroup,
    len: usize,
    alpha: f32,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: stream_time(len, 2, 1, 2),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (x, y) = io.expect("functional axpy requires operands");
    assert_eq!(x.len(), len);
    assert_eq!(y.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::axpy(threads, alpha, x, y);
        return LaunchReport::default();
    }
    let xv = MemView::new(x);
    let yv = MemViewMut::new(y);
    cg.run_planned(&stream_plan("swdnn.axpy", 2), move |cpe| {
        let mut xbuf = cpe.ldm.alloc_f32(CHUNK);
        let mut ybuf = cpe.ldm.alloc_f32(CHUNK);
        let mut start = cpe.idx() * CHUNK;
        while start < len {
            let n = CHUNK.min(len - start);
            cpe.dma_get(xv, start, &mut xbuf[..n]);
            cpe.dma_get(yv.as_view(), start, &mut ybuf[..n]);
            cpe.compute(2 * n as u64, || {
                for i in 0..n {
                    ybuf[i] += alpha * xbuf[i];
                }
            });
            cpe.dma_put(yv, start, &ybuf[..n]);
            start += 64 * CHUNK;
        }
    })
}

/// Per-channel bias add on an NCHW tensor: `y[b,c,:] = x[b,c,:] + bias[c]`.
/// Each CPE stages the bias vector once, then streams its rows.
pub fn bias_forward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    spatial: usize,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    let len = batch * channels * spatial;
    if !cg.mode().is_functional() {
        let t = SimTime::from_seconds(
            sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
                + dma::continuous_time(channels * 4, 64).seconds()
                + row_stream_time(batch * channels, spatial, CHUNK, 2, 1),
        );
        let report = LaunchReport {
            elapsed: t,
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (bias, data) = io.expect("functional bias requires operands");
    assert_eq!(bias.len(), channels);
    assert_eq!(data.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bias_forward(threads, batch, channels, spatial, bias, data);
        return LaunchReport::default();
    }
    let bv = MemView::new(bias);
    let dv = MemViewMut::new(data);
    let rows = batch * channels;
    cg.run_planned(&bias_forward_plan(channels, spatial), move |cpe| {
        let mut bbuf = cpe.ldm.alloc_f32(channels);
        cpe.dma_get(bv, 0, &mut bbuf);
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let mut row = cpe.idx();
        while row < rows {
            let c = row % channels;
            let mut off = 0;
            while off < spatial {
                let n = row_chunk.min(spatial - off);
                cpe.dma_get(dv.as_view(), row * spatial + off, &mut buf[..n]);
                cpe.compute(n as u64, || {
                    for v in buf[..n].iter_mut() {
                        *v += bbuf[c];
                    }
                });
                cpe.dma_put(dv, row * spatial + off, &buf[..n]);
                off += n;
            }
            row += 64;
        }
    })
}

/// Per-channel bias gradient: `db[c] = sum over (b, spatial) of dy[b,c,:]`.
/// Channel `c` is owned by CPE `c % 64`, so accumulation never collides.
pub fn bias_backward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    spatial: usize,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    let len = batch * channels * spatial;
    if !cg.mode().is_functional() {
        let per_channel = batch as f64 * chunk_walk_time(spatial, CHUNK, 1, 1)
            + dma::continuous_time(4, 64).seconds();
        let t = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
            + channels.div_ceil(64) as f64 * per_channel;
        let report = LaunchReport {
            elapsed: SimTime::from_seconds(t),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (dy, db) = io.expect("functional bias requires operands");
    assert_eq!(dy.len(), len);
    assert_eq!(db.len(), channels);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bias_backward(threads, batch, channels, spatial, dy, db);
        return LaunchReport::default();
    }
    let dyv = MemView::new(dy);
    let dbv = MemViewMut::new(db);
    cg.run_planned(&bias_backward_plan(spatial), move |cpe| {
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let mut c = cpe.idx();
        while c < channels {
            let mut acc = 0.0f64;
            for b in 0..batch {
                let mut off = 0;
                while off < spatial {
                    let n = row_chunk.min(spatial - off);
                    cpe.dma_get(dyv, (b * channels + c) * spatial + off, &mut buf[..n]);
                    acc +=
                        cpe.compute(n as u64, || buf[..n].iter().map(|v| *v as f64).sum::<f64>());
                    off += n;
                }
            }
            cpe.dma_put(dbv, c, &[acc as f32]);
            c += 64;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: i64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as i64 * 37 + seed) % 21) - 10) as f32 * 0.5)
            .collect()
    }

    #[test]
    fn relu_roundtrip() {
        let x = pattern(10_000, 0);
        let mut y = vec![0.0; x.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        relu_forward(&mut cg, x.len(), Some((&x, &mut y)));
        for (xi, yi) in x.iter().zip(&y) {
            assert_eq!(*yi, xi.max(0.0));
        }
        let dy = pattern(x.len(), 3);
        let mut dx = vec![0.0; x.len()];
        relu_backward(&mut cg, x.len(), Some((&dy, &x, &mut dx)));
        for i in 0..x.len() {
            assert_eq!(dx[i], if x[i] > 0.0 { dy[i] } else { 0.0 });
        }
    }

    #[test]
    fn add_and_axpy() {
        let a = pattern(5000, 1);
        let b = pattern(5000, 2);
        let mut out = vec![0.0; 5000];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        add(&mut cg, 5000, Some((&a, &b, &mut out)));
        for i in 0..5000 {
            assert_eq!(out[i], a[i] + b[i]);
        }
        let mut y = b.clone();
        axpy(&mut cg, 5000, -0.5, Some((&a, &mut y)));
        for i in 0..5000 {
            assert!((y[i] - (b[i] - 0.5 * a[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn bias_forward_and_backward() {
        let (batch, channels, spatial) = (3, 5, 70);
        let bias = pattern(channels, 4);
        let x = pattern(batch * channels * spatial, 5);
        let mut data = x.clone();
        let mut cg = CoreGroup::new(ExecMode::Functional);
        bias_forward(&mut cg, batch, channels, spatial, Some((&bias, &mut data)));
        for b in 0..batch {
            for (c, bc) in bias.iter().enumerate() {
                for s in 0..spatial {
                    let i = (b * channels + c) * spatial + s;
                    assert_eq!(data[i], x[i] + bc);
                }
            }
        }
        let mut db = vec![0.0; channels];
        bias_backward(&mut cg, batch, channels, spatial, Some((&data, &mut db)));
        for c in 0..channels {
            let want: f32 = (0..batch)
                .flat_map(|b| {
                    let data = &data;
                    (0..spatial).map(move |s| data[(b * channels + c) * spatial + s])
                })
                .sum();
            assert!(
                (db[c] - want).abs() < 1e-3,
                "channel {c}: {} vs {want}",
                db[c]
            );
        }
    }

    #[test]
    fn timing_mode_charges_stream_model() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let r = relu_forward(&mut cg, 1 << 20, None);
        assert_eq!(r.elapsed, stream_time(1 << 20, 1, 1, 1));
        assert!(r.elapsed.seconds() > 0.0);
    }

    #[test]
    fn stream_model_matches_mesh() {
        let len = 300_000;
        let x = vec![1.0f32; len];
        let mut y = vec![0.0f32; len];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = relu_forward(&mut cg, len, Some((&x, &mut y)));
        let model = stream_time(len, 1, 1, 1);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn mask_apply() {
        let x = pattern(2000, 6);
        let mask: Vec<f32> = (0..2000)
            .map(|i| if i % 3 == 0 { 0.0 } else { 1.5 })
            .collect();
        let mut y = vec![0.0; 2000];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        apply_mask(&mut cg, 2000, Some((&x, &mask, &mut y)));
        for i in 0..2000 {
            assert_eq!(y[i], x[i] * mask[i]);
        }
    }
}

/// Row-broadcast bias add: `data[r, :] += bias[:]` for `rows` rows of
/// `row_len` (inner-product layers). Each CPE stages the bias vector once.
pub fn bias_rows(
    cg: &mut CoreGroup,
    rows: usize,
    row_len: usize,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        // 3 DMA streams per chunk: bias get, data get, data put.
        let t = SimTime::from_seconds(
            sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
                + row_stream_time(rows, row_len, CHUNK, 3, 1),
        );
        let report = LaunchReport {
            elapsed: t,
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (bias, data) = io.expect("functional bias requires operands");
    assert_eq!(bias.len(), row_len);
    assert_eq!(data.len(), rows * row_len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bias_rows(threads, rows, row_len, bias, data);
        return LaunchReport::default();
    }
    let bv = MemView::new(bias);
    let dv = MemViewMut::new(data);
    cg.run_planned(&bias_rows_plan(row_len), move |cpe| {
        let chunk = CHUNK.min(row_len);
        let mut bbuf = cpe.ldm.alloc_f32(chunk);
        let mut buf = cpe.ldm.alloc_f32(chunk);
        let mut row = cpe.idx();
        while row < rows {
            let mut off = 0;
            while off < row_len {
                let n = chunk.min(row_len - off);
                cpe.dma_get(bv, off, &mut bbuf[..n]);
                cpe.dma_get(dv.as_view(), row * row_len + off, &mut buf[..n]);
                cpe.compute(n as u64, || {
                    for i in 0..n {
                        buf[i] += bbuf[i];
                    }
                });
                cpe.dma_put(dv, row * row_len + off, &buf[..n]);
                off += n;
            }
            row += 64;
        }
    })
}

/// Column sums of a row-major `rows x cols` matrix: `out[c] = sum_r m[r, c]`
/// (inner-product bias gradients). Column chunks are owned by single CPEs,
/// so accumulation never collides.
pub fn col_sums(
    cg: &mut CoreGroup,
    rows: usize,
    cols: usize,
    io: Option<(&[f32], &mut [f32])>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let chunks = cols.div_ceil(COL_CHUNK);
        // One strided get per chunk covers all rows.
        let per_chunk = dma::strided_time(COL_CHUNK * 4, rows, 64).seconds()
            + crate::gemm_flop_time((rows * COL_CHUNK) as u64).seconds()
            + dma::continuous_time(COL_CHUNK * 4, 64).seconds();
        let t =
            sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + chunks.div_ceil(64) as f64 * per_chunk;
        let report = LaunchReport {
            elapsed: SimTime::from_seconds(t),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (m, out) = io.expect("functional col_sums requires operands");
    assert_eq!(m.len(), rows * cols);
    assert_eq!(out.len(), cols);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::col_sums(threads, rows, cols, m, out);
        return LaunchReport::default();
    }
    let mv = MemView::new(m);
    let ov = MemViewMut::new(out);
    let chunks = cols.div_ceil(COL_CHUNK);
    cg.run_planned(&col_sums_plan(), move |cpe| {
        // Stage rows in groups so the buffer stays bounded.
        let row_group = (CHUNK / COL_CHUNK).max(1);
        let mut buf = cpe.ldm.alloc_f32(row_group * COL_CHUNK);
        let mut acc = cpe.ldm.alloc_f32(COL_CHUNK);
        let mut chunk = cpe.idx();
        while chunk < chunks {
            let c0 = chunk * COL_CHUNK;
            let n = COL_CHUNK.min(cols - c0);
            if cpe.functional() {
                acc.fill(0.0);
            }
            let mut r0 = 0;
            while r0 < rows {
                let rg = row_group.min(rows - r0);
                cpe.dma_get_strided(mv, r0 * cols + c0, n, cols, rg, &mut buf[..rg * n]);
                cpe.compute((rg * n) as u64, || {
                    for r in 0..rg {
                        for c in 0..n {
                            acc[c] += buf[r * n + c];
                        }
                    }
                });
                r0 += rg;
            }
            cpe.dma_put(ov, c0, &acc[..n]);
            chunk += 64;
        }
    })
}

/// Operands of [`copy_blocks`]:
/// `(src, src_off, src_stride, dst, dst_off, dst_stride)`.
pub type CopyBlocksIo<'a> = (&'a [f32], usize, usize, &'a mut [f32], usize, usize);

/// Copy `nblocks` blocks of `block_len` elements from strided positions in
/// `src` to strided positions in `dst` (concat / split plumbing).
pub fn copy_blocks(
    cg: &mut CoreGroup,
    block_len: usize,
    nblocks: usize,
    io: Option<CopyBlocksIo<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let t = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
            + row_stream_time(nblocks, block_len, CHUNK, 2, 0);
        let report = LaunchReport {
            elapsed: SimTime::from_seconds(t),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (src, src_off, src_stride, dst, dst_off, dst_stride) =
        io.expect("functional copy requires operands");
    if let swbackend::Path::Host { .. } = swbackend::dispatch(cg.mode()) {
        crate::host::copy_blocks(
            block_len, nblocks, src, src_off, src_stride, dst, dst_off, dst_stride,
        );
        return LaunchReport::default();
    }
    let sv = MemView::new(src);
    let dv = MemViewMut::new(dst);
    cg.run_planned(&copy_blocks_plan(block_len), move |cpe| {
        let chunk = CHUNK.min(block_len.max(1));
        let mut buf = cpe.ldm.alloc_f32(chunk);
        let mut blk = cpe.idx();
        while blk < nblocks {
            let s = src_off + blk * src_stride;
            let d = dst_off + blk * dst_stride;
            let mut off = 0;
            while off < block_len {
                let n = chunk.min(block_len - off);
                cpe.dma_get(sv, s + off, &mut buf[..n]);
                cpe.dma_put(dv, d + off, &buf[..n]);
                off += n;
            }
            blk += 64;
        }
    })
}

#[cfg(test)]
mod tests_extra {
    use super::*;
    use sw26010::ExecMode;

    #[test]
    fn bias_rows_adds_vector_per_row() {
        let (rows, len) = (7, 130);
        let bias: Vec<f32> = (0..len).map(|i| i as f32 * 0.1).collect();
        let mut data = vec![1.0f32; rows * len];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        bias_rows(&mut cg, rows, len, Some((&bias, &mut data)));
        for r in 0..rows {
            for c in 0..len {
                assert!((data[r * len + c] - (1.0 + bias[c])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn col_sums_matches_host() {
        let (rows, cols) = (13, 150);
        let m: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 11) % 17) as f32 - 8.0)
            .collect();
        let mut out = vec![0.0f32; cols];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        col_sums(&mut cg, rows, cols, Some((&m, &mut out)));
        for c in 0..cols {
            let want: f32 = (0..rows).map(|r| m[r * cols + c]).sum();
            assert!(
                (out[c] - want).abs() < 1e-4,
                "col {c}: {} vs {want}",
                out[c]
            );
        }
    }

    #[test]
    fn copy_blocks_moves_strided_regions() {
        // Copy 3 blocks of 5 from stride-8 positions to stride-10 positions.
        let src: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 40];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        copy_blocks(&mut cg, 5, 3, Some((&src, 1, 8, &mut dst, 2, 10)));
        for b in 0..3 {
            for i in 0..5 {
                assert_eq!(dst[2 + b * 10 + i], src[1 + b * 8 + i]);
            }
        }
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[7], 0.0);
    }

    #[test]
    fn new_kernels_charge_in_timing_mode() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        assert!(bias_rows(&mut cg, 64, 4096, None).elapsed.seconds() > 0.0);
        assert!(col_sums(&mut cg, 64, 4096, None).elapsed.seconds() > 0.0);
        assert!(copy_blocks(&mut cg, 4096, 64, None).elapsed.seconds() > 0.0);
    }
}

/// In-place scale: `x *= alpha`.
pub fn scale(cg: &mut CoreGroup, len: usize, alpha: f32, io: Option<&mut [f32]>) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: stream_time(len, 1, 1, 1),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let x = io.expect("functional scale requires operands");
    assert_eq!(x.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::scale(threads, alpha, x);
        return LaunchReport::default();
    }
    let xv = MemViewMut::new(x);
    cg.run_planned(&stream_plan("swdnn.scale", 1), move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(CHUNK);
        let mut start = cpe.idx() * CHUNK;
        while start < len {
            let n = CHUNK.min(len - start);
            cpe.dma_get(xv.as_view(), start, &mut buf[..n]);
            cpe.compute(n as u64, || {
                for v in buf[..n].iter_mut() {
                    *v *= alpha;
                }
            });
            cpe.dma_put(xv, start, &buf[..n]);
            start += 64 * CHUNK;
        }
    })
}

/// Sum of squares of a vector, reduced per CPE and finished on the MPE
/// (LARS norm computations, gradient diagnostics).
pub fn sumsq(cg: &mut CoreGroup, len: usize, io: Option<&[f32]>) -> (f64, LaunchReport) {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: stream_time(len, 1, 0, 2),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        cg.mpe_compute(64);
        return (0.0, report);
    }
    let x = io.expect("functional sumsq requires operands");
    assert_eq!(x.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        return (crate::host::sumsq(threads, x), LaunchReport::default());
    }
    let xv = MemView::new(x);
    let mut partials = vec![0.0f32; 64];
    let pv = MemViewMut::new(&mut partials);
    let report = cg.run_planned(&stream_plan("swdnn.sumsq", 1), move |cpe| {
        let mut buf = cpe.ldm.alloc_f32(CHUNK);
        let mut acc = 0.0f64;
        let mut start = cpe.idx() * CHUNK;
        while start < len {
            let n = CHUNK.min(len - start);
            cpe.dma_get(xv, start, &mut buf[..n]);
            acc += cpe.compute(2 * n as u64, || {
                buf[..n].iter().map(|v| *v as f64 * *v as f64).sum::<f64>()
            });
            start += 64 * CHUNK;
        }
        cpe.dma_put(pv, cpe.idx(), &[acc as f32]);
    });
    cg.mpe_compute(64);
    (partials.iter().map(|v| *v as f64).sum(), report)
}

#[cfg(test)]
mod sumsq_tests {
    use super::*;
    use sw26010::ExecMode;

    #[test]
    fn sumsq_matches_host() {
        let x: Vec<f32> = (0..10_000).map(|i| ((i % 13) as f32 - 6.0) * 0.5).collect();
        let want: f64 = x.iter().map(|v| *v as f64 * *v as f64).sum();
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let (got, _) = sumsq(&mut cg, x.len(), Some(&x));
        assert!((got - want).abs() < 1e-2 * want, "{got} vs {want}");
    }
}
