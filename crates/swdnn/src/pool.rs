//! Pooling on the CPE cluster (Sec. IV-D).
//!
//! Pooling is pure memory movement, so the kernels are DMA plans chosen by
//! image size, as the paper prescribes: each work item is one output row
//! of one channel; the CPE stages the K input rows it needs (continuous
//! DMA of whole rows — the largest contiguous blocks available), reduces
//! the windows in LDM, and puts one output row (plus, for max pooling, an
//! argmax row consumed by the backward pass).
//!
//! Backward items are keyed on *input* rows so the overlapping-window
//! scatter (AlexNet pools with K=3, S=2) never collides across CPEs.

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

use crate::shapes::{PoolMethod, PoolShape};

/// Static LDM descriptor of the pooling forward kernel: `K` input rows
/// plus one output row and one argmax row.
pub fn forward_plan(shape: &PoolShape) -> KernelPlan {
    let mut p = KernelPlan::new("swdnn.pool.fwd", 64);
    for r in 0..shape.k {
        p = p.buffer(format!("row{r}"), shape.in_w * 4);
    }
    p.buffer("out_row", shape.out_w() * 4)
        .buffer("am_row", shape.out_w() * 4)
}

/// Static LDM descriptor of the pooling backward kernel.
pub fn backward_plan(shape: &PoolShape) -> KernelPlan {
    KernelPlan::new("swdnn.pool.bwd", 64)
        .buffer("acc", shape.in_w * 4)
        .buffer("grow", shape.out_w() * 4)
        .buffer("arow", shape.out_w() * 4)
}

/// Functional operands of a pooling forward pass (NCHW).
pub struct PoolFwdOperands<'a> {
    pub input: &'a [f32],
    pub output: &'a mut [f32],
    /// For max pooling: per-output argmax (index into the channel image),
    /// stored as f32 (exactly representable for any image the paper uses).
    pub argmax: Option<&'a mut [f32]>,
}

/// Functional operands of a pooling backward pass (NCHW).
pub struct PoolBwdOperands<'a> {
    pub out_grad: &'a [f32],
    pub argmax: Option<&'a [f32]>,
    pub in_grad: &'a mut [f32],
}

/// Panic with the typed shape diagnostic if `shape` is degenerate —
/// e.g. a zero window (underflows `oy_lo` in the backward scatter) or a
/// window larger than the padded image.
fn guard_shape(shape: &PoolShape) {
    if let Err(e) = shape.validate() {
        panic!("swdnn.pool rejected shape: {e}");
    }
}

/// Pooling forward.
pub fn forward(
    cg: &mut CoreGroup,
    shape: &PoolShape,
    ops: Option<PoolFwdOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: forward_time(shape),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional pooling requires operands");
    assert_eq!(ops.input.len(), shape.input_len());
    assert_eq!(ops.output.len(), shape.output_len());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        if let Some(ref m) = ops.argmax {
            assert_eq!(m.len(), shape.output_len(), "argmax size");
        }
        if matches!(shape.method, PoolMethod::Max) {
            assert!(
                ops.argmax.is_some(),
                "max pooling forward needs an argmax buffer"
            );
        }
        crate::host::pool_forward(threads, shape, ops.input, ops.output, ops.argmax);
        return LaunchReport::default();
    }
    let s = *shape;
    let (ih, iw, oh, ow) = (s.in_h, s.in_w, s.out_h(), s.out_w());
    let input = MemView::new(ops.input);
    let output = MemViewMut::new(ops.output);
    let argmax = ops.argmax.map(|m| {
        assert_eq!(m.len(), s.output_len(), "argmax size");
        MemViewMut::new(m)
    });
    if matches!(s.method, PoolMethod::Max) {
        assert!(
            argmax.is_some(),
            "max pooling forward needs an argmax buffer"
        );
    }
    let items = s.batch * s.channels * oh;

    cg.run_planned(&forward_plan(&s), move |cpe| {
        let mut rows: Vec<_> = (0..s.k).map(|_| cpe.ldm.alloc_f32(iw)).collect();
        let mut out_row = cpe.ldm.alloc_f32(ow);
        let mut am_row = cpe.ldm.alloc_f32(ow);
        let mut valid = vec![false; s.k];
        let mut item = cpe.idx();
        while item < items {
            let bc = item / oh;
            let oy = item % oh;
            for (ky, row) in rows.iter_mut().enumerate() {
                let y = (oy * s.stride + ky) as isize - s.pad as isize;
                valid[ky] = y >= 0 && (y as usize) < ih;
                if valid[ky] {
                    cpe.dma_get(input, (bc * ih + y as usize) * iw, row);
                }
            }
            cpe.compute((ow * s.k * s.k) as u64, || {
                for ox in 0..ow {
                    let x0 = (ox * s.stride) as isize - s.pad as isize;
                    match s.method {
                        PoolMethod::Max => {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_i = 0usize;
                            for ky in 0..s.k {
                                if !valid[ky] {
                                    continue;
                                }
                                let y = (oy * s.stride + ky) - s.pad;
                                for kx in 0..s.k {
                                    let x = x0 + kx as isize;
                                    if x >= 0 && (x as usize) < iw {
                                        let v = rows[ky][x as usize];
                                        if v > best {
                                            best = v;
                                            best_i = y * iw + x as usize;
                                        }
                                    }
                                }
                            }
                            out_row[ox] = if best == f32::NEG_INFINITY { 0.0 } else { best };
                            am_row[ox] = best_i as f32;
                        }
                        PoolMethod::Average => {
                            let mut sum = 0.0f64;
                            let mut count = 0usize;
                            for ky in 0..s.k {
                                if !valid[ky] {
                                    continue;
                                }
                                for kx in 0..s.k {
                                    let x = x0 + kx as isize;
                                    if x >= 0 && (x as usize) < iw {
                                        sum += rows[ky][x as usize] as f64;
                                        count += 1;
                                    }
                                }
                            }
                            out_row[ox] = if count > 0 {
                                (sum / count as f64) as f32
                            } else {
                                0.0
                            };
                        }
                    }
                }
            });
            cpe.dma_put(output, (bc * oh + oy) * ow, &out_row);
            if let Some(am) = argmax {
                cpe.dma_put(am, (bc * oh + oy) * ow, &am_row);
            }
            item += 64;
        }
    })
}

/// Pooling backward.
pub fn backward(
    cg: &mut CoreGroup,
    shape: &PoolShape,
    ops: Option<PoolBwdOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: backward_time(shape),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional pooling requires operands");
    assert_eq!(ops.out_grad.len(), shape.output_len());
    assert_eq!(ops.in_grad.len(), shape.input_len());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        if matches!(shape.method, PoolMethod::Max) {
            assert!(
                ops.argmax.is_some(),
                "max pooling backward needs the argmax"
            );
        }
        crate::host::pool_backward(threads, shape, ops.out_grad, ops.argmax, ops.in_grad);
        return LaunchReport::default();
    }
    let s = *shape;
    let (ih, iw, oh, ow) = (s.in_h, s.in_w, s.out_h(), s.out_w());
    let dy = MemView::new(ops.out_grad);
    let dx = MemViewMut::new(ops.in_grad);
    let argmax = ops.argmax.map(MemView::new);
    if matches!(s.method, PoolMethod::Max) {
        assert!(argmax.is_some(), "max pooling backward needs the argmax");
    }
    let items = s.batch * s.channels * ih;

    cg.run_planned(&backward_plan(&s), move |cpe| {
        let mut acc = cpe.ldm.alloc_f32(iw);
        let mut grow = cpe.ldm.alloc_f32(ow);
        let mut arow = cpe.ldm.alloc_f32(ow);
        let mut item = cpe.idx();
        while item < items {
            let bc = item / ih;
            let y = item % ih;
            if cpe.functional() {
                acc.fill(0.0);
            }
            // Output rows whose window covers input row y:
            // oy*S - P <= y < oy*S - P + K.
            let oy_lo = (y + s.pad).saturating_sub(s.k - 1).div_ceil(s.stride);
            let oy_hi = ((y + s.pad) / s.stride).min(oh.saturating_sub(1));
            for oy in oy_lo..=oy_hi.min(oh.saturating_sub(1)) {
                if oy >= oh {
                    break;
                }
                cpe.dma_get(dy, (bc * oh + oy) * ow, &mut grow);
                match s.method {
                    PoolMethod::Max => {
                        let am = argmax.unwrap();
                        cpe.dma_get(am, (bc * oh + oy) * ow, &mut arow);
                        cpe.compute(ow as u64, || {
                            for ox in 0..ow {
                                let idx = arow[ox] as usize;
                                if idx / iw == y {
                                    acc[idx % iw] += grow[ox];
                                }
                            }
                        });
                    }
                    PoolMethod::Average => {
                        cpe.compute((ow * s.k) as u64, || {
                            for ox in 0..ow {
                                let x0 = (ox * s.stride) as isize - s.pad as isize;
                                let y0 = (oy * s.stride) as isize - s.pad as isize;
                                // Window size after clipping (matches forward).
                                let mut count = 0usize;
                                let mut covers_y = false;
                                for ky in 0..s.k {
                                    let yy = y0 + ky as isize;
                                    if yy < 0 || yy as usize >= ih {
                                        continue;
                                    }
                                    if yy as usize == y {
                                        covers_y = true;
                                    }
                                    for kx in 0..s.k {
                                        let xx = x0 + kx as isize;
                                        if xx >= 0 && (xx as usize) < iw {
                                            count += 1;
                                        }
                                    }
                                }
                                if covers_y && count > 0 {
                                    let share = grow[ox] / count as f32;
                                    for kx in 0..s.k {
                                        let xx = x0 + kx as isize;
                                        if xx >= 0 && (xx as usize) < iw {
                                            acc[xx as usize] += share;
                                        }
                                    }
                                }
                            }
                        });
                    }
                }
            }
            cpe.dma_put(dx, (bc * ih + y) * iw, &acc);
            item += 64;
        }
    })
}

/// Closed-form duration of pooling forward.
pub fn forward_time(shape: &PoolShape) -> SimTime {
    let s = *shape;
    let (oh, ow) = (s.out_h(), s.out_w());
    let items = s.batch * s.channels * oh;
    let per_item = s.k as f64 * dma::continuous_time(s.in_w * 4, 64).seconds()
        + crate::gemm_flop_time((ow * s.k * s.k) as u64).seconds()
        + dma::continuous_time(ow * 4, 64).seconds()
        + if matches!(s.method, PoolMethod::Max) {
            dma::continuous_time(ow * 4, 64).seconds()
        } else {
            0.0
        };
    SimTime::from_seconds(
        sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + items.div_ceil(64) as f64 * per_item,
    )
}

/// Closed-form duration of pooling backward.
pub fn backward_time(shape: &PoolShape) -> SimTime {
    let s = *shape;
    let (oh, ow) = (s.out_h(), s.out_w());
    let items = s.batch * s.channels * s.in_h;
    // Each input row is covered by ~K/S output rows.
    let cover = (s.k as f64 / s.stride as f64).min(oh as f64).max(1.0);
    let loads = match s.method {
        PoolMethod::Max => 2.0, // gradient + argmax rows
        PoolMethod::Average => 1.0,
    };
    let ops_per_row = match s.method {
        PoolMethod::Max => ow as u64,
        PoolMethod::Average => (ow * s.k) as u64,
    };
    let per_item = cover
        * (loads * dma::continuous_time(ow * 4, 64).seconds()
            + crate::gemm_flop_time(ops_per_row).seconds())
        + dma::continuous_time(s.in_w * 4, 64).seconds();
    SimTime::from_seconds(
        sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + items.div_ceil(64) as f64 * per_item,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x2545F4914F6CDD1D)
                    .wrapping_add(seed);
                ((x >> 40) % 97) as f32 - 48.0
            })
            .collect()
    }

    fn check(shape: PoolShape) {
        let input = pattern(shape.input_len(), 7);
        let mut want_out = vec![0.0; shape.output_len()];
        let mut want_am = vec![0usize; shape.output_len()];
        let is_max = matches!(shape.method, PoolMethod::Max);
        reference::pool_forward(
            &shape,
            &input,
            &mut want_out,
            is_max.then_some(&mut want_am[..]),
        );

        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut got_out = vec![f32::NAN; shape.output_len()];
        let mut got_am = vec![0.0f32; shape.output_len()];
        forward(
            &mut cg,
            &shape,
            Some(PoolFwdOperands {
                input: &input,
                output: &mut got_out,
                argmax: is_max.then_some(&mut got_am[..]),
            }),
        );
        assert_eq!(got_out, want_out, "forward {shape:?}");
        if is_max {
            for (g, w) in got_am.iter().zip(&want_am) {
                assert_eq!(*g as usize, *w, "argmax {shape:?}");
            }
        }

        // Backward.
        let dy = pattern(shape.output_len(), 9);
        let mut want_dx = vec![0.0; shape.input_len()];
        reference::pool_backward(&shape, &dy, is_max.then_some(&want_am[..]), &mut want_dx);
        let mut got_dx = vec![f32::NAN; shape.input_len()];
        backward(
            &mut cg,
            &shape,
            Some(PoolBwdOperands {
                out_grad: &dy,
                argmax: is_max.then_some(&got_am[..]),
                in_grad: &mut got_dx,
            }),
        );
        for (i, (g, w)) in got_dx.iter().zip(&want_dx).enumerate() {
            assert!(
                (g - w).abs() < 1e-4,
                "backward {shape:?} elem {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn max_pool_2x2_stride2() {
        check(PoolShape {
            batch: 2,
            channels: 3,
            in_h: 8,
            in_w: 8,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        });
    }

    #[test]
    fn max_pool_overlapping_3x3_stride2() {
        // AlexNet-style overlapping pooling, odd size.
        check(PoolShape {
            batch: 2,
            channels: 2,
            in_h: 13,
            in_w: 13,
            k: 3,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        });
    }

    #[test]
    fn max_pool_padded() {
        check(PoolShape {
            batch: 1,
            channels: 2,
            in_h: 7,
            in_w: 7,
            k: 3,
            stride: 2,
            pad: 1,
            method: PoolMethod::Max,
        });
    }

    #[test]
    fn avg_pool() {
        check(PoolShape {
            batch: 2,
            channels: 2,
            in_h: 8,
            in_w: 8,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Average,
        });
    }

    #[test]
    fn global_avg_pool_resnet_style() {
        check(PoolShape {
            batch: 2,
            channels: 4,
            in_h: 7,
            in_w: 7,
            k: 7,
            stride: 1,
            pad: 0,
            method: PoolMethod::Average,
        });
    }

    #[test]
    fn forward_model_matches_mesh() {
        let shape = PoolShape {
            batch: 4,
            channels: 16,
            in_h: 28,
            in_w: 28,
            k: 2,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        let input = vec![0.0f32; shape.input_len()];
        let mut out = vec![0.0f32; shape.output_len()];
        let mut am = vec![0.0f32; shape.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = forward(
            &mut cg,
            &shape,
            Some(PoolFwdOperands {
                input: &input,
                output: &mut out,
                argmax: Some(&mut am),
            }),
        );
        let model = forward_time(&shape);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.1,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    #[should_panic(expected = "swdnn.pool rejected shape")]
    fn zero_window_fails_with_typed_diagnostic() {
        // k = 0 would underflow the backward scatter's `oy_lo` arithmetic
        // (`saturating_sub(k - 1)` on usize); the typed guard fires first.
        let s = PoolShape {
            batch: 1,
            channels: 1,
            in_h: 8,
            in_w: 8,
            k: 0,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        backward(&mut cg, &s, None);
    }

    #[test]
    #[should_panic(expected = "swdnn.pool rejected shape")]
    fn oversized_window_fails_with_typed_diagnostic() {
        let s = PoolShape {
            batch: 1,
            channels: 1,
            in_h: 4,
            in_w: 4,
            k: 7,
            stride: 2,
            pad: 0,
            method: PoolMethod::Average,
        };
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        forward(&mut cg, &s, None);
    }

    #[test]
    fn pooling_is_bandwidth_bound() {
        // Sanity: pooling achieves a tiny fraction of peak flops — it's the
        // class of layer the paper calls out as bandwidth-bound on SW26010.
        let shape = PoolShape {
            batch: 256,
            channels: 96,
            in_h: 55,
            in_w: 55,
            k: 3,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        let t = forward_time(&shape).seconds();
        let bytes = (shape.input_len() + 2 * shape.output_len()) as f64 * 4.0;
        let achieved_bw = bytes / t;
        // Bounded by the DMA peak, and achieving a decent fraction of it.
        assert!(achieved_bw < sw26010::arch::DMA_PEAK_BANDWIDTH);
        assert!(achieved_bw > 0.05 * sw26010::arch::DMA_PEAK_BANDWIDTH);
    }
}

#[cfg(test)]
mod model_validation {
    use super::*;
    use sw26010::ExecMode;

    #[test]
    fn backward_model_matches_mesh() {
        let shape = PoolShape {
            batch: 4,
            channels: 16,
            in_h: 28,
            in_w: 28,
            k: 3,
            stride: 2,
            pad: 0,
            method: PoolMethod::Max,
        };
        // Produce a consistent argmax first.
        let input = vec![0.5f32; shape.input_len()];
        let mut out = vec![0.0f32; shape.output_len()];
        let mut am = vec![0.0f32; shape.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            &shape,
            Some(PoolFwdOperands {
                input: &input,
                output: &mut out,
                argmax: Some(&mut am),
            }),
        );
        let dy = vec![1.0f32; shape.output_len()];
        let mut dx = vec![0.0f32; shape.input_len()];
        let mesh = backward(
            &mut cg,
            &shape,
            Some(PoolBwdOperands {
                out_grad: &dy,
                argmax: Some(&am),
                in_grad: &mut dx,
            }),
        );
        let model = backward_time(&shape);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < 0.25,
            "mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }
}
