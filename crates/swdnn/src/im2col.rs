//! im2col / col2im on the CPE cluster — the DMA plan of Fig. 4.
//!
//! Two data-movement strategies, selected by image size (the same
//! size-adaptive approach the paper applies to its memory-bound layers):
//!
//! * **Row plan** (large images): work items are (channel, output-row)
//!   pairs distributed round-robin over the 64 CPEs. Each CPE DMA-gets the
//!   K input rows its output row touches, assembles the K*K shifted/padded
//!   lines in LDM, and DMA-puts each line into the column matrix.
//! * **Channel plan** (small images): when a whole channel image plus one
//!   column-matrix row fits in LDM, the work item is a channel. The CPE
//!   stages the channel once and emits K*K *full* column-matrix rows as
//!   large contiguous puts — far better DMA block sizes than per-row
//!   emission on a 28x28 image.
//!
//! col2im mirrors both plans in reverse; its items are keyed on *input*
//! rows/channels so scatter-add writes never collide across CPEs.
//!
//! The row-plan line granularity is why the paper's first convolutional
//! layers are im2col-bound: the DMA blocks are single image rows (~1 KB at
//! width 224), well below what saturates the memory controller (Fig. 2).

use sw26010::{dma, CoreGroup, Cpe, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

use crate::shapes::ConvShape;

/// LDM budget (bytes) a strategy may plan against; the rest is head-room
/// for the runtime's own buffers.
const LDM_BUDGET: usize = 48 * 1024;

/// True when the small-image (whole-channel) plan applies.
pub fn channel_plan_applies(shape: &ConvShape) -> bool {
    let img = shape.in_h * shape.in_w * 4;
    let line = shape.out_h() * shape.out_w() * 4;
    img + line <= LDM_BUDGET
}

/// Data-movement strategy of the lowering kernels. [`Im2colStrategy::Auto`]
/// is the size-adaptive default; the forced variants expose the choice to
/// the `swtune` searcher as one more scheme axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Im2colStrategy {
    /// Channel plan when the whole image fits the LDM budget, row plan
    /// otherwise — the shipped heuristic.
    Auto,
    /// Force the whole-channel plan (infeasible on large images).
    Channel,
    /// Force the sliding-row plan (always feasible).
    Row,
}

impl Im2colStrategy {
    /// Whether this strategy runs the channel plan on `shape`.
    pub fn channel(self, shape: &ConvShape) -> bool {
        match self {
            Im2colStrategy::Auto => channel_plan_applies(shape),
            Im2colStrategy::Channel => true,
            Im2colStrategy::Row => false,
        }
    }

    /// Whether this strategy's working set fits LDM on `shape` — the
    /// tuner's candidate filter (a forced channel plan can overflow).
    pub fn applies(self, shape: &ConvShape) -> bool {
        im2col_plan_with(shape, self).validate().is_ok()
            && col2im_plan_with(shape, self).validate().is_ok()
    }
}

/// Static LDM descriptor of the im2col kernel that `shape` selects:
/// whole image + one output line for the channel plan, `K` input rows +
/// one output row for the sliding-row plan.
pub fn im2col_plan(shape: &ConvShape) -> KernelPlan {
    im2col_plan_with(shape, Im2colStrategy::Auto)
}

/// [`im2col_plan`] under an explicit strategy.
pub fn im2col_plan_with(shape: &ConvShape, strategy: Im2colStrategy) -> KernelPlan {
    if strategy.channel(shape) {
        KernelPlan::new("swdnn.im2col.channel", 64)
            .buffer("img", shape.in_h * shape.in_w * 4)
            .buffer("line", shape.out_h() * shape.out_w() * 4)
    } else {
        let mut p = KernelPlan::new("swdnn.im2col.row", 64);
        for r in 0..shape.k {
            p = p.buffer(format!("row{r}"), shape.in_w * 4);
        }
        p.buffer("line", shape.out_w() * 4)
    }
}

/// Static LDM descriptor of the col2im kernel that `shape` selects.
pub fn col2im_plan(shape: &ConvShape) -> KernelPlan {
    col2im_plan_with(shape, Im2colStrategy::Auto)
}

/// [`col2im_plan`] under an explicit strategy.
pub fn col2im_plan_with(shape: &ConvShape, strategy: Im2colStrategy) -> KernelPlan {
    if strategy.channel(shape) {
        KernelPlan::new("swdnn.col2im.channel", 64)
            .buffer("acc", shape.in_h * shape.in_w * 4)
            .buffer("line", shape.out_h() * shape.out_w() * 4)
    } else {
        KernelPlan::new("swdnn.col2im.row", 64)
            .buffer("acc", shape.in_w * 4)
            .buffer("line", shape.out_w() * 4)
    }
}

/// Panic with the typed shape diagnostic if `shape` is degenerate.
fn guard_shape(shape: &ConvShape) {
    if let Err(e) = shape.validate() {
        panic!("swdnn.im2col rejected shape: {e}");
    }
}

/// Operands for a functional im2col call (one image).
pub struct Im2colOperands<'a> {
    /// Input image, `(N_i, R_i, C_i)` row-major.
    pub image: &'a [f32],
    /// Output column matrix, `(K*K*N_i, R_o*C_o)` row-major.
    pub cols: &'a mut [f32],
}

/// Mesh im2col for one image (size-adaptive strategy).
pub fn im2col(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<Im2colOperands<'_>>,
) -> LaunchReport {
    im2col_with_strategy(cg, shape, Im2colStrategy::Auto, ops)
}

/// Mesh im2col for one image under an explicit strategy.
pub fn im2col_with_strategy(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    strategy: Im2colStrategy,
    ops: Option<Im2colOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model_im2col_with(shape, strategy),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional im2col requires operands");
    assert_eq!(ops.image.len(), shape.in_c * shape.in_h * shape.in_w);
    assert_eq!(ops.cols.len(), shape.col_rows() * shape.col_cols());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::im2col(threads, shape, ops.image, ops.cols);
        return LaunchReport::default();
    }
    let image = MemView::new(ops.image);
    let cols = MemViewMut::new(ops.cols);
    let kplan = im2col_plan_with(shape, strategy);
    if strategy.channel(shape) {
        let shape = *shape;
        cg.run_planned(&kplan, move |cpe| {
            im2col_channel_plan(cpe, &shape, image, cols)
        })
    } else {
        let shape = *shape;
        cg.run_planned(&kplan, move |cpe| im2col_row_plan(cpe, &shape, image, cols))
    }
}

fn im2col_row_plan(cpe: &mut Cpe, shape: &ConvShape, image: MemView<'_>, cols: MemViewMut<'_>) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (kk, s, p) = (shape.k, shape.stride, shape.pad);
    let items = shape.in_c * oh;
    let mut rows: Vec<_> = (0..kk).map(|_| cpe.ldm.alloc_f32(iw)).collect();
    let mut line = cpe.ldm.alloc_f32(ow);
    let mut valid = vec![false; kk];
    let mut item = cpe.idx();
    while item < items {
        let c = item / oh;
        let oy = item % oh;
        for (ky, row) in rows.iter_mut().enumerate() {
            let y = (oy * s + ky) as isize - p as isize;
            valid[ky] = y >= 0 && (y as usize) < ih;
            if valid[ky] {
                cpe.dma_get(image, (c * ih + y as usize) * iw, row);
            }
        }
        for ky in 0..kk {
            for kx in 0..kk {
                cpe.compute(ow as u64, || {
                    for ox in 0..ow {
                        let x = (ox * s + kx) as isize - p as isize;
                        line[ox] = if valid[ky] && x >= 0 && (x as usize) < iw {
                            rows[ky][x as usize]
                        } else {
                            0.0
                        };
                    }
                });
                let col_row = (c * kk + ky) * kk + kx;
                cpe.dma_put(cols, col_row * (oh * ow) + oy * ow, &line);
            }
        }
        item += 64;
    }
}

fn im2col_channel_plan(cpe: &mut Cpe, shape: &ConvShape, image: MemView<'_>, cols: MemViewMut<'_>) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (kk, s, p) = (shape.k, shape.stride, shape.pad);
    let mut img = cpe.ldm.alloc_f32(ih * iw);
    let mut line = cpe.ldm.alloc_f32(oh * ow);
    let mut c = cpe.idx();
    while c < shape.in_c {
        cpe.dma_get(image, c * ih * iw, &mut img);
        for ky in 0..kk {
            for kx in 0..kk {
                cpe.compute((oh * ow) as u64, || {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let y = (oy * s + ky) as isize - p as isize;
                            let x = (ox * s + kx) as isize - p as isize;
                            line[oy * ow + ox] =
                                if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                    img[y as usize * iw + x as usize]
                                } else {
                                    0.0
                                };
                        }
                    }
                });
                let col_row = (c * kk + ky) * kk + kx;
                cpe.dma_put(cols, col_row * (oh * ow), &line);
            }
        }
        c += 64;
    }
}

/// Operands for a functional col2im call (one image).
pub struct Col2imOperands<'a> {
    /// Column-matrix gradient, `(K*K*N_i, R_o*C_o)` row-major.
    pub cols: &'a [f32],
    /// Output: image-gradient target, `(N_i, R_i, C_i)`; overwritten.
    pub image: &'a mut [f32],
}

/// Mesh col2im for one image (size-adaptive strategy).
pub fn col2im(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    ops: Option<Col2imOperands<'_>>,
) -> LaunchReport {
    col2im_with_strategy(cg, shape, Im2colStrategy::Auto, ops)
}

/// Mesh col2im for one image under an explicit strategy.
pub fn col2im_with_strategy(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    strategy: Im2colStrategy,
    ops: Option<Col2imOperands<'_>>,
) -> LaunchReport {
    guard_shape(shape);
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: time_model_col2im_with(shape, strategy),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional col2im requires operands");
    assert_eq!(ops.image.len(), shape.in_c * shape.in_h * shape.in_w);
    assert_eq!(ops.cols.len(), shape.col_rows() * shape.col_cols());
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::col2im(threads, shape, ops.cols, ops.image);
        return LaunchReport::default();
    }
    let cols = MemView::new(ops.cols);
    let image = MemViewMut::new(ops.image);
    let kplan = col2im_plan_with(shape, strategy);
    if strategy.channel(shape) {
        let shape = *shape;
        cg.run_planned(&kplan, move |cpe| {
            col2im_channel_plan(cpe, &shape, cols, image)
        })
    } else {
        let shape = *shape;
        cg.run_planned(&kplan, move |cpe| col2im_row_plan(cpe, &shape, cols, image))
    }
}

fn col2im_row_plan(cpe: &mut Cpe, shape: &ConvShape, cols: MemView<'_>, image: MemViewMut<'_>) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (kk, s, p) = (shape.k, shape.stride, shape.pad);
    let items = shape.in_c * ih;
    let mut acc = cpe.ldm.alloc_f32(iw);
    let mut line = cpe.ldm.alloc_f32(ow);
    let mut item = cpe.idx();
    while item < items {
        let c = item / ih;
        let y = item % ih;
        if cpe.functional() {
            acc.fill(0.0);
        }
        for ky in 0..kk {
            let oy_num = y as isize + p as isize - ky as isize;
            if oy_num < 0 || !(oy_num as usize).is_multiple_of(s) {
                continue;
            }
            let oy = oy_num as usize / s;
            if oy >= oh {
                continue;
            }
            for kx in 0..kk {
                let col_row = (c * kk + ky) * kk + kx;
                cpe.dma_get(cols, col_row * (oh * ow) + oy * ow, &mut line);
                cpe.compute(ow as u64, || {
                    for ox in 0..ow {
                        let x = (ox * s + kx) as isize - p as isize;
                        if x >= 0 && (x as usize) < iw {
                            acc[x as usize] += line[ox];
                        }
                    }
                });
            }
        }
        cpe.dma_put(image, (c * ih + y) * iw, &acc);
        item += 64;
    }
}

fn col2im_channel_plan(cpe: &mut Cpe, shape: &ConvShape, cols: MemView<'_>, image: MemViewMut<'_>) {
    let (ih, iw) = (shape.in_h, shape.in_w);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (kk, s, p) = (shape.k, shape.stride, shape.pad);
    let mut acc = cpe.ldm.alloc_f32(ih * iw);
    let mut line = cpe.ldm.alloc_f32(oh * ow);
    let mut c = cpe.idx();
    while c < shape.in_c {
        if cpe.functional() {
            acc.fill(0.0);
        }
        for ky in 0..kk {
            for kx in 0..kk {
                let col_row = (c * kk + ky) * kk + kx;
                cpe.dma_get(cols, col_row * (oh * ow), &mut line);
                cpe.compute((oh * ow) as u64, || {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let y = (oy * s + ky) as isize - p as isize;
                            let x = (ox * s + kx) as isize - p as isize;
                            if y >= 0 && x >= 0 && (y as usize) < ih && (x as usize) < iw {
                                acc[y as usize * iw + x as usize] += line[oy * ow + ox];
                            }
                        }
                    }
                });
            }
        }
        cpe.dma_put(image, c * ih * iw, &acc);
        c += 64;
    }
}

/// Closed-form duration of [`im2col`].
pub fn time_model_im2col(shape: &ConvShape) -> SimTime {
    time_model_im2col_with(shape, Im2colStrategy::Auto)
}

/// [`time_model_im2col`] under an explicit strategy.
pub fn time_model_im2col_with(shape: &ConvShape, strategy: Im2colStrategy) -> SimTime {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let kk = shape.k;
    let per_cpe_time = if strategy.channel(shape) {
        let per_channel = dma::continuous_time(shape.in_h * shape.in_w * 4, 64).seconds()
            + (kk * kk) as f64
                * (crate::gemm_flop_time((oh * ow) as u64).seconds()
                    + dma::continuous_time(oh * ow * 4, 64).seconds());
        shape.in_c.div_ceil(64) as f64 * per_channel
    } else {
        let per_item = kk as f64 * dma::continuous_time(shape.in_w * 4, 64).seconds()
            + (kk * kk) as f64
                * (crate::gemm_flop_time(ow as u64).seconds()
                    + dma::continuous_time(ow * 4, 64).seconds());
        (shape.in_c * oh).div_ceil(64) as f64 * per_item
    };
    SimTime::from_seconds(sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + per_cpe_time)
}

/// Closed-form duration of [`col2im`].
pub fn time_model_col2im(shape: &ConvShape) -> SimTime {
    time_model_col2im_with(shape, Im2colStrategy::Auto)
}

/// [`time_model_col2im`] under an explicit strategy.
pub fn time_model_col2im_with(shape: &ConvShape, strategy: Im2colStrategy) -> SimTime {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let kk = shape.k;
    let per_cpe_time = if strategy.channel(shape) {
        let per_channel = (kk * kk) as f64
            * (dma::continuous_time(oh * ow * 4, 64).seconds()
                + crate::gemm_flop_time((oh * ow) as u64).seconds())
            + dma::continuous_time(shape.in_h * shape.in_w * 4, 64).seconds();
        shape.in_c.div_ceil(64) as f64 * per_channel
    } else {
        // On average K/S of the K vertical taps hit a valid output row.
        let k_eff = (kk as f64 / shape.stride as f64).min(oh as f64);
        let per_item = k_eff
            * kk as f64
            * (dma::continuous_time(ow * 4, 64).seconds()
                + crate::gemm_flop_time(ow as u64).seconds())
            + dma::continuous_time(shape.in_w * 4, 64).seconds();
        (shape.in_c * shape.in_h).div_ceil(64) as f64 * per_item
    };
    SimTime::from_seconds(sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS + per_cpe_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sw26010::ExecMode;

    fn shape(batch: usize, ic: usize, h: usize, k: usize, s: usize, p: usize) -> ConvShape {
        ConvShape {
            batch,
            in_c: ic,
            in_h: h,
            in_w: h,
            out_c: 4,
            k,
            stride: s,
            pad: p,
        }
    }

    fn check_im2col(shape: ConvShape) {
        let image: Vec<f32> = (0..shape.in_c * shape.in_h * shape.in_w)
            .map(|i| ((i * 13) % 31) as f32 - 15.0)
            .collect();
        let mut want = vec![0.0; shape.col_rows() * shape.col_cols()];
        reference::im2col(&shape, &image, &mut want);
        let mut got = vec![f32::NAN; want.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        im2col(
            &mut cg,
            &shape,
            Some(Im2colOperands {
                image: &image,
                cols: &mut got,
            }),
        );
        assert_eq!(got, want, "{shape:?}");
    }

    fn check_col2im(shape: ConvShape) {
        let cols: Vec<f32> = (0..shape.col_rows() * shape.col_cols())
            .map(|i| ((i * 7) % 23) as f32 * 0.5 - 5.0)
            .collect();
        let mut want = vec![0.0; shape.in_c * shape.in_h * shape.in_w];
        reference::col2im(&shape, &cols, &mut want);
        let mut got = vec![f32::NAN; want.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        col2im(
            &mut cg,
            &shape,
            Some(Col2imOperands {
                cols: &cols,
                image: &mut got,
            }),
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-4, "{shape:?} elem {i}: {g} vs {w}");
        }
    }

    #[test]
    fn im2col_matches_reference_padded() {
        check_im2col(shape(1, 3, 8, 3, 1, 1));
    }

    #[test]
    fn im2col_matches_reference_strided() {
        check_im2col(shape(1, 2, 11, 3, 2, 0));
    }

    #[test]
    fn im2col_matches_reference_big_kernel() {
        check_im2col(shape(1, 3, 15, 5, 3, 2));
    }

    #[test]
    fn im2col_row_plan_matches_reference() {
        // 120x120 image: too large for the channel plan.
        let s = shape(1, 2, 120, 3, 1, 1);
        assert!(!channel_plan_applies(&s));
        check_im2col(s);
    }

    #[test]
    fn col2im_matches_reference_padded() {
        check_col2im(shape(1, 3, 8, 3, 1, 1));
    }

    #[test]
    fn col2im_matches_reference_strided() {
        check_col2im(shape(1, 2, 11, 3, 2, 0));
    }

    #[test]
    fn col2im_matches_reference_big_kernel() {
        check_col2im(shape(1, 3, 15, 5, 3, 2));
    }

    #[test]
    fn col2im_row_plan_matches_reference() {
        let s = shape(1, 2, 120, 3, 1, 1);
        assert!(!channel_plan_applies(&s));
        check_col2im(s);
    }

    #[test]
    fn plan_selection_by_image_size() {
        assert!(channel_plan_applies(&shape(1, 16, 28, 3, 1, 1)));
        assert!(channel_plan_applies(&shape(1, 16, 56, 3, 1, 1)));
        assert!(!channel_plan_applies(&shape(1, 3, 224, 3, 1, 1)));
    }

    fn model_check(s: ConvShape, tol: f64) {
        let image = vec![0.0f32; s.in_c * s.in_h * s.in_w];
        let mut cols = vec![0.0f32; s.col_rows() * s.col_cols()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mesh = im2col(
            &mut cg,
            &s,
            Some(Im2colOperands {
                image: &image,
                cols: &mut cols,
            }),
        );
        let model = time_model_im2col(&s);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < tol,
            "im2col {s:?}: mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );

        let mut image2 = vec![0.0f32; image.len()];
        let mesh = col2im(
            &mut cg,
            &s,
            Some(Col2imOperands {
                cols: &cols,
                image: &mut image2,
            }),
        );
        let model = time_model_col2im(&s);
        let rel = (mesh.elapsed.seconds() - model.seconds()).abs() / mesh.elapsed.seconds();
        assert!(
            rel < tol,
            "col2im {s:?}: mesh {} vs model {}",
            mesh.elapsed.micros(),
            model.micros()
        );
    }

    #[test]
    fn models_match_mesh_channel_plan() {
        model_check(shape(1, 64, 32, 3, 1, 1), 0.1);
    }

    #[test]
    fn models_match_mesh_row_plan() {
        model_check(shape(1, 4, 130, 3, 1, 1), 0.15);
    }

    #[test]
    fn forced_row_strategy_matches_auto_bitwise() {
        // Small image: Auto picks the channel plan. Forcing the row plan
        // must produce the identical column matrix (pure data movement).
        let s = shape(1, 3, 8, 3, 1, 1);
        assert!(channel_plan_applies(&s));
        let image: Vec<f32> = (0..s.in_c * s.in_h * s.in_w)
            .map(|i| ((i * 13) % 31) as f32 - 15.0)
            .collect();
        let run = |strategy| {
            let mut cols = vec![f32::NAN; s.col_rows() * s.col_cols()];
            let mut cg = CoreGroup::new(ExecMode::Functional);
            im2col_with_strategy(
                &mut cg,
                &s,
                strategy,
                Some(Im2colOperands {
                    image: &image,
                    cols: &mut cols,
                }),
            );
            cols
        };
        assert_eq!(run(Im2colStrategy::Row), run(Im2colStrategy::Auto));
    }

    #[test]
    fn forced_channel_plan_is_infeasible_on_large_images() {
        let big = shape(1, 3, 224, 3, 1, 1);
        assert!(!Im2colStrategy::Channel.applies(&big));
        assert!(Im2colStrategy::Row.applies(&big));
        assert!(Im2colStrategy::Auto.applies(&big));
        let small = shape(1, 16, 28, 3, 1, 1);
        assert!(Im2colStrategy::Channel.applies(&small));
    }

    #[test]
    #[should_panic(expected = "swdnn.im2col rejected shape")]
    fn degenerate_shape_fails_with_typed_diagnostic() {
        let mut s = shape(1, 3, 8, 3, 1, 1);
        s.in_w = 0;
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        im2col(&mut cg, &s, None);
    }

    #[test]
    #[should_panic(expected = "swdnn.im2col rejected shape")]
    fn oversized_window_fails_before_underflow() {
        // k = 9 on an unpadded 4x4 image: out extents would underflow in
        // the plan arithmetic; the typed guard must fire first.
        let s = shape(1, 3, 4, 9, 1, 0);
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        col2im(&mut cg, &s, None);
    }

    #[test]
    fn channel_plan_improves_small_image_lowering() {
        // The whole point of the adaptive strategy: the channel plan's big
        // contiguous puts beat the per-row plan on a 28x28x256 layer.
        let s = shape(1, 256, 28, 3, 1, 1);
        assert!(channel_plan_applies(&s));
        let fast = time_model_im2col(&s).seconds();
        // Force the row-plan cost formula for comparison.
        let kk = s.k as f64;
        let ow = s.out_w();
        let per_item = kk * dma::continuous_time(s.in_w * 4, 64).seconds()
            + kk * kk
                * (crate::gemm_flop_time(ow as u64).seconds()
                    + dma::continuous_time(ow * 4, 64).seconds());
        let slow = (s.in_c * s.out_h()).div_ceil(64) as f64 * per_item;
        assert!(fast < 0.5 * slow, "fast={fast} slow={slow}");
    }
}
