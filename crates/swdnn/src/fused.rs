//! Fused convolution + batch-norm (inference) + ReLU — the serving hot
//! path produced by `swserve`'s graph optimizer.
//!
//! The unfused inference sequence runs four kernels over the conv output
//! tensor: bias add, BN normalisation with running statistics, and ReLU,
//! each a full DMA round trip through main memory plus an athread launch.
//! The fused epilogue applies all three transforms while each output
//! chunk is staged in LDM once: one launch, one round trip.
//!
//! **Bit-identity contract:** the fused path computes *exactly* the same
//! arithmetic as `conv_explicit::forward` → `elementwise::bias_forward` →
//! `bn::forward_inference` → `elementwise::relu_forward`, in the same
//! order with the same f32/f64 widening points, so outputs are
//! bit-for-bit identical to the unfused three-layer sequence (pinned by
//! `tests/fused_agreement.rs`). Only the simulated time differs: the
//! epilogue saves two full tensor round trips and two kernel launches.

use sw26010::{arch, dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

use crate::conv_explicit;
use crate::elementwise::{row_stream_time, CHUNK};
use crate::shapes::ConvShape;

/// Functional operands of the fused forward pass, all NCHW row-major:
/// input `(B, N_i, R_i, C_i)`, weights `(N_o, N_i, K, K)`, per-channel
/// `bias`/`gamma`/`beta`/`mean`/`var` of length `N_o`, output
/// `(B, N_o, R_o, C_o)`.
pub struct ConvBnReluOperands<'a> {
    pub input: &'a [f32],
    pub weights: &'a [f32],
    pub bias: Option<&'a [f32]>,
    pub gamma: &'a [f32],
    pub beta: &'a [f32],
    pub mean: &'a [f32],
    pub var: &'a [f32],
    pub output: &'a mut [f32],
}

/// Launch plan of the fused epilogue: the five per-channel vectors plus
/// one streaming row chunk per CPE.
pub fn epilogue_plan(channels: usize, spatial: usize) -> KernelPlan {
    let chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.fused_epilogue", 64)
        .buffer("bias", channels * 4)
        .buffer("gamma", channels * 4)
        .buffer("beta", channels * 4)
        .buffer("mean", channels * 4)
        .buffer("var", channels * 4)
        .buffer("row", chunk * 4)
}

/// Analytic time of the fused epilogue: one launch, the channel-vector
/// stages, and a single read+write streaming pass at 5 flops/element
/// (bias add, the three BN ops, the ReLU max).
pub fn epilogue_time(batch: usize, channels: usize, spatial: usize) -> SimTime {
    SimTime::from_seconds(
        arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
            + 5.0 * dma::continuous_time(channels * 4, 64).seconds()
            + row_stream_time(batch * channels, spatial, CHUNK, 2, 5),
    )
}

/// Analytic time of the whole fused forward: the explicit-plan conv plus
/// the epilogue. Strictly below the unfused sum, which pays three
/// separate round trips (bias, BN, ReLU) over the same tensor.
pub fn forward_time(shape: &ConvShape) -> SimTime {
    conv_explicit::forward_time(shape)
        + epilogue_time(shape.batch, shape.out_c, shape.out_h() * shape.out_w())
}

/// Fused conv+BN+ReLU forward (explicit conv plan, NCHW).
pub fn forward(
    cg: &mut CoreGroup,
    shape: &ConvShape,
    eps: f32,
    ops: Option<ConvBnReluOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let conv = conv_explicit::forward(cg, shape, None);
        let epi = LaunchReport {
            elapsed: epilogue_time(shape.batch, shape.out_c, shape.out_h() * shape.out_w()),
            stats: Default::default(),
        };
        cg.charge(epi.elapsed);
        let mut total = conv;
        total.merge(&epi);
        return total;
    }
    let ops = ops.expect("functional fused conv requires operands");
    let channels = shape.out_c;
    let spatial = shape.out_h() * shape.out_w();
    assert_eq!(ops.gamma.len(), channels);
    assert_eq!(ops.beta.len(), channels);
    assert_eq!(ops.mean.len(), channels);
    assert_eq!(ops.var.len(), channels);
    if let Some(bias) = ops.bias {
        assert_eq!(bias.len(), channels);
    }
    let mut total = conv_explicit::forward(
        cg,
        shape,
        Some(crate::conv_explicit::ConvFwdOperands {
            input: ops.input,
            weights: ops.weights,
            output: ops.output,
        }),
    );
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::fused_epilogue(
            threads,
            shape.batch,
            channels,
            spatial,
            eps,
            ops.bias,
            ops.gamma,
            ops.beta,
            ops.mean,
            ops.var,
            ops.output,
        );
        return total;
    }
    let bias = ops.bias.map(MemView::new);
    let g = MemView::new(ops.gamma);
    let bt = MemView::new(ops.beta);
    let m = MemView::new(ops.mean);
    let v = MemView::new(ops.var);
    let y = MemViewMut::new(ops.output);
    let rows = shape.batch * channels;
    let epi = cg.run_planned(&epilogue_plan(channels, spatial), move |cpe| {
        let bias_buf = bias.map(|bv| {
            let mut buf = cpe.ldm.alloc_f32(channels);
            cpe.dma_get(bv, 0, &mut buf);
            buf
        });
        let mut gbuf = cpe.ldm.alloc_f32(channels);
        let mut bbuf = cpe.ldm.alloc_f32(channels);
        let mut mbuf = cpe.ldm.alloc_f32(channels);
        let mut vbuf = cpe.ldm.alloc_f32(channels);
        cpe.dma_get(g, 0, &mut gbuf);
        cpe.dma_get(bt, 0, &mut bbuf);
        cpe.dma_get(m, 0, &mut mbuf);
        cpe.dma_get(v, 0, &mut vbuf);
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let mut row = cpe.idx();
        while row < rows {
            let c = row % channels;
            let istd = 1.0 / (vbuf[c] as f64 + eps as f64).sqrt();
            let mut off = 0;
            while off < spatial {
                let n = row_chunk.min(spatial - off);
                cpe.dma_get(y.as_view(), row * spatial + off, &mut buf[..n]);
                cpe.compute(5 * n as u64, || {
                    for val in buf[..n].iter_mut() {
                        // Same rounding points as the unfused sequence:
                        // f32 bias add, f64 BN transform rounded to f32,
                        // then the ReLU max on the rounded value.
                        let mut t = *val;
                        if let Some(bb) = &bias_buf {
                            t += bb[c];
                        }
                        let u = (gbuf[c] as f64 * (t as f64 - mbuf[c] as f64) * istd
                            + bbuf[c] as f64) as f32;
                        *val = u.max(0.0);
                    }
                });
                cpe.dma_put(y, row * spatial + off, &buf[..n]);
                off += n;
            }
            row += 64;
        }
    });
    total.merge(&epi);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elementwise::stream_time;
    use crate::{bn, elementwise as ew};
    use sw26010::ExecMode;

    fn small_shape() -> ConvShape {
        ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 6,
            in_w: 6,
            out_c: 4,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    fn values(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed);
                ((x >> 33) % 2000) as f32 / 500.0 - 2.0
            })
            .collect()
    }

    /// The epilogue's raison d'être: fused time is strictly below the
    /// unfused bias + BN-inference + ReLU sum for every relevant shape.
    #[test]
    fn fused_time_beats_unfused_sum() {
        for shape in [
            small_shape(),
            ConvShape {
                batch: 4,
                in_c: 64,
                in_h: 28,
                in_w: 28,
                out_c: 128,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ] {
            let spatial = shape.out_h() * shape.out_w();
            let len = shape.batch * shape.out_c * spatial;
            let mut cg = CoreGroup::new(ExecMode::TimingOnly);
            let unfused = conv_explicit::forward(&mut cg, &shape, None).elapsed
                + ew::bias_forward(&mut cg, shape.batch, shape.out_c, spatial, None).elapsed
                + bn::forward_inference(&mut cg, shape.batch, shape.out_c, spatial, 1e-5, None)
                    .elapsed
                + ew::relu_forward(&mut cg, len, None).elapsed;
            let fused = forward_time(&shape);
            assert!(
                fused.seconds() < unfused.seconds(),
                "fused {} !< unfused {} for {shape:?}",
                fused.seconds(),
                unfused.seconds()
            );
        }
    }

    #[test]
    fn timing_mode_charges_the_model() {
        let shape = small_shape();
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let r = forward(&mut cg, &shape, 1e-5, None);
        assert_eq!(r.elapsed, forward_time(&shape));
        assert_eq!(cg.elapsed(), forward_time(&shape));
    }

    #[test]
    fn epilogue_time_is_one_round_trip() {
        // Structure check: one fused pass beats the three separate
        // epilogue kernels (bias, BN inference, ReLU) it replaces.
        let (b, c, s) = (4, 32, 28 * 28);
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let separate = ew::bias_forward(&mut cg, b, c, s, None).elapsed.seconds()
            + bn::forward_inference(&mut cg, b, c, s, 1e-5, None)
                .elapsed
                .seconds()
            + stream_time(b * c * s, 1, 1, 1).seconds();
        assert!(epilogue_time(b, c, s).seconds() < separate);
    }

    /// Functional mesh agreement against the unfused kernel sequence,
    /// with and without the conv bias.
    #[test]
    fn mesh_matches_unfused_sequence_bitwise() {
        let shape = small_shape();
        let spatial = shape.out_h() * shape.out_w();
        let len = shape.batch * shape.out_c * spatial;
        let input = values(shape.input_len(), 1);
        let weights = values(shape.weight_len(), 2);
        let bias = values(shape.out_c, 3);
        let gamma = values(shape.out_c, 4);
        let beta = values(shape.out_c, 5);
        let mean = values(shape.out_c, 6);
        let var: Vec<f32> = values(shape.out_c, 7).iter().map(|v| v * v + 0.1).collect();
        let eps = 1e-5;
        for with_bias in [false, true] {
            // Unfused reference: conv -> (bias) -> bn inference -> relu.
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut conv_out = vec![0.0f32; len];
            conv_explicit::forward(
                &mut cg,
                &shape,
                Some(crate::conv_explicit::ConvFwdOperands {
                    input: &input,
                    weights: &weights,
                    output: &mut conv_out,
                }),
            );
            if with_bias {
                ew::bias_forward(
                    &mut cg,
                    shape.batch,
                    shape.out_c,
                    spatial,
                    Some((&bias, &mut conv_out)),
                );
            }
            let mut bn_out = vec![0.0f32; len];
            bn::forward_inference(
                &mut cg,
                shape.batch,
                shape.out_c,
                spatial,
                eps,
                Some((&conv_out, &gamma, &beta, &mean, &var, &mut bn_out)),
            );
            let mut want = vec![0.0f32; len];
            ew::relu_forward(&mut cg, len, Some((&bn_out, &mut want)));

            let mut cg2 = CoreGroup::new(ExecMode::Functional);
            let mut got = vec![0.0f32; len];
            forward(
                &mut cg2,
                &shape,
                eps,
                Some(ConvBnReluOperands {
                    input: &input,
                    weights: &weights,
                    bias: with_bias.then_some(bias.as_slice()),
                    gamma: &gamma,
                    beta: &beta,
                    mean: &mean,
                    var: &var,
                    output: &mut got,
                }),
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "bias={with_bias} elem {i}: fused {g} vs unfused {w}"
                );
            }
        }
    }
}
