//! Batch normalisation on the CPE cluster.
//!
//! The paper's AlexNet refinement replaces LRN with BN, so every Fig. 8
//! "conv/bn" bar goes through these kernels. The reduction phase assigns
//! whole channels to CPEs (no cross-CPE accumulation); the normalise
//! phase streams rows like the element-wise kernels.

use sw26010::{dma, CoreGroup, KernelPlan, LaunchReport, MemView, MemViewMut, SimTime};

use crate::elementwise::CHUNK;

/// Static LDM descriptor of the BN forward statistics pass.
pub fn forward_stats_plan(spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bn.fwd_stats", 64).buffer("buf", row_chunk * 4)
}

/// Static LDM descriptor of the BN forward normalisation pass (four
/// per-channel vectors plus one row chunk).
pub fn forward_normalize_plan(channels: usize, spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bn.fwd_norm", 64)
        .buffer("gamma", channels * 4)
        .buffer("beta", channels * 4)
        .buffer("mean", channels * 4)
        .buffer("istd", channels * 4)
        .buffer("buf", row_chunk * 4)
}

/// Static LDM descriptor of the BN backward reduction pass.
pub fn backward_reduce_plan(spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bn.bwd_reduce", 64)
        .buffer("xbuf", row_chunk * 4)
        .buffer("gbuf", row_chunk * 4)
}

/// Static LDM descriptor of the BN backward normalisation pass (five
/// per-channel vectors plus two half row chunks).
pub fn backward_normalize_plan(channels: usize, spatial: usize) -> KernelPlan {
    let row_chunk = (CHUNK / 2).min(spatial.max(1));
    KernelPlan::new("swdnn.bn.bwd_norm", 64)
        .buffer("gamma", channels * 4)
        .buffer("mean", channels * 4)
        .buffer("istd", channels * 4)
        .buffer("dgamma", channels * 4)
        .buffer("dbeta", channels * 4)
        .buffer("xbuf", row_chunk * 4)
        .buffer("ybuf", row_chunk * 4)
}

/// Static LDM descriptor of the BN inference pass.
pub fn inference_plan(channels: usize, spatial: usize) -> KernelPlan {
    let row_chunk = CHUNK.min(spatial.max(1));
    KernelPlan::new("swdnn.bn.inference", 64)
        .buffer("gamma", channels * 4)
        .buffer("beta", channels * 4)
        .buffer("mean", channels * 4)
        .buffer("var", channels * 4)
        .buffer("buf", row_chunk * 4)
}

/// Functional operands of a BN forward pass over an NCHW tensor.
pub struct BnFwdOperands<'a> {
    pub input: &'a [f32],
    pub gamma: &'a [f32],
    pub beta: &'a [f32],
    pub output: &'a mut [f32],
    /// Saved per-channel batch mean (consumed by backward).
    pub save_mean: &'a mut [f32],
    /// Saved per-channel inverse standard deviation.
    pub save_istd: &'a mut [f32],
}

/// Functional operands of a BN backward pass.
pub struct BnBwdOperands<'a> {
    pub input: &'a [f32],
    pub gamma: &'a [f32],
    pub out_grad: &'a [f32],
    pub save_mean: &'a [f32],
    pub save_istd: &'a [f32],
    pub in_grad: &'a mut [f32],
    pub gamma_grad: &'a mut [f32],
    pub beta_grad: &'a mut [f32],
}

/// BN forward (training statistics).
pub fn forward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    ops: Option<BnFwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: forward_time(batch, channels, spatial),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional BN requires operands");
    let len = batch * channels * spatial;
    assert_eq!(ops.input.len(), len);
    assert_eq!(ops.output.len(), len);
    assert_eq!(ops.gamma.len(), channels);
    assert_eq!(ops.beta.len(), channels);
    assert_eq!(ops.save_mean.len(), channels);
    assert_eq!(ops.save_istd.len(), channels);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bn_forward(
            threads,
            batch,
            channels,
            spatial,
            eps,
            ops.input,
            ops.gamma,
            ops.beta,
            ops.output,
            ops.save_mean,
            ops.save_istd,
        );
        return LaunchReport::default();
    }
    let x = MemView::new(ops.input);
    let gamma = MemView::new(ops.gamma);
    let beta = MemView::new(ops.beta);
    let y = MemViewMut::new(ops.output);
    let mean_out = MemViewMut::new(ops.save_mean);
    let istd_out = MemViewMut::new(ops.save_istd);
    let n_per_c = (batch * spatial) as f64;

    // Phase A: per-channel statistics (channel c owned by CPE c % 64).
    let mut total = cg.run_planned(&forward_stats_plan(spatial), |cpe| {
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let mut c = cpe.idx();
        while c < channels {
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for b in 0..batch {
                let mut off = 0;
                while off < spatial {
                    let n = row_chunk.min(spatial - off);
                    cpe.dma_get(x, (b * channels + c) * spatial + off, &mut buf[..n]);
                    let (s, q) = cpe.compute(2 * n as u64, || {
                        let mut s = 0.0f64;
                        let mut q = 0.0f64;
                        for v in &buf[..n] {
                            s += *v as f64;
                            q += (*v as f64) * (*v as f64);
                        }
                        (s, q)
                    });
                    sum += s;
                    sq += q;
                    off += n;
                }
            }
            let mean = sum / n_per_c;
            let var = (sq / n_per_c - mean * mean).max(0.0);
            let istd = 1.0 / (var + eps as f64).sqrt();
            cpe.charge_scalar_ops(10);
            cpe.dma_put(mean_out, c, &[mean as f32]);
            cpe.dma_put(istd_out, c, &[istd as f32]);
            c += 64;
        }
    });

    // Phase B: normalise.
    let report = cg.run_planned(&forward_normalize_plan(channels, spatial), |cpe| {
        let mut gbuf = cpe.ldm.alloc_f32(channels);
        let mut bbuf = cpe.ldm.alloc_f32(channels);
        let mut mbuf = cpe.ldm.alloc_f32(channels);
        let mut ibuf = cpe.ldm.alloc_f32(channels);
        cpe.dma_get(gamma, 0, &mut gbuf);
        cpe.dma_get(beta, 0, &mut bbuf);
        cpe.dma_get(mean_out.as_view(), 0, &mut mbuf);
        cpe.dma_get(istd_out.as_view(), 0, &mut ibuf);
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let rows = batch * channels;
        let mut row = cpe.idx();
        while row < rows {
            let c = row % channels;
            let mut off = 0;
            while off < spatial {
                let n = row_chunk.min(spatial - off);
                cpe.dma_get(x, row * spatial + off, &mut buf[..n]);
                cpe.compute(3 * n as u64, || {
                    for v in buf[..n].iter_mut() {
                        *v = gbuf[c] * (*v - mbuf[c]) * ibuf[c] + bbuf[c];
                    }
                });
                cpe.dma_put(y, row * spatial + off, &buf[..n]);
                off += n;
            }
            row += 64;
        }
    });
    total.merge(&report);
    total
}

/// BN backward.
pub fn backward(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    spatial: usize,
    ops: Option<BnBwdOperands<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let report = LaunchReport {
            elapsed: backward_time(batch, channels, spatial),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let ops = ops.expect("functional BN requires operands");
    let len = batch * channels * spatial;
    assert_eq!(ops.input.len(), len);
    assert_eq!(ops.out_grad.len(), len);
    assert_eq!(ops.in_grad.len(), len);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bn_backward(
            threads,
            batch,
            channels,
            spatial,
            ops.input,
            ops.gamma,
            ops.out_grad,
            ops.save_mean,
            ops.save_istd,
            ops.in_grad,
            ops.gamma_grad,
            ops.beta_grad,
        );
        return LaunchReport::default();
    }
    let x = MemView::new(ops.input);
    let dy = MemView::new(ops.out_grad);
    let gamma = MemView::new(ops.gamma);
    let mean = MemView::new(ops.save_mean);
    let istd = MemView::new(ops.save_istd);
    let dx = MemViewMut::new(ops.in_grad);
    let dgamma = MemViewMut::new(ops.gamma_grad);
    let dbeta = MemViewMut::new(ops.beta_grad);
    let n_per_c = (batch * spatial) as f64;

    // Phase A: per-channel dgamma / dbeta.
    let mut total = cg.run_planned(&backward_reduce_plan(spatial), |cpe| {
        let row_chunk = CHUNK.min(spatial.max(1));
        let mut xbuf = cpe.ldm.alloc_f32(row_chunk);
        let mut gbuf = cpe.ldm.alloc_f32(row_chunk);
        let mut mbuf = [0.0f32; 1];
        let mut ibuf = [0.0f32; 1];
        let mut c = cpe.idx();
        while c < channels {
            cpe.dma_get(mean, c, &mut mbuf);
            cpe.dma_get(istd, c, &mut ibuf);
            let (m, is) = (mbuf[0] as f64, ibuf[0] as f64);
            let mut dg = 0.0f64;
            let mut db = 0.0f64;
            for b in 0..batch {
                let mut off = 0;
                while off < spatial {
                    let n = row_chunk.min(spatial - off);
                    let base = (b * channels + c) * spatial + off;
                    cpe.dma_get(x, base, &mut xbuf[..n]);
                    cpe.dma_get(dy, base, &mut gbuf[..n]);
                    let (a, bb) = cpe.compute(4 * n as u64, || {
                        let mut a = 0.0f64;
                        let mut bb = 0.0f64;
                        for i in 0..n {
                            let xhat = (xbuf[i] as f64 - m) * is;
                            a += gbuf[i] as f64 * xhat;
                            bb += gbuf[i] as f64;
                        }
                        (a, bb)
                    });
                    dg += a;
                    db += bb;
                    off += n;
                }
            }
            cpe.dma_put(dgamma, c, &[dg as f32]);
            cpe.dma_put(dbeta, c, &[db as f32]);
            c += 64;
        }
    });

    // Phase B: dx = (gamma * istd / N) * (N*dy - dbeta - xhat * dgamma).
    let report = cg.run_planned(&backward_normalize_plan(channels, spatial), |cpe| {
        let mut gbuf = cpe.ldm.alloc_f32(channels);
        let mut mbuf = cpe.ldm.alloc_f32(channels);
        let mut ibuf = cpe.ldm.alloc_f32(channels);
        let mut dgb = cpe.ldm.alloc_f32(channels);
        let mut dbb = cpe.ldm.alloc_f32(channels);
        cpe.dma_get(gamma, 0, &mut gbuf);
        cpe.dma_get(mean, 0, &mut mbuf);
        cpe.dma_get(istd, 0, &mut ibuf);
        cpe.dma_get(dgamma.as_view(), 0, &mut dgb);
        cpe.dma_get(dbeta.as_view(), 0, &mut dbb);
        let row_chunk = (CHUNK / 2).min(spatial.max(1));
        let mut xbuf = cpe.ldm.alloc_f32(row_chunk);
        let mut ybuf = cpe.ldm.alloc_f32(row_chunk);
        let rows = batch * channels;
        let mut row = cpe.idx();
        while row < rows {
            let c = row % channels;
            let scale = gbuf[c] as f64 * ibuf[c] as f64 / n_per_c;
            let mut off = 0;
            while off < spatial {
                let n = row_chunk.min(spatial - off);
                let base = row * spatial + off;
                cpe.dma_get(x, base, &mut xbuf[..n]);
                cpe.dma_get(dy, base, &mut ybuf[..n]);
                cpe.compute(6 * n as u64, || {
                    for i in 0..n {
                        let xhat = (xbuf[i] as f64 - mbuf[c] as f64) * ibuf[c] as f64;
                        let v = scale
                            * (n_per_c * ybuf[i] as f64 - dbb[c] as f64 - xhat * dgb[c] as f64);
                        ybuf[i] = v as f32;
                    }
                });
                cpe.dma_put(dx, base, &ybuf[..n]);
                off += n;
            }
            row += 64;
        }
    });
    total.merge(&report);
    total
}

/// Duration of the BN forward pass (mirrors the two launch phases).
pub fn forward_time(batch: usize, channels: usize, spatial: usize) -> SimTime {
    use crate::elementwise::{chunk_walk_time, CHUNK};
    let launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS;
    // Phase A: per-channel reduction + two scalar puts.
    let per_channel = batch as f64 * chunk_walk_time(spatial, CHUNK, 1, 2)
        + 2.0 * dma::continuous_time(4, 64).seconds();
    let phase_a = launch + channels.div_ceil(64) as f64 * per_channel;
    // Phase B: 4 parameter-vector loads, then per-row normalise.
    let phase_b = launch
        + 4.0 * dma::continuous_time(channels * 4, 64).seconds()
        + (batch * channels).div_ceil(64) as f64 * chunk_walk_time(spatial, CHUNK, 2, 3);
    SimTime::from_seconds(phase_a + phase_b)
}

/// Duration of the BN backward pass (mirrors the two launch phases).
pub fn backward_time(batch: usize, channels: usize, spatial: usize) -> SimTime {
    use crate::elementwise::{chunk_walk_time, CHUNK};
    let launch = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS;
    // Phase A: per-channel dgamma/dbeta: 2 scalar gets, the data sweep,
    // 2 scalar puts.
    let per_channel = 4.0 * dma::continuous_time(4, 64).seconds()
        + batch as f64 * chunk_walk_time(spatial, CHUNK, 2, 4);
    let phase_a = launch + channels.div_ceil(64) as f64 * per_channel;
    // Phase B: 5 parameter-vector loads, then per-row dx with half-size
    // chunks (two staging buffers share the LDM budget).
    let phase_b = launch
        + 5.0 * dma::continuous_time(channels * 4, 64).seconds()
        + (batch * channels).div_ceil(64) as f64 * chunk_walk_time(spatial, CHUNK / 2, 3, 6);
    SimTime::from_seconds(phase_a + phase_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::ExecMode;

    fn pattern(len: usize, seed: i64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as i64 * 31 + seed * 7) % 17) - 8) as f32 * 0.3)
            .collect()
    }

    fn host_bn_forward(
        b: usize,
        c: usize,
        s: usize,
        eps: f32,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = (b * s) as f64;
        let mut y = vec![0.0f32; x.len()];
        let mut means = vec![0.0f32; c];
        let mut istds = vec![0.0f32; c];
        for ch in 0..c {
            let vals: Vec<f64> = (0..b)
                .flat_map(|bi| (0..s).map(move |si| (bi * c + ch) * s + si))
                .map(|i| x[i] as f64)
                .collect();
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let istd = 1.0 / (var + eps as f64).sqrt();
            means[ch] = mean as f32;
            istds[ch] = istd as f32;
            for bi in 0..b {
                for si in 0..s {
                    let i = (bi * c + ch) * s + si;
                    y[i] =
                        (gamma[ch] as f64 * (x[i] as f64 - mean) * istd + beta[ch] as f64) as f32;
                }
            }
        }
        (y, means, istds)
    }

    #[test]
    fn forward_matches_host() {
        let (b, c, s) = (4, 6, 25);
        let x = pattern(b * c * s, 1);
        let gamma = pattern(c, 2).iter().map(|v| v + 2.0).collect::<Vec<_>>();
        let beta = pattern(c, 3);
        let (want_y, want_m, want_i) = host_bn_forward(b, c, s, 1e-5, &x, &gamma, &beta);
        let mut y = vec![0.0; x.len()];
        let mut sm = vec![0.0; c];
        let mut si = vec![0.0; c];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward(
            &mut cg,
            b,
            c,
            s,
            1e-5,
            Some(BnFwdOperands {
                input: &x,
                gamma: &gamma,
                beta: &beta,
                output: &mut y,
                save_mean: &mut sm,
                save_istd: &mut si,
            }),
        );
        for i in 0..x.len() {
            assert!(
                (y[i] - want_y[i]).abs() < 1e-4,
                "y[{i}]: {} vs {}",
                y[i],
                want_y[i]
            );
        }
        for ch in 0..c {
            assert!((sm[ch] - want_m[ch]).abs() < 1e-5);
            assert!((si[ch] - want_i[ch]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        // Check dL/dx for L = sum(w .* y) against finite differences.
        let (b, c, s) = (2, 3, 8);
        let x = pattern(b * c * s, 4);
        let gamma: Vec<f32> = pattern(c, 5).iter().map(|v| v + 1.5).collect();
        let beta = pattern(c, 6);
        let w = pattern(b * c * s, 7);
        let eps = 1e-3f32;

        let loss = |xv: &[f32]| -> f64 {
            let (y, _, _) = host_bn_forward(b, c, s, eps, xv, &gamma, &beta);
            y.iter().zip(&w).map(|(a, b)| *a as f64 * *b as f64).sum()
        };

        let (_, sm, si) = host_bn_forward(b, c, s, eps, &x, &gamma, &beta);
        let mut dx = vec![0.0; x.len()];
        let mut dg = vec![0.0; c];
        let mut db = vec![0.0; c];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        backward(
            &mut cg,
            b,
            c,
            s,
            Some(BnBwdOperands {
                input: &x,
                gamma: &gamma,
                out_grad: &w,
                save_mean: &sm,
                save_istd: &si,
                in_grad: &mut dx,
                gamma_grad: &mut dg,
                beta_grad: &mut db,
            }),
        );

        let h = 1e-2f32;
        let mut xp = x.clone();
        for idx in [0usize, 7, 20, 33] {
            let orig = xp[idx];
            xp[idx] = orig + h;
            let up = loss(&xp);
            xp[idx] = orig - h;
            let down = loss(&xp);
            xp[idx] = orig;
            let fd = (up - down) / (2.0 * h as f64);
            assert!(
                (fd - dx[idx] as f64).abs() < 2e-2,
                "dx[{idx}]: fd {fd} vs analytic {}",
                dx[idx]
            );
        }
        // dbeta is just the sum of dy per channel.
        for ch in 0..c {
            let want: f32 = (0..b)
                .flat_map(|bi| {
                    let w = &w;
                    (0..s).map(move |si2| w[(bi * c + ch) * s + si2])
                })
                .sum();
            assert!((db[ch] - want).abs() < 1e-4);
        }
    }

    #[test]
    fn timing_mode_charges_models() {
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        let f = forward(&mut cg, 256, 96, 55 * 55, 1e-5, None);
        assert_eq!(f.elapsed, forward_time(256, 96, 55 * 55));
        let b = backward(&mut cg, 256, 96, 55 * 55, None);
        assert_eq!(b.elapsed, backward_time(256, 96, 55 * 55));
    }
}

/// Operands of [`forward_inference`]:
/// `(input, gamma, beta, running_mean, running_var, output)`.
pub type InferenceIo<'a> = (
    &'a [f32],
    &'a [f32],
    &'a [f32],
    &'a [f32],
    &'a [f32],
    &'a mut [f32],
);

/// BN inference forward: normalise with *running* statistics instead of
/// batch statistics (the `Test`-phase path; single streaming pass).
#[allow(clippy::too_many_arguments)]
pub fn forward_inference(
    cg: &mut CoreGroup,
    batch: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    io: Option<InferenceIo<'_>>,
) -> LaunchReport {
    if !cg.mode().is_functional() {
        let t = sw26010::arch::ATHREAD_LAUNCH_OVERHEAD_SECONDS
            + 4.0 * dma::continuous_time(channels * 4, 64).seconds()
            + crate::elementwise::row_stream_time(
                batch * channels,
                spatial,
                crate::elementwise::CHUNK,
                2,
                3,
            );
        let report = LaunchReport {
            elapsed: SimTime::from_seconds(t),
            stats: Default::default(),
        };
        cg.charge(report.elapsed);
        return report;
    }
    let (input, gamma, beta, mean, var, output) =
        io.expect("functional BN inference requires operands");
    let len = batch * channels * spatial;
    assert_eq!(input.len(), len);
    assert_eq!(output.len(), len);
    assert_eq!(gamma.len(), channels);
    assert_eq!(beta.len(), channels);
    assert_eq!(mean.len(), channels);
    assert_eq!(var.len(), channels);
    if let swbackend::Path::Host { threads } = swbackend::dispatch(cg.mode()) {
        crate::host::bn_inference(
            threads, batch, channels, spatial, eps, input, gamma, beta, mean, var, output,
        );
        return LaunchReport::default();
    }
    let x = MemView::new(input);
    let g = MemView::new(gamma);
    let bt = MemView::new(beta);
    let m = MemView::new(mean);
    let v = MemView::new(var);
    let y = MemViewMut::new(output);
    cg.run_planned(&inference_plan(channels, spatial), move |cpe| {
        let mut gbuf = cpe.ldm.alloc_f32(channels);
        let mut bbuf = cpe.ldm.alloc_f32(channels);
        let mut mbuf = cpe.ldm.alloc_f32(channels);
        let mut vbuf = cpe.ldm.alloc_f32(channels);
        cpe.dma_get(g, 0, &mut gbuf);
        cpe.dma_get(bt, 0, &mut bbuf);
        cpe.dma_get(m, 0, &mut mbuf);
        cpe.dma_get(v, 0, &mut vbuf);
        let row_chunk = crate::elementwise::CHUNK.min(spatial.max(1));
        let mut buf = cpe.ldm.alloc_f32(row_chunk);
        let rows = batch * channels;
        let mut row = cpe.idx();
        while row < rows {
            let c = row % channels;
            let istd = 1.0 / (vbuf[c] as f64 + eps as f64).sqrt();
            let mut off = 0;
            while off < spatial {
                let n = row_chunk.min(spatial - off);
                cpe.dma_get(x, row * spatial + off, &mut buf[..n]);
                cpe.compute(3 * n as u64, || {
                    for val in buf[..n].iter_mut() {
                        *val = (gbuf[c] as f64 * (*val as f64 - mbuf[c] as f64) * istd
                            + bbuf[c] as f64) as f32;
                    }
                });
                cpe.dma_put(y, row * spatial + off, &buf[..n]);
                off += n;
            }
            row += 64;
        }
    })
}

#[cfg(test)]
mod inference_tests {
    use super::*;
    use sw26010::ExecMode;

    #[test]
    fn inference_uses_provided_stats() {
        let (b, c, s) = (2, 3, 10);
        let x: Vec<f32> = (0..b * c * s).map(|i| (i % 7) as f32 - 3.0).collect();
        let gamma = vec![2.0f32, 1.0, 0.5];
        let beta = vec![0.1f32, -0.2, 0.3];
        let mean = vec![0.5f32, -0.5, 0.0];
        let var = vec![1.0f32, 4.0, 0.25];
        let eps = 1e-5;
        let mut y = vec![0.0f32; x.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        forward_inference(
            &mut cg,
            b,
            c,
            s,
            eps,
            Some((&x, &gamma, &beta, &mean, &var, &mut y)),
        );
        for bi in 0..b {
            for ci in 0..c {
                for si in 0..s {
                    let i = (bi * c + ci) * s + si;
                    let want = gamma[ci] * (x[i] - mean[ci]) / (var[ci] + eps).sqrt() + beta[ci];
                    assert!((y[i] - want).abs() < 1e-5, "elem {i}: {} vs {want}", y[i]);
                }
            }
        }
    }
}
