//! Fused conv+BN+ReLU vs the unfused three-layer sequence: bitwise
//! agreement across Table II-style shapes and both functional backends.
//!
//! The reference is always the unfused kernel sequence on the simulated
//! mesh (`ExecMode::Functional`, the blessed path). The fused kernel
//! must reproduce it bit-for-bit on the mesh *and* on host-native at
//! any thread count — the bit-identity contract `swserve`'s graph
//! optimizer relies on when it rewrites a conv→bn→relu chain into one
//! fused layer.

use sw26010::{CoreGroup, ExecMode};
use swdnn::fused::{self, ConvBnReluOperands};
use swdnn::{bn, conv_explicit, elementwise as ew, ConvShape};

const MODES: [ExecMode; 3] = [
    ExecMode::Functional,
    ExecMode::HostNative { threads: 1 },
    ExecMode::HostNative { threads: 3 },
];

/// Table II's VGG layer families, scaled to functional-test sizes while
/// keeping the structural parameters (kernel, stride, pad, channel
/// growth) intact.
fn table2_shapes() -> Vec<(&'static str, ConvShape)> {
    vec![
        (
            "conv1_1",
            ConvShape {
                batch: 2,
                in_c: 3,
                in_h: 12,
                in_w: 12,
                out_c: 16,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ),
        (
            "conv2_1",
            ConvShape {
                batch: 2,
                in_c: 16,
                in_h: 10,
                in_w: 10,
                out_c: 32,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ),
        (
            "conv3_1",
            ConvShape {
                batch: 1,
                in_c: 32,
                in_h: 8,
                in_w: 8,
                out_c: 48,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ),
        (
            "stride2",
            ConvShape {
                batch: 2,
                in_c: 8,
                in_h: 13,
                in_w: 13,
                out_c: 12,
                k: 3,
                stride: 2,
                pad: 0,
            },
        ),
        (
            "k5",
            ConvShape {
                batch: 1,
                in_c: 4,
                in_h: 11,
                in_w: 11,
                out_c: 8,
                k: 5,
                stride: 1,
                pad: 2,
            },
        ),
    ]
}

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed.wrapping_mul(0xBF58476D1CE4E5B9));
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// Unfused reference on the simulated mesh: conv → (bias) → BN
/// inference → ReLU.
fn unfused_reference(shape: &ConvShape, with_bias: bool, seed: u64, eps: f32) -> Vec<f32> {
    let spatial = shape.out_h() * shape.out_w();
    let len = shape.batch * shape.out_c * spatial;
    let input = values(shape.input_len(), seed);
    let weights = values(shape.weight_len(), seed + 1);
    let bias = values(shape.out_c, seed + 2);
    let gamma = values(shape.out_c, seed + 3);
    let beta = values(shape.out_c, seed + 4);
    let mean = values(shape.out_c, seed + 5);
    let var: Vec<f32> = values(shape.out_c, seed + 6)
        .iter()
        .map(|v| v * v + 0.1)
        .collect();

    let mut cg = CoreGroup::new(ExecMode::Functional);
    let mut conv_out = vec![0.0f32; len];
    conv_explicit::forward(
        &mut cg,
        shape,
        Some(conv_explicit::ConvFwdOperands {
            input: &input,
            weights: &weights,
            output: &mut conv_out,
        }),
    );
    if with_bias {
        ew::bias_forward(
            &mut cg,
            shape.batch,
            shape.out_c,
            spatial,
            Some((&bias, &mut conv_out)),
        );
    }
    let mut bn_out = vec![0.0f32; len];
    bn::forward_inference(
        &mut cg,
        shape.batch,
        shape.out_c,
        spatial,
        eps,
        Some((&conv_out, &gamma, &beta, &mean, &var, &mut bn_out)),
    );
    let mut out = vec![0.0f32; len];
    ew::relu_forward(&mut cg, len, Some((&bn_out, &mut out)));
    out
}

fn fused_on(mode: ExecMode, shape: &ConvShape, with_bias: bool, seed: u64, eps: f32) -> Vec<f32> {
    let spatial = shape.out_h() * shape.out_w();
    let len = shape.batch * shape.out_c * spatial;
    let input = values(shape.input_len(), seed);
    let weights = values(shape.weight_len(), seed + 1);
    let bias = values(shape.out_c, seed + 2);
    let gamma = values(shape.out_c, seed + 3);
    let beta = values(shape.out_c, seed + 4);
    let mean = values(shape.out_c, seed + 5);
    let var: Vec<f32> = values(shape.out_c, seed + 6)
        .iter()
        .map(|v| v * v + 0.1)
        .collect();

    let mut cg = CoreGroup::new(mode);
    let mut out = vec![0.0f32; len];
    fused::forward(
        &mut cg,
        shape,
        eps,
        Some(ConvBnReluOperands {
            input: &input,
            weights: &weights,
            bias: with_bias.then_some(bias.as_slice()),
            gamma: &gamma,
            beta: &beta,
            mean: &mean,
            var: &var,
            output: &mut out,
        }),
    );
    out
}

#[test]
fn fused_matches_unfused_bitwise_on_all_functional_backends() {
    let eps = 1e-5;
    for (name, shape) in table2_shapes() {
        for with_bias in [false, true] {
            let seed = 11 + with_bias as u64;
            let want = unfused_reference(&shape, with_bias, seed, eps);
            for mode in MODES {
                let got = fused_on(mode, &shape, with_bias, seed, eps);
                assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{name} bias={with_bias} {mode:?} elem {i}: fused {g} vs unfused {w}"
                    );
                }
            }
        }
    }
}

/// The fused kernel must also agree with itself across backends when the
/// activations contain negatives both before and after the BN transform
/// (exercises the ReLU clamp path on every backend).
#[test]
fn fused_relu_clamps_identically_across_backends() {
    let shape = ConvShape {
        batch: 2,
        in_c: 2,
        in_h: 7,
        in_w: 7,
        out_c: 4,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mesh = fused_on(ExecMode::Functional, &shape, true, 99, 1e-3);
    assert!(
        mesh.iter().all(|v| *v >= 0.0),
        "ReLU must clamp every output to be non-negative"
    );
    assert!(
        mesh.contains(&0.0),
        "test data should actually hit the clamp"
    );
    for mode in MODES {
        let got = fused_on(mode, &shape, true, 99, 1e-3);
        assert!(got
            .iter()
            .zip(&mesh)
            .all(|(g, w)| g.to_bits() == w.to_bits()));
    }
}
