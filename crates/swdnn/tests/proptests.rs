//! Randomised-but-deterministic tests of the kernel library: the
//! accelerated mesh kernels must agree with the scalar oracles for many
//! shapes, and structural invariants (adjointness, conservation) must
//! hold.
//!
//! Cases are drawn from a fixed-seed SplitMix64 stream instead of a
//! property-testing framework so the suite runs with zero external
//! dependencies and every failure reproduces exactly.

use sw26010::{CoreGroup, ExecMode};
use swdnn::gemm::{gemm, time_model, GemmOperands, TilePlan};
use swdnn::{reference, ConvShape, GemmDims, PoolMethod, PoolShape, Trans};

/// Deterministic case generator (SplitMix64).
struct CaseRng {
    state: u64,
}

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed);
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

#[test]
fn mesh_gemm_matches_reference() {
    let mut rng = CaseRng::new(0x6E11);
    for _ in 0..12 {
        let m = rng.range(1, 40);
        let n = rng.range(1, 40);
        let k = rng.range(1, 40);
        let dims = GemmDims::new(m, n, k);
        let ta = if rng.flag() { Trans::Yes } else { Trans::No };
        let tb = if rng.flag() { Trans::Yes } else { Trans::No };
        let beta = if rng.flag() { 1.0 } else { 0.0 };
        let a = values(m * k, 1);
        let b = values(k * n, 2);
        let c0 = values(m * n, 3);
        let mut want = c0.clone();
        reference::gemm(dims, ta, tb, &a, &b, beta, &mut want);
        let mut got = c0;
        let mut cg = CoreGroup::new(ExecMode::Functional);
        gemm(
            &mut cg,
            dims,
            ta,
            tb,
            beta,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut got,
            }),
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{g} vs {w}");
        }
    }
}

#[test]
fn gemm_time_model_is_monotone_in_k() {
    let mut rng = CaseRng::new(0x7133);
    for _ in 0..12 {
        let m = rng.range(1, 256);
        let n = rng.range(1, 256);
        let k = rng.range(8, 512);
        let d1 = GemmDims::new(m, n, k);
        let d2 = GemmDims::new(m, n, 2 * k);
        let t1 = time_model(d1, 0.0, TilePlan::choose(d1)).seconds();
        let t2 = time_model(d2, 0.0, TilePlan::choose(d2)).seconds();
        assert!(t2 >= t1 * 0.99, "doubling k shrank time: {t1} -> {t2}");
    }
}

#[test]
fn im2col_col2im_adjoint() {
    let mut rng = CaseRng::new(0xADA0);
    let mut cases = 0;
    while cases < 12 {
        let in_c = rng.range(1, 4);
        let hw = rng.range(3, 12);
        let k = rng.range(1, 4);
        let stride = rng.range(1, 3);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        cases += 1;
        let shape = ConvShape {
            batch: 1,
            in_c,
            in_h: hw,
            in_w: hw,
            out_c: 1,
            k,
            stride,
            pad,
        };
        let x = values(in_c * hw * hw, 5);
        let y = values(shape.col_rows() * shape.col_cols(), 6);
        // <im2col(x), y> == <x, col2im(y)>.
        let mut cols = vec![0.0; y.len()];
        reference::im2col(&shape, &x, &mut cols);
        let lhs: f64 = cols
            .iter()
            .zip(&y)
            .map(|(a, b)| *a as f64 * *b as f64)
            .sum();
        let mut img = vec![0.0; x.len()];
        reference::col2im(&shape, &y, &mut img);
        let rhs: f64 = x.iter().zip(&img).map(|(a, b)| *a as f64 * *b as f64).sum();
        assert!(
            (lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}

#[test]
fn mesh_im2col_matches_reference() {
    let mut rng = CaseRng::new(0x12C0);
    let mut cases = 0;
    while cases < 12 {
        let in_c = rng.range(1, 4);
        let hw = rng.range(3, 14);
        let k = rng.range(1, 4);
        let stride = rng.range(1, 3);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        cases += 1;
        let shape = ConvShape {
            batch: 1,
            in_c,
            in_h: hw,
            in_w: hw,
            out_c: 1,
            k,
            stride,
            pad,
        };
        let image = values(in_c * hw * hw, 7);
        let mut want = vec![0.0; shape.col_rows() * shape.col_cols()];
        reference::im2col(&shape, &image, &mut want);
        let mut got = vec![f32::NAN; want.len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        swdnn::im2col::im2col(
            &mut cg,
            &shape,
            Some(swdnn::im2col::Im2colOperands {
                image: &image,
                cols: &mut got,
            }),
        );
        assert_eq!(got, want);
    }
}

#[test]
fn max_pool_backward_conserves_gradient() {
    let mut rng = CaseRng::new(0x9001);
    for _ in 0..12 {
        let channels = rng.range(1, 4);
        let hw = rng.range(4, 12);
        let k = rng.range(2, 4);
        let stride = rng.range(1, 3);
        let shape = PoolShape {
            batch: 2,
            channels,
            in_h: hw,
            in_w: hw,
            k,
            stride,
            pad: 0,
            method: PoolMethod::Max,
        };
        let input = values(shape.input_len(), 8);
        let mut out = vec![0.0; shape.output_len()];
        let mut am = vec![0usize; shape.output_len()];
        reference::pool_forward(&shape, &input, &mut out, Some(&mut am));
        let dy = values(shape.output_len(), 9);
        let mut dx = vec![0.0; shape.input_len()];
        reference::pool_backward(&shape, &dy, Some(&am), &mut dx);
        // Max-pool backward routes every output gradient to exactly one
        // input: total gradient mass is conserved.
        let sum_dy: f64 = dy.iter().map(|v| *v as f64).sum();
        let sum_dx: f64 = dx.iter().map(|v| *v as f64).sum();
        assert!((sum_dy - sum_dx).abs() < 1e-3 * sum_dy.abs().max(1.0));
    }
}

#[test]
fn conv_explicit_matches_direct() {
    let mut rng = CaseRng::new(0xCE44);
    let mut cases = 0;
    while cases < 12 {
        let in_c = rng.range(1, 4);
        let out_c = rng.range(1, 5);
        let hw = rng.range(3, 9);
        let k = rng.range(1, 4);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        cases += 1;
        let shape = ConvShape {
            batch: 2,
            in_c,
            in_h: hw,
            in_w: hw,
            out_c,
            k,
            stride: 1,
            pad,
        };
        let input = values(shape.input_len(), 10);
        let weights = values(shape.weight_len(), 11);
        let mut want = vec![0.0; shape.output_len()];
        reference::conv_forward(&shape, &input, &weights, &mut want);
        let mut got = vec![0.0; shape.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        swdnn::conv_explicit::forward(
            &mut cg,
            &shape,
            Some(swdnn::conv_explicit::ConvFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut got,
            }),
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{g} vs {w}");
        }
    }
}

#[test]
fn transform_roundtrip_identity() {
    use swdnn::transform::{nchw_to_rcnb_host, rcnb_to_nchw_host, TransShape};
    let mut rng = CaseRng::new(0x7540);
    for _ in 0..12 {
        let b = rng.range(1, 6);
        let c = rng.range(1, 6);
        let h = rng.range(1, 8);
        let w = rng.range(1, 8);
        let shape = TransShape {
            batch: b,
            channels: c,
            height: h,
            width: w,
        };
        let x = values(shape.len(), 12);
        let mut mid = vec![0.0; x.len()];
        let mut back = vec![0.0; x.len()];
        nchw_to_rcnb_host(&shape, &x, &mut mid);
        rcnb_to_nchw_host(&shape, &mid, &mut back);
        assert_eq!(back, x);
    }
}

#[test]
fn implicit_conv_matches_direct_for_random_shapes() {
    use swdnn::transform::{
        filters_oikk_to_kkon, nchw_to_rcnb_host, rcnb_to_nchw_host, TransShape,
    };
    let mut rng = CaseRng::new(0x1111);
    let mut cases = 0;
    while cases < 8 {
        let batch = rng.range(1, 6);
        let in_c = rng.range(1, 5);
        let out_c = rng.range(1, 6);
        let hw = rng.range(3, 8);
        let k = rng.range(1, 4);
        let stride = rng.range(1, 3);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        cases += 1;
        let shape = ConvShape {
            batch,
            in_c,
            in_h: hw,
            in_w: hw,
            out_c,
            k,
            stride,
            pad,
        };
        let input_nchw = values(shape.input_len(), 21);
        let weights_oikk = values(shape.weight_len(), 22);
        let mut want = vec![0.0; shape.output_len()];
        reference::conv_forward(&shape, &input_nchw, &weights_oikk, &mut want);

        let tin = TransShape {
            batch,
            channels: in_c,
            height: hw,
            width: hw,
        };
        let tout = TransShape {
            batch,
            channels: out_c,
            height: shape.out_h(),
            width: shape.out_w(),
        };
        let mut input_rcnb = vec![0.0; shape.input_len()];
        nchw_to_rcnb_host(&tin, &input_nchw, &mut input_rcnb);
        let weights = filters_oikk_to_kkon(out_c, in_c, k, &weights_oikk);
        let mut out_rcnb = vec![0.0; shape.output_len()];
        let mut cg = CoreGroup::new(ExecMode::Functional);
        swdnn::conv_implicit::forward(
            &mut cg,
            &shape,
            Some(swdnn::conv_implicit::ImplicitFwdOperands {
                input: &input_rcnb,
                weights: &weights,
                output: &mut out_rcnb,
            }),
        );
        let mut got = vec![0.0; shape.output_len()];
        rcnb_to_nchw_host(&tout, &out_rcnb, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                "implicit {shape:?} elem {i}: {g} vs {w}"
            );
        }
    }
}
