//! Bitwise agreement between the Sw26010 functional backend (mesh
//! simulation) and the HostNative backend, for every swdnn kernel.
//!
//! The host mirrors in `swdnn::host` promise *bit-for-bit* identical
//! results to the mesh path — same accumulator widths, same reduction
//! orders, same rounding points — independent of the host thread count.
//! These tests pin that contract: every kernel runs under
//! `ExecMode::Functional` and under `ExecMode::HostNative` with one and
//! with several threads, and the outputs are compared via `f32::to_bits`.
//!
//! Shapes are Table II flavoured (VGG layer channel geometries, reduced
//! batch/spatial so the mesh simulation stays fast) plus randomized
//! shapes from the same zero-dependency SplitMix64 stream the proptests
//! use.

use sw26010::{CoreGroup, ExecMode};
use swdnn::bn::{BnBwdOperands, BnFwdOperands};
use swdnn::conv_explicit::{ConvBwdOperands, ConvFwdOperands};
use swdnn::conv_implicit::{ImplicitBwdOperands, ImplicitFwdOperands};
use swdnn::gemm::GemmOperands;
use swdnn::im2col::{Col2imOperands, Im2colOperands};
use swdnn::lrn::LrnParams;
use swdnn::pool::{PoolBwdOperands, PoolFwdOperands};
use swdnn::softmax::{SoftmaxBwdOperands, SoftmaxFwdOperands};
use swdnn::transform::TransShape;
use swdnn::{ConvShape, GemmDims, PoolMethod, PoolShape, Trans};

/// Host modes every kernel must agree with the mesh under: single thread
/// (pure serial mirror) and several threads (parallel partitioning must
/// not change any reduction order).
const HOST_MODES: [ExecMode; 2] = [
    ExecMode::HostNative { threads: 1 },
    ExecMode::HostNative { threads: 3 },
];

/// Deterministic case generator (SplitMix64), as in `proptests.rs`.
struct CaseRng {
    state: u64,
}

impl CaseRng {
    fn new(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed);
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// Sparse-ish values: a fraction of exact zeros, exercising the mesh's
/// zero-skip branches (which the host mirrors replicate).
fn sparse_values(len: usize, seed: u64) -> Vec<f32> {
    values(len, seed)
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            if (i * 7 + seed as usize).is_multiple_of(5) {
                0.0
            } else {
                v
            }
        })
        .collect()
}

#[track_caller]
fn assert_bits_eq(tag: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{tag}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{tag}: elem {i} differs: host {g} vs mesh {w}"
        );
    }
}

/// Table II flavoured conv shapes: VGG channel geometries with reduced
/// batch and spatial extents (the mesh path is a cycle-level simulation).
fn table2_shapes() -> Vec<ConvShape> {
    vec![
        // conv1_1 geometry: 3 -> 64 (explicit-only territory).
        ConvShape {
            batch: 2,
            in_c: 3,
            in_h: 12,
            in_w: 12,
            out_c: 64,
            k: 3,
            stride: 1,
            pad: 1,
        },
        // conv2_x geometry: 64 -> 128.
        ConvShape {
            batch: 4,
            in_c: 64,
            in_h: 8,
            in_w: 8,
            out_c: 128,
            k: 3,
            stride: 1,
            pad: 1,
        },
        // conv4_x geometry: 256 -> 256, small spatial.
        ConvShape {
            batch: 2,
            in_c: 256,
            in_h: 4,
            in_w: 4,
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 1,
        },
    ]
}

fn random_conv_shapes(seed: u64, n: usize) -> Vec<ConvShape> {
    let mut rng = CaseRng::new(seed);
    let mut shapes = Vec::new();
    while shapes.len() < n {
        let hw = rng.range(3, 10);
        let k = rng.range(1, 4);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        shapes.push(ConvShape {
            batch: rng.range(1, 5),
            in_c: rng.range(1, 6),
            in_h: hw,
            in_w: hw,
            out_c: rng.range(1, 6),
            k,
            stride: rng.range(1, 3),
            pad,
        });
    }
    shapes
}

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

fn check_gemm(dims: GemmDims, ta: Trans, tb: Trans, beta: f32, double_buffered: bool) {
    let (m, n, k) = (dims.m, dims.n, dims.k);
    let a = sparse_values(m * k, 1);
    let b = values(k * n, 2);
    let c0 = values(m * n, 3);
    let run = |mode: ExecMode| {
        let mut c = c0.clone();
        let mut cg = CoreGroup::new(mode);
        let ops = Some(GemmOperands {
            a: &a,
            b: &b,
            c: &mut c,
        });
        if double_buffered {
            swdnn::gemm::gemm_double_buffered(&mut cg, dims, ta, tb, beta, ops);
        } else {
            swdnn::gemm::gemm(&mut cg, dims, ta, tb, beta, ops);
        }
        c
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        let got = run(mode);
        assert_bits_eq(
            &format!("gemm {dims:?} ta={ta:?} tb={tb:?} beta={beta}"),
            &got,
            &want,
        );
    }
}

#[test]
fn gemm_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_0001);
    for _ in 0..8 {
        let dims = GemmDims::new(rng.range(1, 48), rng.range(1, 48), rng.range(1, 48));
        let ta = if rng.flag() { Trans::Yes } else { Trans::No };
        let tb = if rng.flag() { Trans::Yes } else { Trans::No };
        let beta = if rng.flag() { 1.0 } else { 0.0 };
        check_gemm(dims, ta, tb, beta, false);
    }
    // Table II flavour: an explicit-conv GEMM (out_c x (k*k*in_c) by cols).
    check_gemm(GemmDims::new(64, 36, 27), Trans::No, Trans::No, 0.0, false);
}

#[test]
fn double_buffered_gemm_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_0002);
    for _ in 0..4 {
        let dims = GemmDims::new(rng.range(8, 64), rng.range(8, 64), rng.range(8, 64));
        check_gemm(
            dims,
            Trans::No,
            Trans::No,
            if rng.flag() { 1.0 } else { 0.0 },
            true,
        );
    }
}

// ---------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------

#[test]
fn im2col_col2im_agree_across_backends() {
    for (i, shape) in random_conv_shapes(0xB17_0003, 6).into_iter().enumerate() {
        let image = values(shape.input_len() / shape.batch, 4);
        let single = ConvShape { batch: 1, ..shape };
        let cols_len = single.col_rows() * single.col_cols();

        let run_fwd = |mode: ExecMode| {
            let mut cols = vec![f32::NAN; cols_len];
            let mut cg = CoreGroup::new(mode);
            swdnn::im2col::im2col(
                &mut cg,
                &single,
                Some(Im2colOperands {
                    image: &image,
                    cols: &mut cols,
                }),
            );
            cols
        };
        let want = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("im2col case {i}"), &run_fwd(mode), &want);
        }

        let cols = values(cols_len, 5);
        let run_bwd = |mode: ExecMode| {
            let mut img = vec![f32::NAN; single.input_len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::im2col::col2im(
                &mut cg,
                &single,
                Some(Col2imOperands {
                    cols: &cols,
                    image: &mut img,
                }),
            );
            img
        };
        let want = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("col2im case {i}"), &run_bwd(mode), &want);
        }
    }
}

// ---------------------------------------------------------------------
// Implicit convolution (RCNB / KKON layouts)
// ---------------------------------------------------------------------

fn check_implicit(shape: &ConvShape, tag: &str) {
    let input = values(shape.input_len(), 6);
    let weights = sparse_values(shape.weight_len(), 7);
    let out_grad = sparse_values(shape.output_len(), 8);

    let run_fwd = |mode: ExecMode| {
        let mut out = vec![f32::NAN; shape.output_len()];
        let mut cg = CoreGroup::new(mode);
        swdnn::conv_implicit::forward(
            &mut cg,
            shape,
            Some(ImplicitFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut out,
            }),
        );
        out
    };
    let want = run_fwd(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq(&format!("implicit fwd {tag}"), &run_fwd(mode), &want);
    }

    let run_bwd = |mode: ExecMode| {
        let mut in_grad = vec![f32::NAN; shape.input_len()];
        let mut w_grad = vec![f32::NAN; shape.weight_len()];
        let mut cg = CoreGroup::new(mode);
        swdnn::conv_implicit::backward(
            &mut cg,
            shape,
            Some(ImplicitBwdOperands {
                input: &input,
                weights: &weights,
                out_grad: &out_grad,
                in_grad: Some(&mut in_grad),
                w_grad: Some(&mut w_grad),
            }),
        );
        (in_grad, w_grad)
    };
    let (want_dx, want_dw) = run_bwd(ExecMode::Functional);
    for mode in HOST_MODES {
        let (dx, dw) = run_bwd(mode);
        assert_bits_eq(&format!("implicit bwd-in {tag}"), &dx, &want_dx);
        assert_bits_eq(&format!("implicit bwd-w {tag}"), &dw, &want_dw);
    }
}

#[test]
fn implicit_conv_agrees_across_backends() {
    for (i, shape) in random_conv_shapes(0xB17_0004, 4).into_iter().enumerate() {
        check_implicit(&shape, &format!("rand {i}"));
    }
}

#[test]
fn implicit_conv_agrees_on_table2_geometries() {
    for (i, shape) in table2_shapes().into_iter().enumerate() {
        check_implicit(&shape, &format!("table2 {i}"));
    }
}

// ---------------------------------------------------------------------
// Explicit convolution (transitive: im2col + gemm + col2im chain)
// ---------------------------------------------------------------------

#[test]
fn explicit_conv_agrees_across_backends() {
    for (i, shape) in random_conv_shapes(0xB17_0005, 4).into_iter().enumerate() {
        let input = values(shape.input_len(), 9);
        let weights = sparse_values(shape.weight_len(), 10);
        let out_grad = values(shape.output_len(), 11);

        let run_fwd = |mode: ExecMode| {
            let mut out = vec![f32::NAN; shape.output_len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::conv_explicit::forward(
                &mut cg,
                &shape,
                Some(ConvFwdOperands {
                    input: &input,
                    weights: &weights,
                    output: &mut out,
                }),
            );
            out
        };
        let want = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("explicit fwd {i}"), &run_fwd(mode), &want);
        }

        let run_bwd = |mode: ExecMode| {
            let mut in_grad = vec![f32::NAN; shape.input_len()];
            let mut w_grad = vec![f32::NAN; shape.weight_len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::conv_explicit::backward(
                &mut cg,
                &shape,
                Some(ConvBwdOperands {
                    input: &input,
                    weights: &weights,
                    out_grad: &out_grad,
                    in_grad: Some(&mut in_grad),
                    w_grad: Some(&mut w_grad),
                }),
            );
            (in_grad, w_grad)
        };
        let (want_dx, want_dw) = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            let (dx, dw) = run_bwd(mode);
            assert_bits_eq(&format!("explicit bwd-in {i}"), &dx, &want_dx);
            assert_bits_eq(&format!("explicit bwd-w {i}"), &dw, &want_dw);
        }
    }
}

// ---------------------------------------------------------------------
// Layout transforms
// ---------------------------------------------------------------------

#[test]
fn transforms_agree_across_backends() {
    let mut rng = CaseRng::new(0xB17_0006);
    for i in 0..6 {
        let shape = TransShape {
            batch: rng.range(1, 8),
            channels: rng.range(1, 8),
            height: rng.range(1, 9),
            width: rng.range(1, 9),
        };
        let x = values(shape.len(), 12);
        for dir in [true, false] {
            let run = |mode: ExecMode| {
                let mut out = vec![f32::NAN; shape.len()];
                let mut cg = CoreGroup::new(mode);
                if dir {
                    swdnn::transform::nchw_to_rcnb(&mut cg, &shape, Some((&x, &mut out)));
                } else {
                    swdnn::transform::rcnb_to_nchw(&mut cg, &shape, Some((&x, &mut out)));
                }
                out
            };
            let want = run(ExecMode::Functional);
            for mode in HOST_MODES {
                assert_bits_eq(&format!("transform case {i} dir {dir}"), &run(mode), &want);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

#[test]
fn pooling_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_0007);
    let mut cases = Vec::new();
    while cases.len() < 6 {
        let hw = rng.range(4, 12);
        let k = rng.range(2, 4);
        let pad = rng.range(0, 2);
        if hw + 2 * pad < k {
            continue;
        }
        cases.push(PoolShape {
            batch: rng.range(1, 3),
            channels: rng.range(1, 4),
            in_h: hw,
            in_w: hw,
            k,
            stride: rng.range(1, 3),
            pad,
            method: if rng.flag() {
                PoolMethod::Max
            } else {
                PoolMethod::Average
            },
        });
    }
    // AlexNet's overlapping max pool, always.
    cases.push(PoolShape {
        batch: 2,
        channels: 3,
        in_h: 13,
        in_w: 13,
        k: 3,
        stride: 2,
        pad: 0,
        method: PoolMethod::Max,
    });

    for (i, shape) in cases.into_iter().enumerate() {
        let is_max = matches!(shape.method, PoolMethod::Max);
        let input = values(shape.input_len(), 13);
        let dy = values(shape.output_len(), 14);

        let run_fwd = |mode: ExecMode| {
            let mut out = vec![f32::NAN; shape.output_len()];
            let mut am = vec![f32::NAN; shape.output_len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::pool::forward(
                &mut cg,
                &shape,
                Some(PoolFwdOperands {
                    input: &input,
                    output: &mut out,
                    argmax: is_max.then_some(&mut am[..]),
                }),
            );
            (out, am)
        };
        let (want_out, want_am) = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            let (out, am) = run_fwd(mode);
            assert_bits_eq(&format!("pool fwd {i}"), &out, &want_out);
            if is_max {
                assert_bits_eq(&format!("pool argmax {i}"), &am, &want_am);
            }
        }

        let run_bwd = |mode: ExecMode| {
            let mut dx = vec![f32::NAN; shape.input_len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::pool::backward(
                &mut cg,
                &shape,
                Some(PoolBwdOperands {
                    out_grad: &dy,
                    argmax: is_max.then_some(&want_am[..]),
                    in_grad: &mut dx,
                }),
            );
            dx
        };
        let want_dx = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("pool bwd {i}"), &run_bwd(mode), &want_dx);
        }
    }
}

// ---------------------------------------------------------------------
// Batch normalisation
// ---------------------------------------------------------------------

#[test]
fn bn_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_0008);
    for i in 0..5 {
        let (b, c, s) = (rng.range(1, 5), rng.range(1, 8), rng.range(1, 40));
        let eps = 1e-5f32;
        let x = values(b * c * s, 15);
        let gamma: Vec<f32> = values(c, 16).iter().map(|v| v + 2.5).collect();
        let beta = values(c, 17);
        let dy = values(b * c * s, 18);

        let run_fwd = |mode: ExecMode| {
            let mut y = vec![f32::NAN; x.len()];
            let mut sm = vec![f32::NAN; c];
            let mut si = vec![f32::NAN; c];
            let mut cg = CoreGroup::new(mode);
            swdnn::bn::forward(
                &mut cg,
                b,
                c,
                s,
                eps,
                Some(BnFwdOperands {
                    input: &x,
                    gamma: &gamma,
                    beta: &beta,
                    output: &mut y,
                    save_mean: &mut sm,
                    save_istd: &mut si,
                }),
            );
            (y, sm, si)
        };
        let (want_y, want_m, want_i) = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            let (y, sm, si) = run_fwd(mode);
            assert_bits_eq(&format!("bn fwd y {i}"), &y, &want_y);
            assert_bits_eq(&format!("bn fwd mean {i}"), &sm, &want_m);
            assert_bits_eq(&format!("bn fwd istd {i}"), &si, &want_i);
        }

        let run_bwd = |mode: ExecMode| {
            let mut dx = vec![f32::NAN; x.len()];
            let mut dg = vec![f32::NAN; c];
            let mut db = vec![f32::NAN; c];
            let mut cg = CoreGroup::new(mode);
            swdnn::bn::backward(
                &mut cg,
                b,
                c,
                s,
                Some(BnBwdOperands {
                    input: &x,
                    gamma: &gamma,
                    out_grad: &dy,
                    save_mean: &want_m,
                    save_istd: &want_i,
                    in_grad: &mut dx,
                    gamma_grad: &mut dg,
                    beta_grad: &mut db,
                }),
            );
            (dx, dg, db)
        };
        let (want_dx, want_dg, want_db) = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            let (dx, dg, db) = run_bwd(mode);
            assert_bits_eq(&format!("bn bwd dx {i}"), &dx, &want_dx);
            assert_bits_eq(&format!("bn bwd dgamma {i}"), &dg, &want_dg);
            assert_bits_eq(&format!("bn bwd dbeta {i}"), &db, &want_db);
        }

        let mean = values(c, 19);
        let var: Vec<f32> = values(c, 20).iter().map(|v| v.abs() + 0.5).collect();
        let run_inf = |mode: ExecMode| {
            let mut y = vec![f32::NAN; x.len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::bn::forward_inference(
                &mut cg,
                b,
                c,
                s,
                eps,
                Some((&x, &gamma, &beta, &mean, &var, &mut y)),
            );
            y
        };
        let want = run_inf(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("bn inference {i}"), &run_inf(mode), &want);
        }
    }
    // A spatial extent above the streaming CHUNK, so the chunk-boundary
    // partial-sum order is exercised.
    let (b, c, s) = (2, 2, swdnn::elementwise::CHUNK + 123);
    let x = values(b * c * s, 21);
    let gamma = vec![1.3f32, 0.8];
    let beta = vec![0.1f32, -0.4];
    let run = |mode: ExecMode| {
        let mut y = vec![f32::NAN; x.len()];
        let mut sm = vec![f32::NAN; c];
        let mut si = vec![f32::NAN; c];
        let mut cg = CoreGroup::new(mode);
        swdnn::bn::forward(
            &mut cg,
            b,
            c,
            s,
            1e-5,
            Some(BnFwdOperands {
                input: &x,
                gamma: &gamma,
                beta: &beta,
                output: &mut y,
                save_mean: &mut sm,
                save_istd: &mut si,
            }),
        );
        (y, sm, si)
    };
    let (want_y, want_m, want_i) = run(ExecMode::Functional);
    for mode in HOST_MODES {
        let (y, sm, si) = run(mode);
        assert_bits_eq("bn fwd chunked y", &y, &want_y);
        assert_bits_eq("bn fwd chunked mean", &sm, &want_m);
        assert_bits_eq("bn fwd chunked istd", &si, &want_i);
    }
}

// ---------------------------------------------------------------------
// Softmax + cross-entropy
// ---------------------------------------------------------------------

#[test]
fn softmax_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_0009);
    for i in 0..5 {
        let (b, c) = (rng.range(1, 80), rng.range(2, 20));
        let logits = values(b * c, 22);
        let labels: Vec<f32> = (0..b).map(|j| ((j * 3) % c) as f32).collect();

        let run_fwd = |mode: ExecMode| {
            let mut probs = vec![f32::NAN; b * c];
            let mut losses = vec![f32::NAN; b];
            let mut cg = CoreGroup::new(mode);
            swdnn::softmax::forward(
                &mut cg,
                b,
                c,
                Some(SoftmaxFwdOperands {
                    logits: &logits,
                    labels: &labels,
                    probs: &mut probs,
                    losses: &mut losses,
                }),
            );
            (probs, losses)
        };
        let (want_p, want_l) = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            let (p, l) = run_fwd(mode);
            assert_bits_eq(&format!("softmax fwd probs {i}"), &p, &want_p);
            assert_bits_eq(&format!("softmax fwd losses {i}"), &l, &want_l);
        }

        let run_bwd = |mode: ExecMode| {
            let mut dx = vec![f32::NAN; b * c];
            let mut cg = CoreGroup::new(mode);
            swdnn::softmax::backward(
                &mut cg,
                b,
                c,
                1.0 / b as f32,
                Some(SoftmaxBwdOperands {
                    probs: &want_p,
                    labels: &labels,
                    in_grad: &mut dx,
                }),
            );
            dx
        };
        let want_dx = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("softmax bwd {i}"), &run_bwd(mode), &want_dx);
        }
    }
}

// ---------------------------------------------------------------------
// LRN
// ---------------------------------------------------------------------

#[test]
fn lrn_agrees_across_backends() {
    let mut rng = CaseRng::new(0xB17_000A);
    for i in 0..4 {
        let (b, c, h, w) = (
            rng.range(1, 3),
            rng.range(2, 10),
            rng.range(1, 6),
            rng.range(1, 8),
        );
        let p = LrnParams::default();
        let x = values(b * c * h * w, 23);
        let dy = values(x.len(), 24);

        let run_fwd = |mode: ExecMode| {
            let mut y = vec![f32::NAN; x.len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::lrn::forward(&mut cg, b, c, h, w, p, Some((&x, &mut y)));
            y
        };
        let want = run_fwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("lrn fwd {i}"), &run_fwd(mode), &want);
        }

        let run_bwd = |mode: ExecMode| {
            let mut dx = vec![f32::NAN; x.len()];
            let mut cg = CoreGroup::new(mode);
            swdnn::lrn::backward(&mut cg, b, c, h, w, p, Some((&x, &dy, &mut dx)));
            dx
        };
        let want = run_bwd(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(&format!("lrn bwd {i}"), &run_bwd(mode), &want);
        }
    }
}

// ---------------------------------------------------------------------
// Element-wise kernels
// ---------------------------------------------------------------------

#[test]
fn elementwise_agrees_across_backends() {
    use swdnn::elementwise as ew;
    let len = ew::CHUNK * 2 + 77;
    let x = values(len, 25);
    let y0 = values(len, 26);

    // relu forward
    let run = |mode: ExecMode| {
        let mut out = vec![f32::NAN; len];
        let mut cg = CoreGroup::new(mode);
        ew::relu_forward(&mut cg, len, Some((&x, &mut out)));
        out
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("relu fwd", &run(mode), &want);
    }

    // relu backward
    let run = |mode: ExecMode| {
        let mut dx = vec![f32::NAN; len];
        let mut cg = CoreGroup::new(mode);
        ew::relu_backward(&mut cg, len, Some((&y0, &x, &mut dx)));
        dx
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("relu bwd", &run(mode), &want);
    }

    // add + apply_mask
    for (tag, f) in [("add", true), ("mask", false)] {
        let run = |mode: ExecMode| {
            let mut out = vec![f32::NAN; len];
            let mut cg = CoreGroup::new(mode);
            if f {
                ew::add(&mut cg, len, Some((&x, &y0, &mut out)));
            } else {
                ew::apply_mask(&mut cg, len, Some((&x, &y0, &mut out)));
            }
            out
        };
        let want = run(ExecMode::Functional);
        for mode in HOST_MODES {
            assert_bits_eq(tag, &run(mode), &want);
        }
    }

    // axpy + scale (in place)
    let run = |mode: ExecMode| {
        let mut acc = y0.clone();
        let mut cg = CoreGroup::new(mode);
        ew::axpy(&mut cg, len, -0.37, Some((&x, &mut acc)));
        ew::scale(&mut cg, len, 1.13, Some(&mut acc));
        acc
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("axpy+scale", &run(mode), &want);
    }
}

#[test]
fn bias_and_reductions_agree_across_backends() {
    use swdnn::elementwise as ew;
    let (batch, channels, spatial) = (3, 5, ew::CHUNK + 19);
    let bias = values(channels, 27);
    let data0 = values(batch * channels * spatial, 28);

    let run = |mode: ExecMode| {
        let mut data = data0.clone();
        let mut cg = CoreGroup::new(mode);
        ew::bias_forward(&mut cg, batch, channels, spatial, Some((&bias, &mut data)));
        data
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("bias fwd", &run(mode), &want);
    }

    let run = |mode: ExecMode| {
        let mut db = vec![f32::NAN; channels];
        let mut cg = CoreGroup::new(mode);
        ew::bias_backward(&mut cg, batch, channels, spatial, Some((&data0, &mut db)));
        db
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("bias bwd", &run(mode), &want);
    }

    let (rows, row_len) = (9, 150);
    let rbias = values(row_len, 29);
    let rdata0 = values(rows * row_len, 30);
    let run = |mode: ExecMode| {
        let mut data = rdata0.clone();
        let mut cg = CoreGroup::new(mode);
        ew::bias_rows(&mut cg, rows, row_len, Some((&rbias, &mut data)));
        data
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("bias rows", &run(mode), &want);
    }

    let (srows, scols) = (17, 203);
    let m = values(srows * scols, 31);
    let run = |mode: ExecMode| {
        let mut out = vec![f32::NAN; scols];
        let mut cg = CoreGroup::new(mode);
        ew::col_sums(&mut cg, srows, scols, Some((&m, &mut out)));
        out
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        assert_bits_eq("col sums", &run(mode), &want);
    }

    // copy_blocks
    let src = values(400, 32);
    let run = |mode: ExecMode| {
        let mut dst = vec![f32::NAN; 500];
        let mut cg = CoreGroup::new(mode);
        ew::copy_blocks(&mut cg, 7, 12, Some((&src, 3, 30, &mut dst, 5, 40)));
        dst
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        let got = run(mode);
        // Untouched destination slots stay NaN in both paths; compare bits.
        assert_bits_eq("copy blocks", &got, &want);
    }

    // sumsq returns an f64; it must match to the last bit too.
    let v = values(ew::CHUNK * 3 + 41, 33);
    let run = |mode: ExecMode| {
        let mut cg = CoreGroup::new(mode);
        ew::sumsq(&mut cg, v.len(), Some(&v)).0
    };
    let want = run(ExecMode::Functional);
    for mode in HOST_MODES {
        let got = run(mode);
        assert_eq!(got.to_bits(), want.to_bits(), "sumsq: {got} vs {want}");
    }
}
