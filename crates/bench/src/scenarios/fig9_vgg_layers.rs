//! Fig. 9: per-layer forward and backward time of VGG-16 on the simulated
//! SW26010 vs the K40m model, batch 64 (per core group: 16).

use std::fmt::Write as _;

use baselines::{gpu_k40m, network_times};
use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net};
use swprof::Report;

use super::fig8_alexnet_layers::layer_phase;

pub fn run(_args: &[String]) -> (String, Report) {
    let cg_def = models::vgg16(16);
    let mut sw_net = Net::from_def(&cg_def, false).unwrap();
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    let (_, fwd) = sw_net.forward_with_times(&mut cg);
    let bwd = sw_net.backward_with_times(&mut cg);

    let full_def = models::vgg16(64);
    let gpu_net = Net::from_def(&full_def, false).unwrap();
    let gpu = network_times(&gpu_net, &gpu_k40m());

    let mut out = String::new();
    let mut report = Report::new("fig9_vgg_layers");
    report.config("network", "vgg16").config("chip_batch", 64);

    writeln!(out, "Fig. 9: VGG-16 per-layer time (seconds), batch 64").unwrap();
    writeln!(
        out,
        "{:<16} {:>12} {:>12} | {:>12} {:>12}",
        "layer", "SW fwd", "GPU fwd", "SW bwd", "GPU bwd"
    )
    .unwrap();
    let mut sw_conv_fwd = 0.0;
    let mut gpu_conv_fwd = 0.0;
    for (name, t) in &fwd.entries {
        let bwd_t = bwd
            .entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.seconds())
            .unwrap_or(0.0);
        let g = gpu.iter().find(|l| &l.name == name);
        let (gf, gb) = g.map(|l| (l.forward, l.backward)).unwrap_or((0.0, 0.0));
        if t.seconds() == 0.0 && gf == 0.0 {
            continue;
        }
        if name.starts_with("conv") {
            sw_conv_fwd += t.seconds();
            gpu_conv_fwd += gf;
        }
        writeln!(
            out,
            "{:<16} {:>12.6} {:>12.6} | {:>12.6} {:>12.6}",
            name,
            t.seconds(),
            gf,
            bwd_t,
            gb
        )
        .unwrap();
    }
    let sw_total = fwd.total().seconds() + bwd.total().seconds();
    let gpu_total: f64 = gpu.iter().map(|l| l.forward + l.backward).sum();
    let sw_conv_share = 100.0 * sw_conv_fwd / fwd.total().seconds();
    let gpu_conv_share = 100.0 * gpu_conv_fwd / gpu.iter().map(|l| l.forward).sum::<f64>();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Totals: SW {sw_total:.3} s vs GPU {gpu_total:.3} s per iteration -> SW at {:.2}x GPU speed \
         (paper Table III: 0.45). Convolution forward share: SW {sw_conv_share:.1}%, GPU {gpu_conv_share:.1}%.",
        gpu_total / sw_total,
    )
    .unwrap();

    report.phase_with_metrics(layer_phase("forward", &fwd.entries, fwd.total().seconds()));
    report.phase_with_metrics(layer_phase("backward", &bwd.entries, bwd.total().seconds()));
    report.real("sw_total_s", sw_total);
    report.real("gpu_total_s", gpu_total);
    report.real("sw_conv_fwd_share_pct", sw_conv_share);
    report.real("gpu_conv_fwd_share_pct", gpu_conv_share);
    (out, report)
}
