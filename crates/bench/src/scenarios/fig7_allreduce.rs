//! Fig. 7: the 8-node / 2-supernode all-reduce example — original
//! (natural rank order) vs improved (round-robin) halving/doubling, both
//! as the paper's closed-form costs and as measured by the step-level
//! simulator.

use std::fmt::Write as _;

use swnet::analysis::{allreduce_closed_form, fig7_example, EqInputs};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};
use swprof::Report;

pub fn run(_args: &[String]) -> (String, Report) {
    let n_elems = 1 << 20; // 4 MB of gradients
    let n = n_elems * 4;
    let params = NetParams::sunway(ReduceEngine::CpeClusters);
    let topo = Topology::with_supernode(8, 4);
    let mut out = String::new();
    let mut report = Report::new("fig7_allreduce");
    report
        .config("nodes", 8)
        .config("supernode", 4)
        .config("payload_bytes", n);

    writeln!(
        out,
        "Fig. 7: 8 nodes in 2 supernodes, all-reduce of {} MB",
        n >> 20
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "Symbolic costs (paper, right side of the figure):").unwrap();
    writeln!(
        out,
        "  original:  6a + 7/8 n*gamma + 3/4 n*beta1 +     n*beta2"
    )
    .unwrap();
    writeln!(
        out,
        "  improved:  6a + 7/8 n*gamma + 3/2 n*beta1 + 1/4 n*beta2"
    )
    .unwrap();
    let (orig_cf, imp_cf) = fig7_example(
        n,
        params.alpha_rendezvous,
        params.beta1,
        params.beta2(),
        params.gamma(),
    );
    writeln!(
        out,
        "  evaluated: original {:.3} ms, improved {:.3} ms",
        orig_cf * 1e3,
        imp_cf * 1e3
    )
    .unwrap();
    writeln!(out).unwrap();
    report.real("closed_form.original_s", orig_cf);
    report.real("closed_form.improved_s", imp_cf);

    let nat = allreduce(
        &topo,
        &params,
        RankMap::Natural,
        Algorithm::RecursiveHalvingDoubling,
        n_elems,
        None,
    );
    let rr = allreduce(
        &topo,
        &params,
        RankMap::RoundRobin,
        Algorithm::RecursiveHalvingDoubling,
        n_elems,
        None,
    );
    writeln!(out, "Step-level simulation:").unwrap();
    writeln!(
        out,
        "  original:  {:.3} ms over {} steps, {:.1} MB crossed the switch",
        nat.elapsed.seconds() * 1e3,
        nat.steps,
        nat.cross_bytes as f64 / 1e6
    )
    .unwrap();
    writeln!(
        out,
        "  improved:  {:.3} ms over {} steps, {:.1} MB crossed the switch",
        rr.elapsed.seconds() * 1e3,
        rr.steps,
        rr.cross_bytes as f64 / 1e6
    )
    .unwrap();
    writeln!(
        out,
        "  improvement: {:.2}x less wall time, {:.1}x less cross-supernode traffic",
        nat.elapsed.seconds() / rr.elapsed.seconds(),
        nat.cross_bytes as f64 / rr.cross_bytes as f64
    )
    .unwrap();
    writeln!(out).unwrap();
    // Step counts and traffic are algorithmic invariants: exact gates.
    report.count("natural.steps", nat.steps as u64);
    report.count("natural.cross_bytes", nat.cross_bytes);
    report.count("natural.total_bytes", nat.total_bytes);
    report.real("natural.elapsed_s", nat.elapsed.seconds());
    report.count("roundrobin.steps", rr.steps as u64);
    report.count("roundrobin.cross_bytes", rr.cross_bytes);
    report.count("roundrobin.total_bytes", rr.total_bytes);
    report.real("roundrobin.elapsed_s", rr.elapsed.seconds());

    // Large-scale closed forms (Eq. 2-6) for the production topology.
    writeln!(
        out,
        "Closed-form Eq. 2 at production scale (232.6 MB AlexNet gradients):"
    )
    .unwrap();
    for p in [256usize, 512, 1024] {
        let i = EqInputs {
            p,
            q: 256.min(p),
            n: 232 << 20,
        };
        let orig = allreduce_closed_form(i, &params, false);
        let imp = allreduce_closed_form(i, &params, true);
        writeln!(
            out,
            "  p = {p:4}: original {orig:.3} s, improved {imp:.3} s ({:.2}x)",
            orig / imp
        )
        .unwrap();
        report.real(&format!("eq2.p{p}.original_s"), orig);
        report.real(&format!("eq2.p{p}.improved_s"), imp);
    }
    (out, report)
}
