//! Table II: explicit vs implicit GEMM transformation for every
//! convolutional layer of VGG-16 at batch size 128 — forward, weight-diff
//! backward, and in-diff backward, plus achieved Gflops of the chosen
//! plan.

use std::fmt::Write as _;

use baselines::sw26010_spec;
use swdnn::{conv_explicit, conv_implicit, ConvShape};
use swprof::{KernelRecord, Report, StatsSnap};

/// The Table II shape sweep, re-exported from its canonical home in
/// `swtune` so the benchmarks, the tuner and the `swcheck` static lint
/// all agree on which shapes matter.
pub use swtune::shapes::vgg_conv_shapes;

fn gflops(flops: u64, t: f64) -> f64 {
    flops as f64 / t / 1e9
}

fn cell(t: Option<f64>) -> String {
    match t {
        Some(v) => format!("{v:6.2}"),
        None => format!("{:>6}", "-"),
    }
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("table2_conv");
    report.config("network", "vgg16").config("batch", 128);
    let spec = sw26010_spec();

    writeln!(
        out,
        "Table II: explicit vs implicit GEMM convolution, VGG-16 conv layers, batch = 128"
    )
    .unwrap();
    writeln!(
        out,
        "(times in seconds for the whole batch; Gflops = best plan's achieved rate)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>4} {:>4} {:>5} | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7}",
        "conv",
        "Ni",
        "No",
        "Ci/Ri",
        "fwd-im",
        "fwd-ex",
        "Gflops",
        "dW-im",
        "dW-ex",
        "Gflops",
        "dX-im",
        "dX-ex",
        "Gflops"
    )
    .unwrap();
    for (name, shape) in vgg_conv_shapes() {
        let shape: ConvShape = shape;
        let fwd_ex = conv_explicit::forward_time(&shape).seconds();
        let fwd_im = conv_implicit::supports_forward(&shape)
            .then(|| conv_implicit::forward_time(&shape).seconds());
        let dw_ex = conv_explicit::backward_weights_time(&shape).seconds();
        let dw_im = conv_implicit::supports_backward(&shape)
            .then(|| conv_implicit::backward_weights_time(&shape).seconds());
        // The first layer never needs an input gradient (paper: NA).
        let first = shape.in_c == 3;
        let dx_ex = (!first).then(|| conv_explicit::backward_input_time(&shape).seconds());
        let dx_im = (!first && conv_implicit::supports_backward(&shape))
            .then(|| conv_implicit::backward_input_time(&shape).seconds());

        let flops = shape.forward_flops();
        let best_fwd = fwd_im.map_or(fwd_ex, |i| i.min(fwd_ex));
        let g_fwd = gflops(flops, best_fwd);
        let g_dw = gflops(flops, dw_im.map_or(dw_ex, |i| i.min(dw_ex)));
        let g_dx = match (dx_im, dx_ex) {
            (Some(i), Some(e)) => Some(gflops(flops, i.min(e))),
            (None, Some(e)) => Some(gflops(flops, e)),
            _ => None,
        };

        writeln!(
            out,
            "{:>4} {:>4} {:>4} {:>5} | {} {} {:>7.2} | {} {} {:>7.2} | {} {} {}",
            name,
            shape.in_c,
            shape.out_c,
            shape.in_h,
            cell(fwd_im),
            cell(Some(fwd_ex)),
            g_fwd,
            cell(dw_im),
            cell(Some(dw_ex)),
            g_dw,
            cell(dx_im),
            cell(dx_ex),
            match g_dx {
                Some(v) => format!("{v:7.2}"),
                None => format!("{:>7}", "NA"),
            },
        )
        .unwrap();

        let key = format!("conv{name}");
        report.count(&format!("{key}.flops"), flops);
        report.real(&format!("{key}.fwd_explicit_s"), fwd_ex);
        report.real(&format!("{key}.dw_explicit_s"), dw_ex);
        if let Some(t) = fwd_im {
            report.real(&format!("{key}.fwd_implicit_s"), t);
        }
        if let Some(t) = dw_im {
            report.real(&format!("{key}.dw_implicit_s"), t);
        }
        if let Some(t) = dx_ex {
            report.real(&format!("{key}.dx_explicit_s"), t);
        }
        if let Some(t) = dx_im {
            report.real(&format!("{key}.dx_implicit_s"), t);
        }
        report.real(&format!("{key}.best_fwd_gflops"), g_fwd);

        // Roofline attribution of the best forward plan: the layer's
        // minimum DRAM traffic vs its arithmetic, against the SW26010's
        // floating-point peak and the measured DMA bandwidth.
        let snap = StatsSnap {
            dma_get_bytes: 4 * (shape.input_len() + shape.weight_len()) as u64,
            dma_put_bytes: 4 * shape.output_len() as u64,
            flops,
            busy_seconds: best_fwd,
            ..Default::default()
        };
        report.kernel(
            KernelRecord::new(&format!("{key}.fwd"), snap)
                .with_roofline(spec.peak_flops(), sw26010::arch::DMA_PEAK_BANDWIDTH),
        );
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Shape checks vs the paper: implicit unavailable for Ni=3 (conv1_1) and for \
         backward below 128 channels; implicit wins the large-image early layers and \
         the 14x14 conv5 block; the explicit plan is competitive in the middle of the \
         network; conv1_1 runs far below peak (742.4 Gflops)."
    )
    .unwrap();
    (out, report)
}
