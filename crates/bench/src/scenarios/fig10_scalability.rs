//! Fig. 10: weak-scaling speedup of swCaffe to 1024 nodes for AlexNet
//! (sub-mini-batch 64/128/256) and ResNet-50 (32/64).

use std::fmt::Write as _;

use sw26010::ExecMode;
use swcaffe_core::{models, NetDef, SolverConfig};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swprof::Report;
use swtrain::{ChipTrainer, ScalingModel};

pub const SCALES: [usize; 6] = [2, 8, 32, 128, 512, 1024];

pub fn node_model(cg_def: &NetDef) -> (f64, usize) {
    let mut t =
        ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly).expect("net build");
    let r = t.iteration(None);
    (ChipTrainer::iteration_time(&r).seconds(), t.param_elems())
}

/// The five Fig. 10 / Fig. 11 configurations: display label, metric key,
/// per-CG def (chip batch / 4), paper numbers at 1024 nodes
/// (speedup, comm %).
pub fn configs() -> Vec<(&'static str, &'static str, NetDef, f64, f64)> {
    vec![
        (
            "AlexNet B=64",
            "alexnet_b64",
            models::alexnet_bn(16),
            409.50,
            60.01,
        ),
        (
            "AlexNet B=128",
            "alexnet_b128",
            models::alexnet_bn(32),
            561.58,
            45.15,
        ),
        (
            "AlexNet B=256",
            "alexnet_b256",
            models::alexnet_bn(64),
            715.45,
            30.13,
        ),
        (
            "ResNet50 B=32",
            "resnet50_b32",
            models::resnet50(8),
            928.15,
            10.65,
        ),
        (
            "ResNet50 B=64",
            "resnet50_b64",
            models::resnet50(16),
            828.32,
            19.11,
        ),
    ]
}

pub fn scaling_model(node_time: f64, params: usize) -> ScalingModel {
    ScalingModel {
        node_time: sw26010::SimTime::from_seconds(node_time),
        param_elems: params,
        net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
        rank_map: RankMap::RoundRobin,
        algorithm: Algorithm::RecursiveHalvingDoubling,
        supernode_size: swnet::SUPERNODE_SIZE,
        io: None,
    }
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("fig10_scalability");

    writeln!(
        out,
        "Fig. 10: scalability of swCaffe (speedup over one node)"
    )
    .unwrap();
    write!(out, "{:<16}", "config").unwrap();
    for s in SCALES {
        write!(out, "{s:>9}").unwrap();
    }
    writeln!(out, "{:>14}", "paper@1024").unwrap();
    for (label, key, def, paper, _) in configs() {
        let (node_time, params) = node_model(&def);
        let model = scaling_model(node_time, params);
        report.count(&format!("{key}.param_elems"), params as u64);
        write!(out, "{label:<16}").unwrap();
        for s in SCALES {
            let speedup = model.point(s).speedup;
            write!(out, "{speedup:>9.1}").unwrap();
            report.real(&format!("{key}.speedup.{s}"), speedup);
        }
        writeln!(out, "{paper:>14.1}").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Shape checks: larger sub-mini-batches scale better (more compute per \
         gradient byte); ResNet-50 scales best (97.7 MB of parameters vs \
         AlexNet's 232.6 MB, far more compute per image)."
    )
    .unwrap();
    (out, report)
}
