//! Table I: comparison of SW26010, NVIDIA K40m and Intel KNL.

use std::fmt::Write as _;

use baselines::{intel_knl_spec, k40m_spec, sw26010_spec, DeviceSpec};
use swprof::Report;

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("table1_specs");
    let sw = sw26010_spec();
    let gpu = k40m_spec();
    let knl = intel_knl_spec();

    writeln!(
        out,
        "Table I: Comparison of SW, Intel KNL and NVIDIA K40m processors"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:>10}{:>12}{:>10}",
        "Specifications", "SW26010", "Nvidia K40m", "Intel KNL"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:>10}{:>12}{:>10}",
        "Release Year", sw.release_year, gpu.release_year, knl.release_year
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:>10}{:>12}{:>10}",
        "Bandwidth (GB/s)", sw.bandwidth_gbs, gpu.bandwidth_gbs, knl.bandwidth_gbs
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:>10}{:>12}{:>10}",
        "float perf. (TFlops)", sw.float_tflops, gpu.float_tflops, knl.float_tflops
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:>10}{:>12}{:>10}",
        "double perf. (TFlops)", sw.double_tflops, gpu.double_tflops, knl.double_tflops
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Derived: SW26010 flop-per-byte ratio = {:.1} (paper: 26.5 at the 28 GB/s \
         measured DMA peak; K40m {:.2}, KNL {:.2})",
        sw26010::arch::flop_per_byte_ratio(),
        gpu.float_tflops * 1e3 / gpu.bandwidth_gbs,
        knl.float_tflops * 1e3 / knl.bandwidth_gbs,
    )
    .unwrap();

    for spec in [&sw, &gpu, &knl] {
        record_spec(&mut report, spec);
    }
    report.real(
        "sw26010.measured_flop_per_byte",
        sw26010::arch::flop_per_byte_ratio(),
    );
    (out, report)
}

fn record_spec(report: &mut Report, spec: &DeviceSpec) {
    let key = spec.name.to_lowercase().replace(' ', "_");
    report.count(&format!("{key}.release_year"), spec.release_year as u64);
    report.real(&format!("{key}.bandwidth_gbs"), spec.bandwidth_gbs);
    report.real(&format!("{key}.float_tflops"), spec.float_tflops);
    report.real(&format!("{key}.double_tflops"), spec.double_tflops);
    report.real(&format!("{key}.machine_balance"), spec.machine_balance());
}
