//! Ablations of the design choices DESIGN.md calls out:
//!  1. register-communication GEMM vs per-CPE DMA replication (Principle 4)
//!  2. topology-aware vs natural vs ring vs binomial all-reduce
//!  3. CPE-cluster vs MPE reduction arithmetic
//!  4. packed vs per-layer gradient all-reduce
//!  5. striped vs single-split training-set layout
//!  6. continuous-DMA chunk size (Principle 3)

use std::fmt::Write as _;

use swdnn::gemm::{time_model, time_model_double_buffered, time_model_no_rlc, TilePlan};
use swdnn::GemmDims;
use swio::{IoModel, Layout};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};
use swprof::Report;

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("ablations");

    writeln!(
        out,
        "=== Ablation 1: GEMM with vs without register communication ==="
    )
    .unwrap();
    writeln!(out, "    (plus the double-buffered design-space probe)").unwrap();
    for (m, n, k) in [(512, 512, 512), (1024, 1024, 1024), (4096, 4096, 1024)] {
        let dims = GemmDims::new(m, n, k);
        let plan = TilePlan::choose(dims);
        let with = time_model(dims, 0.0, plan).seconds();
        let without = time_model_no_rlc(dims, plan).seconds();
        let db = time_model_double_buffered(dims, 0.0, plan).seconds();
        writeln!(
            out,
            "  {m}x{n}x{k}: RLC {:.3} ms, no-RLC {:.3} ms ({:.2}x from Principle 4),              double-buffered {:.3} ms ({:.2}x further)",
            with * 1e3,
            without * 1e3,
            without / with,
            db * 1e3,
            with / db
        )
        .unwrap();
        report.real(&format!("gemm.{m}x{n}x{k}.rlc_s"), with);
        report.real(&format!("gemm.{m}x{n}x{k}.no_rlc_s"), without);
        report.real(&format!("gemm.{m}x{n}x{k}.double_buffered_s"), db);
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "=== Ablation 2: all-reduce algorithm (1024 nodes, 232.6 MB) ==="
    )
    .unwrap();
    let topo = Topology::new(1024);
    let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
    let elems = 58_150_000;
    for (label, key, map, algo) in [
        (
            "topology-aware RHD (swCaffe)",
            "rhd_topology",
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
        ),
        (
            "natural RHD (stock MPICH)",
            "rhd_natural",
            RankMap::Natural,
            Algorithm::RecursiveHalvingDoubling,
        ),
        ("ring", "ring", RankMap::Natural, Algorithm::Ring),
        (
            "binomial tree",
            "binomial",
            RankMap::Natural,
            Algorithm::Binomial,
        ),
    ] {
        let r = allreduce(&topo, &params, map, algo, elems, None);
        writeln!(
            out,
            "  {label:<30} {:>8.3} s  ({} steps, {:.1} GB across the switch)",
            r.elapsed.seconds(),
            r.steps,
            r.cross_bytes as f64 / 1e9
        )
        .unwrap();
        report.real(&format!("allreduce.{key}.elapsed_s"), r.elapsed.seconds());
        report.count(&format!("allreduce.{key}.steps"), r.steps as u64);
        report.count(&format!("allreduce.{key}.cross_bytes"), r.cross_bytes);
    }
    let ps = swnet::parameter_server_round(&topo, &params, 0, elems);
    writeln!(
        out,
        "  {:<30} {:>8.3} s  (one port serialises all traffic; Sec. V-A's rejected design)",
        "parameter server",
        ps.elapsed.seconds()
    )
    .unwrap();
    report.real("allreduce.parameter_server.elapsed_s", ps.elapsed.seconds());

    writeln!(out).unwrap();
    writeln!(
        out,
        "=== Ablation 3: reduction arithmetic engine (1024 nodes, 232.6 MB) ==="
    )
    .unwrap();
    for (label, key, engine) in [
        ("CPE clusters", "cpe_clusters", ReduceEngine::CpeClusters),
        ("MPE", "mpe", ReduceEngine::Mpe),
    ] {
        let p = NetParams::sunway_allreduce(engine);
        let r = allreduce(
            &topo,
            &p,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            elems,
            None,
        );
        writeln!(out, "  {label:<14} {:>8.3} s", r.elapsed.seconds()).unwrap();
        report.real(
            &format!("reduce_engine.{key}.elapsed_s"),
            r.elapsed.seconds(),
        );
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "=== Ablation 4: packed vs per-layer gradient all-reduce (64 nodes, VGG-16) ==="
    )
    .unwrap();
    let vgg_layers: Vec<usize> = vec![
        1_728,
        36_864,
        73_728,
        147_456,
        294_912,
        589_824,
        589_824,
        1_179_648,
        2_359_296,
        2_359_296,
        2_359_296,
        2_359_296,
        2_359_296,
        102_760_448,
        16_777_216,
        4_096_000,
    ];
    let topo64 = Topology::with_supernode(64, 32);
    let (per_layer, packed) =
        swtrain::packing::per_layer_vs_packed(&topo64, &params, RankMap::RoundRobin, &vgg_layers);
    writeln!(
        out,
        "  per-layer: {per_layer:.3} s   packed: {packed:.3} s   -> {:.2}x",
        per_layer / packed
    )
    .unwrap();
    report.real("packing.per_layer_s", per_layer);
    report.real("packing.packed_s", packed);

    writeln!(out).unwrap();
    writeln!(
        out,
        "=== Ablation 5: file layout (192 MB mini-batch per node) ==="
    )
    .unwrap();
    let batch = 192 << 20;
    for n in [8usize, 64, 256, 1024] {
        let single = IoModel::taihulight(Layout::SingleSplit)
            .batch_read_time(n, batch)
            .seconds();
        let striped = IoModel::taihulight(Layout::paper_striped())
            .batch_read_time(n, batch)
            .seconds();
        writeln!(
            out,
            "  {n:>4} readers: single-split {single:>8.2} s/batch, striped {striped:>6.2} s/batch ({:.0}x)",
            single / striped
        )
        .unwrap();
        report.real(&format!("io.{n}readers.single_split_s"), single);
        report.real(&format!("io.{n}readers.striped_s"), striped);
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "=== Ablation 6: DMA transfer granularity (Principle 3) ==="
    )
    .unwrap();
    for size in [256usize, 1024, 4096, 16384] {
        let bw = sw26010::dma::continuous_aggregate_bandwidth(size, 64) / 1e9;
        writeln!(out, "  {size:>6} B per CPE: {bw:>6.2} GB/s aggregate").unwrap();
        report.real(&format!("dma.{size}B_per_cpe_gbs"), bw);
    }
    (out, report)
}
