//! Table III: training throughput (img/sec) of the five networks on the
//! 12-core CPU, the K40m GPU (both calibrated baseline models) and the
//! simulated SW26010 running swCaffe (one full chip: 4 core groups).

use std::fmt::Write as _;

use baselines::{cpu_e5_2680v3, gpu_k40m, throughput_img_per_sec};
use sw26010::ExecMode;
use swcaffe_core::{models, Net, NetDef, SolverConfig};
use swprof::Report;
use swtrain::ChipTrainer;

fn sw_img_per_sec(cg_def: &NetDef, chip_batch: usize) -> f64 {
    let mut t =
        ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly).expect("net build");
    let r = t.iteration(None);
    chip_batch as f64 / ChipTrainer::iteration_time(&r).seconds()
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("table3_networks");

    writeln!(
        out,
        "Table III: throughput (img/sec) on the three processors"
    )
    .unwrap();
    writeln!(
        out,
        "{:<11} {:>7} {:>9} {:>8} {:>8} {:>8}   (paper: SW/NV, SW/CPU)",
        "network", "CPU", "NV K40m", "SW", "SW/NV", "SW/CPU"
    )
    .unwrap();
    // (name, metric key, chip batch, per-CG def, full-batch def, paper row)
    type Case = (&'static str, &'static str, usize, NetDef, NetDef, [f64; 5]);
    let cases: Vec<Case> = vec![
        (
            "AlexNet",
            "alexnet",
            256,
            models::alexnet_bn(64),
            models::alexnet_bn(256),
            [12.01, 79.25, 94.17, 1.19, 7.84],
        ),
        (
            "VGG-16",
            "vgg16",
            64,
            models::vgg16(16),
            models::vgg16(64),
            [1.06, 13.79, 6.21, 0.45, 5.13],
        ),
        (
            "VGG-19",
            "vgg19",
            64,
            models::vgg19(16),
            models::vgg19(64),
            [1.07, 11.2, 5.52, 0.49, 5.15],
        ),
        (
            "ResNet-50",
            "resnet50",
            32,
            models::resnet50(8),
            models::resnet50(32),
            [1.99, 25.45, 5.56, 0.21, 2.79],
        ),
        (
            "GoogleNet",
            "googlenet",
            128,
            models::googlenet(32),
            models::googlenet(128),
            [4.92, 66.09, 14.97, 0.23, 3.04],
        ),
    ];
    for (name, key, batch, cg_def, full_def, paper) in cases {
        let net = Net::from_def(&full_def, false).unwrap();
        let cpu = throughput_img_per_sec(&net, &cpu_e5_2680v3(), batch);
        let gpu = throughput_img_per_sec(&net, &gpu_k40m(), batch);
        let sw = sw_img_per_sec(&cg_def, batch);
        writeln!(
            out,
            "{:<11} {:>7.2} {:>9.2} {:>8.2} {:>8.2} {:>8.2}   (paper: {:.2}, {:.2}; abs {} / {} / {})",
            name,
            cpu,
            gpu,
            sw,
            sw / gpu,
            sw / cpu,
            paper[3],
            paper[4],
            paper[0],
            paper[1],
            paper[2],
        )
        .unwrap();
        report.real(&format!("{key}.cpu_img_per_s"), cpu);
        report.real(&format!("{key}.gpu_img_per_s"), gpu);
        report.real(&format!("{key}.sw_img_per_s"), sw);
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Shape checks: swCaffe beats the K40m only on AlexNet (PCIe-bound data \
         staging on the GPU); VGG-class networks run at roughly half GPU speed; \
         ResNet-50/GoogLeNet, with their small-channel convolutions, are the \
         weakest relative to the GPU; SW is several times the 12-core CPU on \
         every network."
    )
    .unwrap();
    (out, report)
}
