//! Ablation: serialized packed all-reduce (the paper's Sec. V-A scheme)
//! vs backward-overlapped bucketed all-reduce at 64/256/1024 nodes.
//!
//! One representative node is measured in timing mode — per-iteration
//! phase times plus the per-layer gradient-ready timeline from
//! `ChipTrainer::compute_gradients_with_events` — and the
//! [`swtrain::OverlapModel`] projects both communication schedules to
//! scale. A bucket-size sweep at 1024 nodes shows the trade-off: small
//! buckets start communicating earlier but pay start-up latencies and
//! one bulk-synchronous straggler penalty per collective step for every
//! bucket, so the optimum grows with node count. The "tuned" column
//! picks the sweep's best size per network — the knob DDP users turn as
//! `bucket_cap_mb`.

use std::fmt::Write as _;

use sw26010::ExecMode;
use swcaffe_core::{models, NetDef, SolverConfig};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swprof::Report;
use swtrain::{ChipTrainer, OverlapModel, OverlapPoint, DEFAULT_BUCKET_BYTES};

pub const SCALES: [usize; 3] = [64, 256, 1024];

/// Bucket-size sweep (bytes) for the 1024-node study.
pub const SWEEP_BYTES: [usize; 5] = [
    8 << 20,
    DEFAULT_BUCKET_BYTES,
    64 << 20,
    128 << 20,
    usize::MAX, // one bucket == packed reduce launched at backward finish
];

/// The three networks of the study: display label, metric key, per-CG
/// def (chip batch / 4).
pub fn configs() -> Vec<(&'static str, &'static str, NetDef)> {
    vec![
        ("AlexNet B=64", "alexnet_b64", models::alexnet_bn(16)),
        ("VGG-16 B=64", "vgg16_b64", models::vgg16(16)),
        ("ResNet50 B=32", "resnet50_b32", models::resnet50(8)),
    ]
}

/// Measure one representative node and build the overlap model (vary
/// `bucket_bytes` on clones — the measurement is the expensive part).
pub fn overlap_model(cg_def: &NetDef, bucket_bytes: usize) -> OverlapModel {
    let mut chip =
        ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly).expect("net build");
    let (report, mut packed, events) = chip.compute_gradients_with_events(None);
    let (update, bcast) = chip.apply_update(&mut packed, 0.25);
    OverlapModel {
        node_time: report.compute + report.intra + update + bcast,
        compute: report.compute,
        events,
        total_elems: chip.param_elems(),
        net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
        rank_map: RankMap::RoundRobin,
        algorithm: Algorithm::RecursiveHalvingDoubling,
        supernode_size: swnet::SUPERNODE_SIZE,
        bucket_bytes,
    }
}

fn at_bucket(model: &OverlapModel, bytes: usize, nodes: usize) -> OverlapPoint {
    let mut m = model.clone();
    m.bucket_bytes = bytes;
    m.point(nodes)
}

/// Sweep bucket sizes at `nodes` and return `(bytes, point)` of the
/// fastest overlapped iteration.
pub fn tuned(model: &OverlapModel, nodes: usize) -> (usize, OverlapPoint) {
    SWEEP_BYTES
        .iter()
        .map(|&b| (b, at_bucket(model, b, nodes)))
        .min_by(|a, b| {
            a.1.overlapped_iter
                .seconds()
                .total_cmp(&b.1.overlapped_iter.seconds())
        })
        .expect("non-empty sweep")
}

fn bucket_label(bytes: usize) -> String {
    if bytes == usize::MAX {
        "whole".to_string()
    } else {
        format!("{}MB", bytes >> 20)
    }
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("ablation_overlap");
    report
        .config("algorithm", "rhd_roundrobin")
        .config("bucket_bytes", DEFAULT_BUCKET_BYTES as u64);

    writeln!(
        out,
        "Serialized packed vs backward-overlapped bucketed all-reduce\n\
         (iteration seconds; default bucket target {} MB, tuned = best of sweep)",
        DEFAULT_BUCKET_BYTES >> 20
    )
    .unwrap();
    writeln!(
        out,
        "{:<16}{:>6} {:>11} {:>12} {:>12} {:>14}",
        "config", "nodes", "serial (s)", "overlap (s)", "exposed (s)", "tuned (s)"
    )
    .unwrap();
    let mut alexnet_model = None;
    for (label, key, def) in configs() {
        let model = overlap_model(&def, DEFAULT_BUCKET_BYTES);
        report.count(
            &format!("{key}.param_mb"),
            ((model.total_elems * 4) >> 20) as u64,
        );
        for nodes in SCALES {
            let p = model.point(nodes);
            let (tuned_bytes, tp) = tuned(&model, nodes);
            writeln!(
                out,
                "{label:<16}{nodes:>6} {:>11.3} {:>12.3} {:>12.3} {:>8.3} {:>5}",
                p.serialized_iter.seconds(),
                p.overlapped_iter.seconds(),
                p.exposed_comm.seconds(),
                tp.overlapped_iter.seconds(),
                bucket_label(tuned_bytes),
            )
            .unwrap();
            report.real(
                &format!("{key}.serialized_iter_s.{nodes}"),
                p.serialized_iter.seconds(),
            );
            report.real(
                &format!("{key}.overlapped_iter_s.{nodes}"),
                p.overlapped_iter.seconds(),
            );
            report.real(
                &format!("{key}.exposed_comm_s.{nodes}"),
                p.exposed_comm.seconds(),
            );
            report.real(
                &format!("{key}.tuned_iter_s.{nodes}"),
                tp.overlapped_iter.seconds(),
            );
        }
        report.count(&format!("{key}.buckets"), model.point(1024).buckets as u64);
        if key == "alexnet_b64" {
            alexnet_model = Some(model);
        }
    }

    // Bucket sizing at 1024 nodes, AlexNet: each bucket pays its own
    // start-up latencies and one bulk-synchronous straggler penalty per
    // collective step, so tiny buckets erode the overlap win.
    writeln!(out).unwrap();
    writeln!(out, "Bucket-size sweep, AlexNet B=64 at 1024 nodes:").unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>8}",
        "bucket", "overlap (s)", "exposed (s)", "buckets"
    )
    .unwrap();
    let model = alexnet_model.expect("alexnet config present");
    for bytes in SWEEP_BYTES {
        let p = at_bucket(&model, bytes, 1024);
        writeln!(
            out,
            "{:<8} {:>12.3} {:>12.3} {:>8}",
            bucket_label(bytes),
            p.overlapped_iter.seconds(),
            p.exposed_comm.seconds(),
            p.buckets
        )
        .unwrap();
        let key = if bytes == usize::MAX {
            "whole".to_string()
        } else {
            format!("{}mb", bytes >> 20)
        };
        report.real(
            &format!("sweep.{key}.overlapped_iter_s"),
            p.overlapped_iter.seconds(),
        );
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "The serialized path stays the framework default (it is what the \
         paper measures). Overlap wins where the comm fraction is large \
         and the ready timeline front-loads big layers (AlexNet's fc); at \
         1024 nodes the per-bucket straggler cost pushes the optimal \
         bucket size up."
    )
    .unwrap();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_beats_serialized_at_1024_for_alexnet() {
        // The acceptance criterion: at 1024 nodes with AlexNet-sized
        // gradients (232.6 MB), the (tuned) overlapped iteration is
        // strictly below compute + serialized comm.
        let (_, _, def) = configs().swap_remove(0);
        let model = overlap_model(&def, DEFAULT_BUCKET_BYTES);
        let (bytes, p) = tuned(&model, 1024);
        assert!(p.buckets > 1, "tuned schedule must actually bucket");
        assert!(
            p.overlapped_iter.seconds() < p.serialized_iter.seconds(),
            "overlap must win at 1024 nodes: {} vs {} (bucket {})",
            p.overlapped_iter.seconds(),
            p.serialized_iter.seconds(),
            bucket_label(bytes),
        );
    }

    #[test]
    fn overlap_wins_at_every_scale_for_compute_heavy_nets() {
        // VGG/ResNet have far more compute per gradient byte; the
        // default bucket size already wins at every scale.
        for (label, _, def) in configs().into_iter().skip(1) {
            let model = overlap_model(&def, DEFAULT_BUCKET_BYTES);
            for nodes in SCALES {
                let p = model.point(nodes);
                assert!(
                    p.overlapped_iter.seconds() < p.serialized_iter.seconds(),
                    "{label} at {nodes}: {} vs {}",
                    p.overlapped_iter.seconds(),
                    p.serialized_iter.seconds()
                );
            }
        }
    }
}
