//! Fig. 11: communication time as a percentage of the iteration, for the
//! Fig. 10 configurations, from 2 to 1024 nodes.

use std::fmt::Write as _;

use swprof::Report;

use super::fig10_scalability::{configs, node_model, scaling_model, SCALES};

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("fig11_comm_fraction");

    writeln!(out, "Fig. 11: communication time share (%) per iteration").unwrap();
    write!(out, "{:<16}", "config").unwrap();
    for s in SCALES {
        write!(out, "{s:>8}").unwrap();
    }
    writeln!(out, "{:>13}", "paper@1024").unwrap();
    for (label, key, def, _, paper) in configs() {
        let (node_time, params) = node_model(&def);
        let model = scaling_model(node_time, params);
        write!(out, "{label:<16}").unwrap();
        for s in SCALES {
            let pct = 100.0 * model.point(s).comm_fraction;
            write!(out, "{pct:>8.2}").unwrap();
            report.real(&format!("{key}.comm_pct.{s}"), pct);
        }
        writeln!(out, "{paper:>13.2}").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Shape checks: the share grows with node count; AlexNet's smaller \
         sub-mini-batches communicate proportionally more; ResNet-50 stays \
         low (high compute-to-communication ratio). Note the paper reports \
         ResNet-50 B=64 (19.11%) above B=32 (10.65%) at 1024 nodes, which is \
         inconsistent with its own speedups (928x for B=32 > 828x for B=64); \
         this model reproduces the speedup-consistent direction."
    )
    .unwrap();
    (out, report)
}
