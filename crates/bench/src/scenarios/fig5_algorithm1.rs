//! Fig. 5 / Algorithm 1 demonstration: the control flow of one parallel
//! SSGD iteration on one SW26010 processor — four core-group threads,
//! handshake synchronisation, gradient gather at CG0, SGD update and
//! weight re-broadcast — with the per-phase simulated times.

use std::fmt::Write as _;

use baselines::sw26010_spec;
use sw26010::ExecMode;
use swcaffe_core::{models, SolverConfig};
use swprof::{KernelRecord, Report};
use swtrain::{profile, ChipTrainer};

pub fn run(args: &[String]) -> (String, Report) {
    let net = args
        .first()
        .map(String::as_str)
        .unwrap_or("alexnet")
        .to_string();
    let (def, chip_batch) = match net.as_str() {
        "alexnet" => (models::alexnet_bn(64), 256),
        "vgg16" => (models::vgg16(16), 64),
        "resnet50" => (models::resnet50(8), 32),
        other => panic!("unknown network '{other}'"),
    };
    let mut out = String::new();
    let mut report = Report::new("fig5_algorithm1");
    report
        .config("network", &net)
        .config("chip_batch", chip_batch);

    writeln!(
        out,
        "Algorithm 1 on one SW26010 processor — {net}, chip batch {chip_batch}"
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "  pthread_create()                 # 4 threads, one per core group"
    )
    .unwrap();
    writeln!(out, "  for each CG i in parallel:").unwrap();
    writeln!(out, "      sample b/4 = {} images", chip_batch / 4).unwrap();
    writeln!(out, "      forward + backward on CG i's CPE cluster").unwrap();
    writeln!(
        out,
        "  Simple_Sync()                    # handshake semaphore barrier"
    )
    .unwrap();
    writeln!(
        out,
        "  CG0: gather + sum gradients      # NoC transfer + CPE-cluster AXPY"
    )
    .unwrap();
    writeln!(
        out,
        "  (all-reduce across nodes)        # topology-aware halving/doubling"
    )
    .unwrap();
    writeln!(out, "  CG0: SGD update, re-broadcast weights").unwrap();
    writeln!(out, "  pthread_join()").unwrap();
    writeln!(out).unwrap();

    let mut trainer =
        ChipTrainer::new(&def, SolverConfig::default(), ExecMode::TimingOnly).expect("valid net");
    let iter = trainer.iteration(None);
    let total = ChipTrainer::iteration_time(&iter);
    writeln!(out, "measured (simulated) phase times:").unwrap();
    writeln!(
        out,
        "  per-CG forward/backward (max of 4): {:>9.3} s  ({:.1}%)",
        iter.compute.seconds(),
        100.0 * iter.compute.seconds() / total.seconds()
    )
    .unwrap();
    writeln!(
        out,
        "  gradient gather + weight bcast:     {:>9.3} s  ({:.1}%)",
        iter.intra.seconds(),
        100.0 * iter.intra.seconds() / total.seconds()
    )
    .unwrap();
    writeln!(
        out,
        "  SGD update:                         {:>9.3} s  ({:.1}%)",
        iter.update.seconds(),
        100.0 * iter.update.seconds() / total.seconds()
    )
    .unwrap();
    writeln!(
        out,
        "  total:                              {:>9.3} s",
        total.seconds()
    )
    .unwrap();
    let throughput = chip_batch as f64 / total.seconds();
    writeln!(
        out,
        "  => single-node throughput {throughput:.2} img/s (Table III SW column)"
    )
    .unwrap();
    writeln!(
        out,
        "  gradient payload for the cross-node all-reduce: {:.1} MB",
        trainer.param_bytes() as f64 / 1e6
    )
    .unwrap();

    report.phase_with_metrics(profile::chip_phase(&iter));
    report.real("throughput_img_per_sec", throughput);
    report.count("param_bytes", trainer.param_bytes() as u64);
    // Chip-wide hardware counters of the iteration, roofline-classified
    // against the SW26010 peaks (measured DMA bandwidth, Sec. II-A).
    let spec = sw26010_spec();
    report.kernel_with_metrics(
        KernelRecord::new("chip_iteration", (&trainer.stats()).into())
            .with_roofline(spec.peak_flops(), sw26010::arch::DMA_PEAK_BANDWIDTH),
    );
    (out, report)
}
