//! Fig. 2: DMA get/put bandwidth for continuous and strided access
//! patterns, as a function of per-CPE data size / block size and the
//! number of CPEs issuing concurrently.

use std::fmt::Write as _;

use sw26010::{dma, CoreGroup, MemView, MemViewMut};
use swprof::{KernelRecord, Report};

const GB: f64 = 1.0e9;
const CPE_COUNTS: [usize; 5] = [1, 8, 16, 32, 64];

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("fig2_dma");

    writeln!(
        out,
        "Fig. 2 (left): continuous DMA, aggregate bandwidth (GB/s)"
    )
    .unwrap();
    write!(out, "{:>10}", "size").unwrap();
    for n in CPE_COUNTS {
        write!(out, "{:>9}", format!("{n}CPE")).unwrap();
    }
    writeln!(out).unwrap();
    for size in [
        128, 256, 512, 1024, 2048, 4096, 8192, 16384, 24576, 32768, 49152,
    ] {
        write!(out, "{:>10}", human(size)).unwrap();
        for n in CPE_COUNTS {
            let bw = dma::continuous_aggregate_bandwidth(size, n) / GB;
            write!(out, "{bw:>9.2}").unwrap();
            report.real(&format!("continuous_gbs.{size}B.{n}cpe"), bw);
        }
        writeln!(out).unwrap();
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "Fig. 2 (right): strided DMA (32 KB total per CPE), aggregate bandwidth (GB/s)"
    )
    .unwrap();
    write!(out, "{:>10}", "block").unwrap();
    for n in CPE_COUNTS {
        write!(out, "{:>9}", format!("{n}CPE")).unwrap();
    }
    writeln!(out).unwrap();
    let total = 32 * 1024;
    for block in [
        4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
    ] {
        write!(out, "{:>10}", human(block)).unwrap();
        for n in CPE_COUNTS {
            let bw = dma::strided_aggregate_bandwidth(block, total, n) / GB;
            write!(out, "{bw:>9.2}").unwrap();
            report.real(&format!("strided_gbs.{block}B.{n}cpe"), bw);
        }
        writeln!(out).unwrap();
    }

    let peak = dma::continuous_aggregate_bandwidth(32768, 64) / GB;
    let mpe = 1.0 / dma::mpe_memcpy_time(1_000_000_000).seconds();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Reference points: 64-CPE continuous saturates at {peak:.1} GB/s (paper: ~28); \
         MPE memcpy path: {mpe:.1} GB/s (paper: 9.9).",
    )
    .unwrap();
    report.real("reference.continuous_64cpe_gbs", peak);
    report.real("reference.mpe_memcpy_gbs", mpe);

    // A real DMA round-trip microkernel on one core group: every CPE
    // fetches 1 KB, scales it, writes it back. The counter snapshot gates
    // the DMA accounting itself (bytes, request count) at 0% tolerance.
    let n = 256usize;
    let input = vec![1.0f32; 64 * n];
    let mut output = vec![0.0f32; 64 * n];
    let src = MemView::new(&input);
    let dst = MemViewMut::new(&mut output);
    let mut cg = CoreGroup::new(swbackend::default_functional_mode());
    cg.run(64, |cpe| {
        let mut buf = cpe.ldm.alloc_f32(n);
        cpe.dma_get(src, cpe.idx() * n, &mut buf);
        cpe.compute(n as u64, || {
            for v in buf.iter_mut() {
                *v *= 2.0;
            }
        });
        cpe.dma_put(dst, cpe.idx() * n, &buf);
    });
    assert!(
        output.iter().all(|&v| v == 2.0),
        "DMA round-trip corrupted data"
    );
    report.kernel_with_metrics(
        KernelRecord::new("dma_roundtrip", cg.stats().into()).with_roofline(
            sw26010::arch::CPE_CLUSTER_PEAK_FLOPS,
            sw26010::arch::DMA_PEAK_BANDWIDTH,
        ),
    );

    (out, report)
}

fn human(bytes: usize) -> String {
    if bytes >= 1024 {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}
