//! The experiment registry: every paper table/figure as a callable
//! scenario producing both the human-readable text and a structured
//! [`swprof::Report`].
//!
//! Scenarios are plain functions so `bench-check` can run them
//! in-process (no subprocess plumbing) and the per-figure binaries stay
//! one-line wrappers.

pub mod ablation_faults;
pub mod ablation_overlap;
pub mod ablation_tune;
pub mod ablations;
pub mod fig10_scalability;
pub mod fig11_comm_fraction;
pub mod fig2_dma;
pub mod fig5_algorithm1;
pub mod fig6_p2p;
pub mod fig7_allreduce;
pub mod fig8_alexnet_layers;
pub mod fig9_vgg_layers;
pub mod serve_faults;
pub mod serve_qps;
pub mod table1_specs;
pub mod table2_conv;
pub mod table3_networks;

/// One registered experiment.
pub struct Scenario {
    /// Registry key; also the binary name and the baseline file stem.
    pub name: &'static str,
    pub about: &'static str,
    /// Member of the fast regression subset CI runs on every push.
    pub fast: bool,
    /// Produce the text output and the structured report. `args` are the
    /// positional arguments (flags already stripped by the runner).
    pub run: fn(&[String]) -> (String, swprof::Report),
}

/// Every scenario, in paper order (post-paper additions at the end).
/// The `fast` subset covers the nine pillars: the DMA model (fig2),
/// Algorithm 1 on one chip (fig5), the topology-aware all-reduce
/// (fig7), the convolution engine (table2), the overlapped-
/// communication mode (ablation_overlap), the fault-tolerance
/// machinery (ablation_faults), the inference-serving stack
/// (serve_qps), the searched-tiling ablation (ablation_tune) and the
/// serving resilience layer (serve_faults).
pub static SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "fig2_dma",
        about: "DMA bandwidth vs transfer size, stride and CPE count",
        fast: true,
        run: fig2_dma::run,
    },
    Scenario {
        name: "fig5_algorithm1",
        about: "Algorithm 1 phase breakdown on one SW26010",
        fast: true,
        run: fig5_algorithm1::run,
    },
    Scenario {
        name: "fig6_p2p",
        about: "MPI P2P bandwidth/latency, Sunway vs Infiniband",
        fast: false,
        run: fig6_p2p::run,
    },
    Scenario {
        name: "fig7_allreduce",
        about: "topology-aware vs natural halving/doubling all-reduce",
        fast: true,
        run: fig7_allreduce::run,
    },
    Scenario {
        name: "fig8_alexnet_layers",
        about: "AlexNet per-layer times, SW vs K40m",
        fast: false,
        run: fig8_alexnet_layers::run,
    },
    Scenario {
        name: "fig9_vgg_layers",
        about: "VGG-16 per-layer times, SW vs K40m",
        fast: false,
        run: fig9_vgg_layers::run,
    },
    Scenario {
        name: "fig10_scalability",
        about: "weak-scaling speedup to 1024 nodes",
        fast: false,
        run: fig10_scalability::run,
    },
    Scenario {
        name: "fig11_comm_fraction",
        about: "communication share of the iteration vs node count",
        fast: false,
        run: fig11_comm_fraction::run,
    },
    Scenario {
        name: "table1_specs",
        about: "SW26010 / K40m / KNL specification comparison",
        fast: false,
        run: table1_specs::run,
    },
    Scenario {
        name: "table2_conv",
        about: "explicit vs implicit GEMM convolution, VGG-16 layers",
        fast: true,
        run: table2_conv::run,
    },
    Scenario {
        name: "table3_networks",
        about: "training throughput of five networks on three processors",
        fast: false,
        run: table3_networks::run,
    },
    Scenario {
        name: "ablations",
        about: "ablations of the six design principles",
        fast: false,
        run: ablations::run,
    },
    Scenario {
        name: "ablation_overlap",
        about: "serialized packed vs backward-overlapped bucketed all-reduce",
        fast: true,
        run: ablation_overlap::run,
    },
    Scenario {
        name: "ablation_faults",
        about: "checkpoint/restart overhead and injected-fault recovery",
        fast: true,
        run: ablation_faults::run,
    },
    Scenario {
        name: "serve_qps",
        about: "batched multi-CG inference serving at stepped QPS",
        fast: true,
        run: serve_qps::run,
    },
    Scenario {
        name: "ablation_tune",
        about: "hand-picked kernel blocking vs searched LDM tiling plans",
        fast: true,
        run: ablation_tune::run,
    },
    Scenario {
        name: "serve_faults",
        about: "fault-tolerant serving under injected replica failures",
        fast: true,
        run: serve_faults::run,
    },
];

/// Look a scenario up by registry key.
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_unique_and_findable() {
        for (i, s) in SCENARIOS.iter().enumerate() {
            assert_eq!(find(s.name).map(|f| f.name), Some(s.name));
            assert!(
                !SCENARIOS[..i].iter().any(|p| p.name == s.name),
                "duplicate scenario name {}",
                s.name
            );
        }
        assert!(find("no_such_figure").is_none());
    }

    #[test]
    fn fast_subset_is_the_ci_gate() {
        let fast: Vec<&str> = SCENARIOS
            .iter()
            .filter(|s| s.fast)
            .map(|s| s.name)
            .collect();
        assert_eq!(
            fast,
            [
                "fig2_dma",
                "fig5_algorithm1",
                "fig7_allreduce",
                "table2_conv",
                "ablation_overlap",
                "ablation_faults",
                "serve_qps",
                "ablation_tune",
                "serve_faults"
            ]
        );
    }

    #[test]
    fn every_scenario_produces_text_and_metrics() {
        // Only the fast subset — the full set runs in bench-check.
        for s in SCENARIOS.iter().filter(|s| s.fast) {
            let (text, report) = (s.run)(&[]);
            assert!(!text.is_empty(), "{}: empty text", s.name);
            assert_eq!(report.name, s.name);
            assert!(!report.metrics.is_empty(), "{}: no gated metrics", s.name);
        }
    }

    #[test]
    fn scenario_reports_are_deterministic() {
        // Byte-identical JSON across two in-process runs — the property
        // the regression gate relies on.
        let s = find("fig5_algorithm1").unwrap();
        let (_, a) = (s.run)(&[]);
        let (_, b) = (s.run)(&[]);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }
}
