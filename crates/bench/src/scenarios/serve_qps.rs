//! Batched inference serving: seeded open-loop arrivals at stepped QPS
//! against frozen/optimized AlexNet-BN and VGG-16, dispatched across
//! the chip's 4 CGs as independent replicas by `swserve`'s
//! deterministic dynamic batcher.
//!
//! Two halves per network:
//!
//! 1. **Graph freeze/optimize**: node counts before/after the optimizer
//!    (training-head elimination, structural folds, conv+BN+ReLU
//!    fusion) and the simulated per-batch latency of the optimized
//!    graph vs the unoptimized frozen graph — the serving win that
//!    exists before a single request arrives.
//! 2. **Serving sweep**: Poisson arrivals at 25%, 50% and 100% of the
//!    cluster's nominal capacity, coalesced under a latency SLO;
//!    reported as p50/p99 latency, throughput, shed count, mean batch
//!    size and per-CG utilization. Everything runs on the virtual
//!    clock (`TimingOnly` engines), so the whole sweep is deterministic
//!    and regression-gated like any other scenario.

use std::fmt::Write as _;

use sw26010::arch::CORE_GROUPS;
use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net, Phase};
use swprof::Report;
use swserve::batcher::{poisson_trace, BatchConfig};
use swserve::graph::optimize;
use swserve::Cluster;

/// Load factors of nominal cluster capacity the sweep steps through.
pub const LOAD_STEPS: [(u64, f64); 3] = [(25, 0.25), (50, 0.5), (100, 1.0)];

/// Requests per sweep step.
pub const REQUESTS: usize = 240;

struct ModelSpec {
    key: &'static str,
    def: swcaffe_core::NetDef,
    max_batch: usize,
}

fn model_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            key: "alexnet",
            def: models::alexnet_bn(16),
            max_batch: 16,
        },
        ModelSpec {
            key: "vgg16",
            def: models::vgg16(8),
            max_batch: 8,
        },
    ]
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("serve_qps");
    report
        .config("backend", "timing")
        .config("replicas", CORE_GROUPS.to_string())
        .config("requests_per_step", REQUESTS.to_string());

    writeln!(
        out,
        "Batched inference serving on one SW26010 ({CORE_GROUPS} CG replicas, virtual clock)"
    )
    .unwrap();

    for (mi, spec) in model_specs().into_iter().enumerate() {
        let graph = optimize(&spec.def).expect("model optimizes");
        let s = graph.stats;

        // Unoptimized frozen baseline: the training definition at test
        // phase on the timing backend.
        let mut unopt = Net::from_def_mode(&spec.def, ExecMode::TimingOnly).expect("valid def");
        unopt.set_phase(Phase::Test);
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        unopt.forward(&mut cg);
        let unopt_s = cg.elapsed().seconds();

        let mut cluster = Cluster::new(&graph, ExecMode::TimingOnly);
        let opt_s = cluster
            .latency_seconds(spec.max_batch)
            .expect("graph builds");

        writeln!(out).unwrap();
        writeln!(
            out,
            "{} (batch {}): {} -> {} nodes ({} training, {} dead, {} folded, {} fused); \
             per-batch {:.1} ms -> {:.1} ms",
            spec.key,
            spec.max_batch,
            s.source_layers,
            s.scheduled_nodes,
            s.removed_training,
            s.removed_dead,
            s.folded,
            s.fused,
            unopt_s * 1e3,
            opt_s * 1e3,
        )
        .unwrap();
        report.count(&format!("{}.nodes_src", spec.key), s.source_layers as u64);
        report.count(&format!("{}.nodes_opt", spec.key), s.scheduled_nodes as u64);
        report.count(
            &format!("{}.removed_training", spec.key),
            s.removed_training as u64,
        );
        report.count(&format!("{}.removed_dead", spec.key), s.removed_dead as u64);
        report.count(&format!("{}.folded", spec.key), s.folded as u64);
        report.count(&format!("{}.fused", spec.key), s.fused as u64);
        report.real(&format!("{}.batch_unopt_ms", spec.key), unopt_s * 1e3);
        report.real(&format!("{}.batch_opt_ms", spec.key), opt_s * 1e3);

        // Bucketed latency table (the batcher's execution model).
        write!(out, "  bucket latency:").unwrap();
        let mut b = 1;
        while b <= spec.max_batch {
            let l = cluster.latency_seconds(b).expect("graph builds");
            write!(out, "  b{b} {:.1} ms", l * 1e3).unwrap();
            report.real(&format!("{}.lat_b{b}_ms", spec.key), l * 1e3);
            b *= 2;
        }
        writeln!(out).unwrap();

        // Serving sweep at fractions of nominal capacity.
        let worst = cluster
            .latency_seconds(spec.max_batch)
            .expect("graph builds");
        let capacity = CORE_GROUPS as f64 * spec.max_batch as f64 / worst;
        let cfg = BatchConfig {
            max_batch: spec.max_batch,
            slo: 4.0 * worst,
            timeout: 0.5 * worst,
        };
        report.real(&format!("{}.slo_ms", spec.key), cfg.slo * 1e3);
        report.real(&format!("{}.capacity_qps", spec.key), capacity);

        writeln!(
            out,
            "  SLO {:.1} ms, timeout {:.1} ms, nominal capacity {:.1} qps",
            cfg.slo * 1e3,
            cfg.timeout * 1e3,
            capacity
        )
        .unwrap();
        writeln!(
            out,
            "  {:>5} {:>9} {:>9} {:>9} {:>9} {:>5} {:>7} {:>9}",
            "load", "qps", "p50 (ms)", "p99 (ms)", "thru", "shed", "batch", "util"
        )
        .unwrap();
        for (pct, frac) in LOAD_STEPS {
            let qps = capacity * frac;
            let trace = poisson_trace(1000 + mi as u64 * 100 + pct, qps, REQUESTS);
            let o = cluster.serve(&trace, &cfg).expect("SLO feasible");
            let p50 = o.latency_percentile(50.0);
            let p99 = o.latency_percentile(99.0);
            let avg_batch = if o.batches.is_empty() {
                0.0
            } else {
                o.served.len() as f64 / o.batches.len() as f64
            };
            let util = o.utilization();
            let util_mean = util.iter().sum::<f64>() / util.len() as f64;
            writeln!(
                out,
                "  {:>4}% {:>9.1} {:>9.2} {:>9.2} {:>9.1} {:>5} {:>7.2} {:>8.1}%",
                pct,
                qps,
                p50 * 1e3,
                p99 * 1e3,
                o.throughput(),
                o.shed.len(),
                avg_batch,
                util_mean * 100.0
            )
            .unwrap();
            let k = format!("{}.load{pct}", spec.key);
            report.real(&format!("{k}.qps"), qps);
            report.real(&format!("{k}.p50_ms"), p50 * 1e3);
            report.real(&format!("{k}.p99_ms"), p99 * 1e3);
            report.real(&format!("{k}.throughput_qps"), o.throughput());
            report.count(&format!("{k}.shed"), o.shed.len() as u64);
            report.count(&format!("{k}.batches"), o.batches.len() as u64);
            report.real(&format!("{k}.avg_batch"), avg_batch);
            for (i, u) in util.iter().enumerate() {
                report.real(&format!("{k}.util_cg{i}"), *u);
            }
        }
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "The optimizer's wins (head elimination, transform folds, fused \
         conv+bn+relu epilogues) land before any request arrives; the \
         batcher then trades queueing delay for batch efficiency under \
         the SLO, shedding only when arrivals outrun the 4-CG capacity."
    )
    .unwrap();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(report: &Report, name: &str) -> f64 {
        report
            .metric(name)
            .map(|m| m.value.as_f64())
            .unwrap_or_else(|| panic!("missing metric {name}"))
    }

    /// Acceptance criterion: the optimized graphs schedule fewer nodes
    /// and simulate a lower per-batch latency than the unoptimized
    /// frozen graphs.
    #[test]
    fn optimizer_shrinks_and_speeds_up_both_models() {
        let (_, report) = run(&[]);
        for key in ["alexnet", "vgg16"] {
            assert!(
                metric(&report, &format!("{key}.nodes_opt"))
                    < metric(&report, &format!("{key}.nodes_src")),
                "{key}: optimizer must remove nodes"
            );
            assert!(
                metric(&report, &format!("{key}.batch_opt_ms"))
                    < metric(&report, &format!("{key}.batch_unopt_ms")),
                "{key}: optimizer must lower per-batch latency"
            );
            assert!(metric(&report, &format!("{key}.removed_training")) >= 3.0);
        }
    }

    /// Admitted latencies respect the SLO at every load step, and the
    /// sweep actually batches under load.
    #[test]
    fn serving_meets_slo_and_batches() {
        let (_, report) = run(&[]);
        for key in ["alexnet", "vgg16"] {
            let slo = metric(&report, &format!("{key}.slo_ms"));
            for (pct, _) in LOAD_STEPS {
                let p99 = metric(&report, &format!("{key}.load{pct}.p99_ms"));
                assert!(
                    p99 <= slo + 1e-9,
                    "{key} load{pct}: p99 {p99} ms > SLO {slo} ms"
                );
            }
            assert!(
                metric(&report, &format!("{key}.load100.avg_batch")) > 1.5,
                "{key}: full load should coalesce real batches"
            );
        }
    }
}
