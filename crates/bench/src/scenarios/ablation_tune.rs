//! Ablation: hand-picked kernel blocking vs the `swtune` searched
//! tiling plans, across the Table II sweep (every VGG-16 conv layer at
//! batch 128). Times come from the kernels' own analytic cost models —
//! exactly what timing-only execution charges — so the comparison is
//! the one the tuner optimised and the one the benchmarks report.

use std::fmt::Write as _;

use swprof::Report;
use swtune::{tune_all, DEFAULT_SEED};

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("ablation_tune");
    report
        .config("network", "vgg16")
        .config("batch", 128)
        .config("seed", DEFAULT_SEED);

    let layers = tune_all(DEFAULT_SEED);

    writeln!(
        out,
        "Ablation: hand-picked kernel blocking vs searched LDM tiling plans (swtune)"
    )
    .unwrap();
    writeln!(
        out,
        "(cost-model seconds over each layer's training passes; dX skipped for conv1_1)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} | {:>9} {:>9} {:>6} | winners (fwd / dW / dX)",
        "conv", "hand-s", "tuned-s", "gain%"
    )
    .unwrap();

    let mut wins = 0usize;
    let (mut hand_total, mut tuned_total) = (0.0f64, 0.0f64);
    for l in &layers {
        let hand = l.hand_total();
        let tuned = l.tuned_total();
        hand_total += hand;
        tuned_total += tuned;
        wins += l.is_win() as usize;
        let labels: Vec<String> = l.passes.iter().map(|p| p.plan.label()).collect();
        writeln!(
            out,
            "{:>4} | {:9.3} {:9.3} {:5.1}% | {}",
            l.name,
            hand,
            tuned,
            100.0 * (1.0 - tuned / hand),
            labels.join(" / "),
        )
        .unwrap();
        let key = format!("conv{}", l.name);
        report.real(&format!("{key}.hand_s"), hand);
        report.real(&format!("{key}.tuned_s"), tuned);
    }
    report.count("layers", layers.len() as u64);
    report.count("tuned_wins", wins as u64);
    report.real("hand_total_s", hand_total);
    report.real("tuned_total_s", tuned_total);

    writeln!(out).unwrap();
    writeln!(
        out,
        "searched plans beat the hand blocking on {wins}/{} layers; \
         sweep total {hand_total:.2}s -> {tuned_total:.2}s ({:.1}% faster)",
        layers.len(),
        100.0 * (1.0 - tuned_total / hand_total),
    )
    .unwrap();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searched_plans_win_on_at_least_half_the_layers() {
        // The ISSUE's acceptance gate: tuned must strictly beat hand on
        // >= half of the 13 Table II shapes under the cost model.
        let layers = tune_all(DEFAULT_SEED);
        let wins = layers.iter().filter(|l| l.is_win()).count();
        assert!(
            2 * wins >= layers.len(),
            "tuned wins only {wins}/{} layers",
            layers.len()
        );
        // And never loses: the hand point is in every candidate set.
        for l in &layers {
            assert!(
                l.tuned_total() <= l.hand_total(),
                "conv{}: tuned {} > hand {}",
                l.name,
                l.tuned_total(),
                l.hand_total()
            );
        }
    }

    #[test]
    fn report_carries_the_win_count() {
        let (_, report) = run(&[]);
        let json = report.to_json_string();
        assert!(json.contains("tuned_wins"), "{json}");
    }
}
