//! Ablation: fault-tolerance overhead — what checkpoint/restart costs at
//! scale, and what the injected-fault machinery measures end to end.
//!
//! Two halves:
//!
//! 1. **Analytic**: for the AlexNet B=256 job of Fig. 10/11, the cost of
//!    writing a full-solver checkpoint (weights + momentum) through the
//!    striped filesystem and of restoring one (read-back + full-parameter
//!    resync all-reduce), then Young's first-order checkpoint/restart
//!    model on top: expected overhead fraction `C/tau + (tau/2 + R)/M`
//!    as a function of the checkpoint interval `tau` and the system MTBF
//!    `M = node_mtbf / nodes`, with the optimal interval
//!    `tau* = sqrt(2*C*M)` — at 64, 256 and 1024 nodes.
//!
//! 2. **Functional smoke**: a real 2-node training job with seeded
//!    message corruption and a node crash; the crash is detected at the
//!    collective, the job restores from its last checkpoint and replays
//!    bit-identically. The [`swtrain::FaultReport`] counters (injected
//!    faults, retries, detection latency, recovery wall-clock) become
//!    gated metrics, so a regression in the detection or retry paths
//!    shows up as baseline drift.

use std::fmt::Write as _;

use sw26010::arch::CORE_GROUPS;
use swcaffe_core::{models, SolverConfig};
use swio::{IoModel, Layout};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swprof::Report;
use swtrain::{
    pack_params, CgBatch, ClusterConfig, ClusterTrainer, CollectiveFault, FaultPlan, FaultSession,
    Recovery, ScalingModel,
};

pub const SCALES: [usize; 3] = [64, 256, 1024];

/// Per-node mean time between failures, in years.
pub const NODE_MTBF_YEARS: [f64; 3] = [1.0, 5.0, 25.0];

/// Checkpoint-interval sweep, in seconds.
pub const INTERVALS_S: [f64; 4] = [600.0, 1800.0, 3600.0, 7200.0];

const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Young's first-order expected overhead fraction: checkpoint rent
/// `C/tau` plus, once per MTBF, half an interval of lost work and one
/// restore.
pub fn overhead_fraction(ckpt_s: f64, restore_s: f64, tau_s: f64, mtbf_s: f64) -> f64 {
    ckpt_s / tau_s + (tau_s / 2.0 + restore_s) / mtbf_s
}

/// Young's optimal checkpoint interval `sqrt(2*C*M)`.
pub fn optimal_interval(ckpt_s: f64, mtbf_s: f64) -> f64 {
    (2.0 * ckpt_s * mtbf_s).sqrt()
}

/// The Fig. 10/11 job the analytic half reasons about.
fn scaling_model(io: IoModel) -> ScalingModel {
    ScalingModel {
        node_time: sw26010::SimTime::from_seconds(2.7),
        param_elems: 58_150_000,
        net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
        rank_map: RankMap::RoundRobin,
        algorithm: Algorithm::RecursiveHalvingDoubling,
        supernode_size: swnet::SUPERNODE_SIZE,
        io: Some((io, 192 << 20)),
    }
}

/// Deterministic synthetic inputs for the functional smoke.
fn synth_inputs(nodes: usize, classes: usize, img: usize, seed: usize) -> Vec<Vec<CgBatch>> {
    (0..nodes)
        .map(|node| {
            (0..CORE_GROUPS)
                .map(|cgi| {
                    let mut data = vec![0.0f32; img];
                    let class = (cgi + node * 2 + seed) % classes;
                    let labels = vec![class as f32];
                    for (i, v) in data.iter_mut().enumerate() {
                        let noise = (((i * 17 + node * 5 + cgi * 3 + seed * 7) % 83) as f32 / 83.0
                            - 0.5)
                            * 0.2;
                        let stripe = (i * classes / img) == class;
                        *v = noise + if stripe { 1.0 } else { 0.0 };
                    }
                    (data, labels)
                })
                .collect()
        })
        .collect()
}

fn smoke_cluster(def: &swcaffe_core::NetDef, nodes: usize) -> ClusterTrainer {
    ClusterTrainer::new(
        def,
        SolverConfig::default(),
        ClusterConfig {
            supernode_size: 2,
            ..ClusterConfig::swcaffe(nodes)
        },
        swbackend::default_functional_mode(),
    )
    .expect("valid net")
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("ablation_faults");
    report
        .config("job", "alexnet_b256_rhd")
        .config("layout", "paper_striped");

    // ---- analytic half -------------------------------------------------
    let io = IoModel::taihulight(Layout::paper_striped());
    let model = scaling_model(io);
    // Full-solver checkpoint: weights + momentum, f32.
    let ckpt_bytes = model.param_elems * 4 * 2;
    report.count("ckpt_mb", (ckpt_bytes >> 20) as u64);

    writeln!(
        out,
        "Checkpoint/restart overhead, AlexNet B=256 (Fig. 10/11 job, {} MB checkpoint)",
        ckpt_bytes >> 20
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>11}",
        "nodes", "iter (s)", "ckpt (s)", "restore (s)"
    )
    .unwrap();
    let mut costs = Vec::new();
    for nodes in SCALES {
        let p = model.point(nodes);
        // One writer drains the checkpoint through the same striped
        // filesystem model the prefetch path reads from.
        let ckpt_s = io.batch_read_time(1, ckpt_bytes).seconds();
        // Restore = read the checkpoint back + one full-parameter
        // all-reduce to resynchronise the reformed job.
        let restore_s = ckpt_s + p.comm.seconds();
        writeln!(
            out,
            "{nodes:>6} {:>9.3} {:>9.3} {:>11.3}",
            p.iter_time.seconds(),
            ckpt_s,
            restore_s
        )
        .unwrap();
        report.real(&format!("scale.{nodes}.iter_s"), p.iter_time.seconds());
        report.real(&format!("scale.{nodes}.ckpt_write_s"), ckpt_s);
        report.real(&format!("scale.{nodes}.restore_s"), restore_s);
        costs.push((nodes, ckpt_s, restore_s));
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "Young optimal interval tau* = sqrt(2*C*M), overhead = C/tau + (tau/2 + R)/M:"
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>11} {:>13} {:>11} {:>13}",
        "nodes", "node MTBF", "sys MTBF (h)", "tau* (s)", "overhead (%)"
    )
    .unwrap();
    for &(nodes, ckpt_s, restore_s) in &costs {
        for years in NODE_MTBF_YEARS {
            let mtbf_s = years * SECONDS_PER_YEAR / nodes as f64;
            let tau = optimal_interval(ckpt_s, mtbf_s);
            let pct = 100.0 * overhead_fraction(ckpt_s, restore_s, tau, mtbf_s);
            writeln!(
                out,
                "{nodes:>6} {:>10}y {:>13.1} {:>11.1} {:>13.3}",
                years,
                mtbf_s / 3600.0,
                tau,
                pct
            )
            .unwrap();
            let y = years as u64;
            report.real(&format!("young.{nodes}.mtbf{y}y.tau_opt_s"), tau);
            report.real(&format!("young.{nodes}.mtbf{y}y.overhead_opt_pct"), pct);
        }
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "Overhead (%) vs checkpoint interval, node MTBF 5 years:"
    )
    .unwrap();
    write!(out, "{:>6}", "nodes").unwrap();
    for tau in INTERVALS_S {
        write!(out, " {:>8}", format!("{}s", tau as u64)).unwrap();
    }
    writeln!(out, " {:>8}", "tau*").unwrap();
    for &(nodes, ckpt_s, restore_s) in &costs {
        let mtbf_s = 5.0 * SECONDS_PER_YEAR / nodes as f64;
        write!(out, "{nodes:>6}").unwrap();
        for tau in INTERVALS_S {
            let pct = 100.0 * overhead_fraction(ckpt_s, restore_s, tau, mtbf_s);
            write!(out, " {:>8.3}", pct).unwrap();
            report.real(
                &format!("sweep.{nodes}.tau{}.overhead_pct", tau as u64),
                pct,
            );
        }
        let tau = optimal_interval(ckpt_s, mtbf_s);
        let pct = 100.0 * overhead_fraction(ckpt_s, restore_s, tau, mtbf_s);
        writeln!(out, " {:>8.3}", pct).unwrap();
    }

    // ---- functional smoke ---------------------------------------------
    // Corrupted messages retried transparently, then a crash at iteration
    // 2, detected at the collective; restore from the iteration-2
    // checkpoint and replay. The replay must be bit-identical to a run
    // that never faulted.
    let classes = 3;
    let img = 3 * 8 * 8;
    let nodes = 2;
    let def = models::tiny_dropout_cnn(1, classes);

    let mut clean = smoke_cluster(&def, nodes);
    for it in 0..4 {
        clean.iteration(Some(&synth_inputs(nodes, classes, img, it)));
    }
    let want = pack_params(clean.chips[0].net());

    let mut faulty = smoke_cluster(&def, nodes);
    let mut faults = FaultSession::new(
        FaultPlan::new(2024)
            .corruption(0.3)
            .max_retries(8)
            .crash(1, 2),
    );
    for it in 0..2 {
        faulty
            .iteration_ft(
                Some(&synth_inputs(nodes, classes, img, it)),
                Some(&mut faults),
            )
            .expect("no crash scheduled before iteration 2");
    }
    let ckpt = faulty.checkpoint();
    let fault = faulty
        .iteration_ft(
            Some(&synth_inputs(nodes, classes, img, 2)),
            Some(&mut faults),
        )
        .expect_err("rank 1 crashes at iteration 2");
    let detected_dead = matches!(fault, CollectiveFault::DeadRank { rank: 1, .. });
    faulty
        .recover(&mut faults, Recovery::RestoreFromCheckpoint, Some(&ckpt))
        .expect("restore succeeds");
    for it in 2..4 {
        faulty
            .iteration_ft(
                Some(&synth_inputs(nodes, classes, img, it)),
                Some(&mut faults),
            )
            .expect("no faults after recovery");
    }
    let got = pack_params(faulty.chips[0].net());
    let bit_identical = want.len() == got.len()
        && want
            .iter()
            .zip(&got)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    let r = &faults.report;
    writeln!(out).unwrap();
    writeln!(
        out,
        "Functional smoke ({nodes} nodes, seeded corruption + crash at iter 2, restore):"
    )
    .unwrap();
    writeln!(
        out,
        "  crash detected: {detected_dead}   replay bit-identical: {bit_identical}"
    )
    .unwrap();
    writeln!(
        out,
        "  crashes {} detections {} corrupted {} retries {} exhausted {}",
        r.crashes, r.detections, r.corrupted_msgs, r.retries, r.retries_exhausted
    )
    .unwrap();
    writeln!(
        out,
        "  detect latency {:.6} s   retry cost {:.6} s   recovery {:.6} s",
        r.detect_latency_s, r.retry_cost_s, r.recovery_s
    )
    .unwrap();
    report.count("smoke.crash_detected", detected_dead as u64);
    report.count("smoke.replay_bit_identical", bit_identical as u64);
    report.count("smoke.crashes", r.crashes);
    report.count("smoke.detections", r.detections);
    report.count("smoke.corrupted_msgs", r.corrupted_msgs);
    report.count("smoke.retries", r.retries);
    report.count("smoke.retries_exhausted", r.retries_exhausted);
    report.real("smoke.detect_latency_s", r.detect_latency_s);
    report.real("smoke.retry_cost_s", r.retry_cost_s);
    report.real("smoke.recovery_s", r.recovery_s);

    writeln!(out).unwrap();
    writeln!(
        out,
        "At node MTBFs measured on real machines the optimal interval is \
         tens of minutes and the expected overhead stays under a percent; \
         the machinery only pays when faults actually fire, and the smoke \
         shows the detection/retry/restore path preserving bit-exact \
         training."
    )
    .unwrap();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_model_is_coherent() {
        // Overhead at the optimal interval never exceeds nearby intervals.
        let (c, r) = (30.0, 80.0);
        let mtbf = 5.0 * SECONDS_PER_YEAR / 1024.0;
        let tau = optimal_interval(c, mtbf);
        let at = |t: f64| overhead_fraction(c, r, t, mtbf);
        assert!(at(tau) <= at(tau * 0.5));
        assert!(at(tau) <= at(tau * 2.0));
        // More nodes -> shorter system MTBF -> shorter optimal interval.
        assert!(optimal_interval(c, mtbf) < optimal_interval(c, mtbf * 4.0));
    }

    #[test]
    fn smoke_counters_witness_the_faults() {
        let (_, report) = run(&[]);
        let count = |name: &str| {
            report
                .metric(name)
                .map(|m| m.value.as_f64())
                .unwrap_or(-1.0)
        };
        assert_eq!(count("smoke.crash_detected"), 1.0);
        assert_eq!(count("smoke.replay_bit_identical"), 1.0);
        assert_eq!(count("smoke.crashes"), 1.0);
        assert_eq!(count("smoke.detections"), 1.0);
        assert!(
            count("smoke.corrupted_msgs") > 0.0,
            "corruption never fired"
        );
        assert_eq!(count("smoke.retries"), count("smoke.corrupted_msgs"));
        assert_eq!(count("smoke.retries_exhausted"), 0.0);
        assert!(count("smoke.recovery_s") > 0.0);
    }
}
