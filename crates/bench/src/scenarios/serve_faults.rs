//! Fault-tolerant serving under injected replica failures: the
//! `swserve` resilience layer (health state machine, deadline-aware
//! retry/failover, hedged dispatch, snapshot re-warm, tiered brown-out)
//! driven by seeded `swfault` serving plans against frozen/optimized
//! AlexNet-BN on the chip's 4 CG replicas.
//!
//! Three fault plans — a mid-trace replica crash, a probabilistic
//! straggler window, a transient output-corruption window — each swept
//! at 25%, 50% and 100% of nominal cluster capacity. Everything runs on
//! the virtual clock with every fault drawn pure from the plan seed, so
//! the full schedule (crashes, retries, health transitions, brown-out
//! sheds) is deterministic and regression-gated: the blessed baseline
//! proves that p99 stays inside the SLO with one replica lost and that
//! nothing is shed at ≤ 50% load, and the `replay.bit_identical` metric
//! proves the whole outcome replays byte-for-byte.
//!
//! The re-warm cost is not a free parameter: it is the frozen AlexNet
//! snapshot read back through the same striped-filesystem model the
//! training checkpoints use (`ablation_faults`).

use std::fmt::Write as _;

use sw26010::arch::CORE_GROUPS;
use sw26010::ExecMode;
use swcaffe_core::{models, Net, Phase};
use swfault::serve::ServeFaultPlan;
use swio::{IoModel, Layout};
use swprof::Report;
use swserve::batcher::{poisson_trace_tiered, BatchConfig};
use swserve::graph::{optimize, FrozenGraph};
use swserve::{Cluster, ResilienceConfig};

/// Load factors of nominal cluster capacity the sweep steps through.
pub const LOAD_STEPS: [(u64, f64); 3] = [(25, 0.25), (50, 0.5), (100, 1.0)];

/// Requests per sweep cell.
pub const REQUESTS: usize = 240;

const MAX_BATCH: usize = 16;

/// The three fault archetypes the sweep injects. Windows are placed
/// relative to the expected trace span so every load step actually
/// overlaps its faults.
fn plans(span: f64, worst: f64) -> Vec<(&'static str, ServeFaultPlan)> {
    let base = |seed| {
        ServeFaultPlan::new(seed)
            .detect_timeout_s(0.2 * worst)
            .backoff_base_s(0.01 * worst)
    };
    vec![
        // One of four CGs dies a quarter of the way into the trace.
        ("crash", base(0xC0FE).crash(1, 0.25 * span)),
        // CG 2 straggles 30% of its batches by 4x for most of the trace.
        (
            "straggle",
            base(0x57A6).straggle(2, 0.3, 4.0, 0.0..0.8 * span),
        ),
        // CG 0 corrupts 30% of its responses in an early window.
        (
            "corrupt",
            base(0xC0BB).corrupt_output(0, 0.3, 0.05 * span..0.5 * span),
        ),
    ]
}

pub fn run(_args: &[String]) -> (String, Report) {
    let mut out = String::new();
    let mut report = Report::new("serve_faults");

    let def = models::alexnet_bn(MAX_BATCH);
    let graph = optimize(&def).expect("model optimizes");

    // Price the re-warm: the frozen snapshot (weights the crashed CG
    // must reload) read back through the striped filesystem, exactly
    // like a training checkpoint restore.
    let snapshot_bytes = {
        let mut net = Net::from_def_mode_seeded(&def, swbackend::default_functional_mode(), 42)
            .expect("valid def");
        net.set_phase(Phase::Test);
        FrozenGraph::freeze(&def, &net)
            .expect("model freezes")
            .snapshot_bytes()
    };
    let io = IoModel::taihulight(Layout::paper_striped());
    let rewarm_s = io.batch_read_time(1, snapshot_bytes as usize).seconds();

    let mut cluster = Cluster::new(&graph, ExecMode::TimingOnly);
    let worst = cluster
        .latency_seconds(MAX_BATCH)
        .expect("frozen graph builds");
    let capacity = CORE_GROUPS as f64 * MAX_BATCH as f64 / worst;
    let cfg = BatchConfig {
        max_batch: MAX_BATCH,
        slo: 4.0 * worst,
        timeout: 0.5 * worst,
    };
    let res = ResilienceConfig {
        rewarm_s,
        ..ResilienceConfig::default()
    };

    report
        .config("backend", "timing")
        .config("model", "alexnet_bn")
        .config("replicas", CORE_GROUPS.to_string())
        .config("requests_per_cell", REQUESTS.to_string());
    report.count("snapshot_mb", snapshot_bytes >> 20);
    report.real("rewarm_ms", rewarm_s * 1e3);
    report.real("slo_ms", cfg.slo * 1e3);
    report.real("capacity_qps", capacity);

    writeln!(
        out,
        "Fault-tolerant serving, AlexNet-BN on {CORE_GROUPS} CG replicas \
         (SLO {:.1} ms, re-warm {:.1} ms = {} MB snapshot read-back)",
        cfg.slo * 1e3,
        rewarm_s * 1e3,
        snapshot_bytes >> 20,
    )
    .unwrap();

    // Reference span at 50% load, used to anchor every plan's windows so
    // the fault schedule is the same physical scenario at each load.
    let span_ref = REQUESTS as f64 / (0.5 * capacity);

    for (plan_key, plan) in plans(span_ref, worst) {
        writeln!(out).unwrap();
        writeln!(out, "plan {plan_key}:").unwrap();
        writeln!(
            out,
            "  {:>5} {:>9} {:>9} {:>9} {:>6} {:>6} {:>7} {:>7} {:>7}",
            "load", "qps", "p50 (ms)", "p99 (ms)", "served", "shed", "retry", "hedge", "deaths"
        )
        .unwrap();
        for (pct, frac) in LOAD_STEPS {
            let qps = capacity * frac;
            // Tiers 0/1 alternate so severe brown-out has traffic to
            // discriminate.
            let trace = poisson_trace_tiered(5000 + pct, qps, REQUESTS, &[0, 1]);
            let o = cluster
                .serve_ft(&trace, &cfg, &res, &plan)
                .expect("SLO feasible");
            let p50 = o.outcome.latency_percentile(50.0);
            let p99 = o.outcome.latency_percentile(99.0);
            writeln!(
                out,
                "  {:>4}% {:>9.1} {:>9.2} {:>9.2} {:>6} {:>6} {:>7} {:>7} {:>7}",
                pct,
                qps,
                p50 * 1e3,
                p99 * 1e3,
                o.outcome.served.len(),
                o.outcome.shed.len(),
                o.health.retries,
                o.health.hedges,
                o.health.dead_transitions,
            )
            .unwrap();
            let k = format!("{plan_key}.load{pct}");
            report.real(&format!("{k}.p50_ms"), p50 * 1e3);
            report.real(&format!("{k}.p99_ms"), p99 * 1e3);
            report.count(&format!("{k}.served"), o.outcome.served.len() as u64);
            report.count(&format!("{k}.shed"), o.outcome.shed.len() as u64);
            report.count(&format!("{k}.transitions"), o.transitions.len() as u64);
            o.health.export(&mut report, &format!("{k}.health"));
            report.count(&format!("{k}.faults.crashes"), o.faults.crashes);
            report.count(
                &format!("{k}.faults.degraded_batches"),
                o.faults.degraded_batches,
            );
            report.count(
                &format!("{k}.faults.straggled_batches"),
                o.faults.straggled_batches,
            );
            report.count(
                &format!("{k}.faults.corrupted_responses"),
                o.faults.corrupted_responses,
            );
        }
    }

    // Bit-identical replay proof: the crash plan's 50% cell run twice,
    // full outcome compared field for field.
    let (_, crash_plan) = plans(span_ref, worst).remove(0);
    let trace = poisson_trace_tiered(5050, 0.5 * capacity, REQUESTS, &[0, 1]);
    let a = cluster
        .serve_ft(&trace, &cfg, &res, &crash_plan)
        .expect("feasible");
    let b = cluster
        .serve_ft(&trace, &cfg, &res, &crash_plan)
        .expect("feasible");
    let identical = a.outcome.served == b.outcome.served
        && a.outcome.batches == b.outcome.batches
        && a.outcome.shed == b.outcome.shed
        && a.transitions == b.transitions
        && a.health == b.health
        && a.faults == b.faults;
    report.count("replay.bit_identical", u64::from(identical));

    writeln!(out).unwrap();
    writeln!(
        out,
        "Losing 1 of 4 CGs sheds nothing at <= 50% load: lost batches fail \
         over inside their deadline budget, the dead CG re-warms from its \
         frozen snapshot and rejoins, and every served request stays inside \
         the SLO by construction. Replay of the crash cell is bit-identical: {}.",
        if identical { "yes" } else { "NO" }
    )
    .unwrap();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(report: &Report, name: &str) -> f64 {
        report
            .metric(name)
            .map(|m| m.value.as_f64())
            .unwrap_or_else(|| panic!("missing metric {name}"))
    }

    /// Acceptance criterion: with one of four replicas crashed
    /// mid-trace, p99 stays inside the SLO and the shed rate is zero at
    /// every load at or below 50% of capacity.
    #[test]
    fn crash_keeps_slo_and_sheds_nothing_at_half_load() {
        let (_, report) = run(&[]);
        let slo = metric(&report, "slo_ms");
        for pct in [25u64, 50] {
            let p99 = metric(&report, &format!("crash.load{pct}.p99_ms"));
            assert!(p99 <= slo + 1e-9, "load{pct}: p99 {p99} ms > SLO {slo} ms");
            assert_eq!(
                metric(&report, &format!("crash.load{pct}.shed")),
                0.0,
                "load{pct}: crash must shed nothing at <= 50% load"
            );
            assert_eq!(
                metric(&report, &format!("crash.load{pct}.faults.crashes")),
                1.0
            );
        }
        // Served requests meet the SLO at every cell of every plan.
        for plan in ["crash", "straggle", "corrupt"] {
            for (pct, _) in LOAD_STEPS {
                let p99 = metric(&report, &format!("{plan}.load{pct}.p99_ms"));
                assert!(p99 <= slo + 1e-9, "{plan} load{pct}: p99 over SLO");
            }
        }
    }

    /// Every fault archetype actually fires, and the replay proof holds.
    #[test]
    fn faults_fire_and_replay_is_bit_identical() {
        let (_, report) = run(&[]);
        assert_eq!(metric(&report, "replay.bit_identical"), 1.0);
        assert!(metric(&report, "straggle.load50.faults.straggled_batches") >= 1.0);
        assert!(metric(&report, "corrupt.load50.faults.corrupted_responses") >= 1.0);
        assert!(metric(&report, "corrupt.load50.health.retries") >= 1.0);
        assert!(metric(&report, "crash.load50.health.failovers") >= 1.0);
    }
}
