//! Fig. 6: MPI P2P bandwidth and latency, Sunway network vs Infiniband
//! FDR, including the over-subscribed cross-supernode case.

use std::fmt::Write as _;

use swnet::{NetParams, ReduceEngine};
use swprof::Report;

const GB: f64 = 1.0e9;

pub fn run(_args: &[String]) -> (String, Report) {
    let sw = NetParams::sunway(ReduceEngine::Mpe);
    let ib = NetParams::infiniband();
    let mut out = String::new();
    let mut report = Report::new("fig6_p2p");

    writeln!(out, "Fig. 6 (left): P2P bandwidth (GB/s) vs message size").unwrap();
    writeln!(
        out,
        "{:>8} {:>10} {:>14} {:>12}",
        "size", "SW", "SW oversub", "Infiniband"
    )
    .unwrap();
    let mut size = 1usize;
    while size <= 4 << 20 {
        let (bw_sw, bw_os, bw_ib) = (
            sw.p2p_bandwidth(size, false) / GB,
            sw.p2p_bandwidth(size, true) / GB,
            ib.p2p_bandwidth(size, false) / GB,
        );
        writeln!(
            out,
            "{:>8} {bw_sw:>10.3} {bw_os:>14.3} {bw_ib:>12.3}",
            human(size)
        )
        .unwrap();
        report.real(&format!("bw_gbs.sw.{size}B"), bw_sw);
        report.real(&format!("bw_gbs.sw_oversub.{size}B"), bw_os);
        report.real(&format!("bw_gbs.ib.{size}B"), bw_ib);
        size *= 4;
    }

    writeln!(out).unwrap();
    writeln!(out, "Fig. 6 (right): P2P latency (us) vs message size").unwrap();
    writeln!(out, "{:>8} {:>10} {:>12}", "size", "SW", "Infiniband").unwrap();
    let mut size = 2usize;
    while size <= 2 << 20 {
        let (lat_sw, lat_ib) = (sw.p2p_latency(size).micros(), ib.p2p_latency(size).micros());
        writeln!(out, "{:>8} {lat_sw:>10.1} {lat_ib:>12.1}", human(size)).unwrap();
        report.real(&format!("lat_us.sw.{size}B"), lat_sw);
        report.real(&format!("lat_us.ib.{size}B"), lat_ib);
        size *= 4;
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Shape checks: SW saturates at {:.1} GB/s (paper: 12 of 16 theoretical); \
         over-subscribed is ~1/4; SW latency exceeds IB beyond the {} B eager limit.",
        sw.p2p_bandwidth(4 << 20, false) / GB,
        sw.eager_limit,
    )
    .unwrap();
    report.count("sw.eager_limit_bytes", sw.eager_limit as u64);
    (out, report)
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1024 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}
