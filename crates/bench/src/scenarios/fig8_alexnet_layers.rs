//! Fig. 8: per-layer forward and backward time of AlexNet(-BN) on the
//! simulated SW26010 vs the K40m model, batch 256 (per core group: 64).

use std::fmt::Write as _;

use baselines::{gpu_k40m, network_times};
use sw26010::{CoreGroup, ExecMode};
use swcaffe_core::{models, Net};
use swprof::{PhaseTiming, Report};

pub fn run(_args: &[String]) -> (String, Report) {
    // SW26010: each core group runs a quarter of the 256 batch.
    let cg_def = models::alexnet_bn(64);
    let mut sw_net = Net::from_def(&cg_def, false).unwrap();
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    let (_, fwd) = sw_net.forward_with_times(&mut cg);
    let bwd = sw_net.backward_with_times(&mut cg);

    // K40m: whole batch on the device.
    let full_def = models::alexnet_bn(256);
    let gpu_net = Net::from_def(&full_def, false).unwrap();
    let gpu = network_times(&gpu_net, &gpu_k40m());

    let mut out = String::new();
    let mut report = Report::new("fig8_alexnet_layers");
    report
        .config("network", "alexnet_bn")
        .config("chip_batch", 256);

    writeln!(out, "Fig. 8: AlexNet per-layer time (seconds), batch 256").unwrap();
    writeln!(
        out,
        "{:<14} {:>12} {:>12} | {:>12} {:>12}",
        "layer", "SW fwd", "GPU fwd", "SW bwd", "GPU bwd"
    )
    .unwrap();
    for (name, t) in &fwd.entries {
        let bwd_t = bwd
            .entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.seconds())
            .unwrap_or(0.0);
        let g = gpu.iter().find(|l| &l.name == name);
        let (gf, gb) = g.map(|l| (l.forward, l.backward)).unwrap_or((0.0, 0.0));
        if t.seconds() == 0.0 && gf == 0.0 {
            continue;
        }
        writeln!(
            out,
            "{:<14} {:>12.6} {:>12.6} | {:>12.6} {:>12.6}",
            name,
            t.seconds(),
            gf,
            bwd_t,
            gb
        )
        .unwrap();
    }
    let sw_total = fwd.total().seconds() + bwd.total().seconds();
    let gpu_total: f64 = gpu.iter().map(|l| l.forward + l.backward).sum();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Totals: SW {:.3} s vs GPU {:.3} s per iteration -> SW is {:.2}x the GPU \
         (paper Table III: 1.19x, because PCIe data staging dominates the GPU).",
        sw_total,
        gpu_total,
        gpu_total / sw_total
    )
    .unwrap();

    report.phase_with_metrics(layer_phase("forward", &fwd.entries, fwd.total().seconds()));
    report.phase_with_metrics(layer_phase("backward", &bwd.entries, bwd.total().seconds()));
    report.real("sw_total_s", sw_total);
    report.real("gpu_total_s", gpu_total);
    (out, report)
}

/// A per-layer timing breakdown as one phase tree (zero-cost layers are
/// dropped to keep the baselines readable).
pub fn layer_phase(name: &str, entries: &[(String, sw26010::SimTime)], total: f64) -> PhaseTiming {
    let mut p = PhaseTiming::new(name, total);
    for (layer, t) in entries {
        if t.seconds() > 0.0 {
            p = p.child(PhaseTiming::leaf(layer, *t));
        }
    }
    p
}
