//! Thin wrapper over `scenarios::fig8_alexnet_layers`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig8_alexnet_layers");
}
