//! Thin wrapper over `scenarios::ablation_faults`; `--json <path>` writes
//! the structured report alongside the text tables.

fn main() {
    swcaffe_bench::runner::scenario_main("ablation_faults");
}
