//! Thin wrapper over `scenarios::ablation_overlap`; `--json <path>` writes
//! the structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("ablation_overlap");
}
