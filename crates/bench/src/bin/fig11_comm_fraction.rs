//! Fig. 11: communication time as a percentage of the iteration, for the
//! Fig. 10 configurations, from 2 to 1024 nodes.

use sw26010::ExecMode;
use swcaffe_core::{models, NetDef, SolverConfig};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swtrain::{ChipTrainer, ScalingModel};

fn node_model(cg_def: &NetDef) -> (f64, usize) {
    let mut t = ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly)
        .expect("net build");
    let r = t.iteration(None);
    (ChipTrainer::iteration_time(&r).seconds(), t.param_elems())
}

fn main() {
    println!("Fig. 11: communication time share (%) per iteration");
    let configs: Vec<(&str, NetDef, f64)> = vec![
        ("AlexNet B=64", models::alexnet_bn(16), 60.01),
        ("AlexNet B=128", models::alexnet_bn(32), 45.15),
        ("AlexNet B=256", models::alexnet_bn(64), 30.13),
        ("ResNet50 B=32", models::resnet50(8), 10.65),
        ("ResNet50 B=64", models::resnet50(16), 19.11),
    ];
    let scales = [2usize, 8, 32, 128, 512, 1024];
    print!("{:<16}", "config");
    for s in scales {
        print!("{s:>8}");
    }
    println!("{:>13}", "paper@1024");
    for (label, def, paper) in configs {
        let (node_time, params) = node_model(&def);
        let model = ScalingModel {
            node_time: sw26010::SimTime::from_seconds(node_time),
            param_elems: params,
            net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            io: None,
        };
        print!("{label:<16}");
        for s in scales {
            print!("{:>8.2}", 100.0 * model.point(s).comm_fraction);
        }
        println!("{paper:>13.2}");
    }
    println!();
    println!(
        "Shape checks: the share grows with node count; AlexNet's smaller \
         sub-mini-batches communicate proportionally more; ResNet-50 stays \
         low (high compute-to-communication ratio). Note the paper reports \
         ResNet-50 B=64 (19.11%) above B=32 (10.65%) at 1024 nodes, which is \
         inconsistent with its own speedups (928x for B=32 > 828x for B=64); \
         this model reproduces the speedup-consistent direction."
    );
}
