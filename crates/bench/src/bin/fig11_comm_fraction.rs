//! Thin wrapper over `scenarios::fig11_comm_fraction`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig11_comm_fraction");
}
