//! Wall-clock comparison of the compute backends on Table II
//! convolution geometries: the Sw26010 functional mesh simulation vs the
//! HostNative thread-pool path, same arithmetic, bitwise-identical
//! outputs (asserted).
//!
//! This is deliberately **not** a registered scenario and has no
//! baseline: it measures real host time, which is machine- and
//! load-dependent, so gating it would make CI flaky. Run it by hand to
//! reproduce the speedup figures quoted in `EXPERIMENTS.md`:
//!
//!   cargo run --release --bin backend-bench -- [--layer 5_3] [--batch 2]
//!       [--iters 3] [--threads 0]
//!
//! `--layer` names a VGG-16 Table II layer (`1_1` .. `5_3`); `--batch`
//! scales the batch down from the paper's 128 so the mesh simulation
//! finishes in seconds; `--threads 0` means one task per host core.

use std::time::Instant;

use sw26010::{CoreGroup, ExecMode};
use swcaffe_bench::scenarios::table2_conv;
use swdnn::conv_explicit::ConvFwdOperands;
use swdnn::conv_implicit::ImplicitFwdOperands;
use swdnn::{conv_explicit, conv_implicit, ConvShape};

struct Options {
    layer: String,
    batch: usize,
    iters: usize,
    threads: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        layer: "5_3".to_string(),
        batch: 2,
        iters: 3,
        threads: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or(format!("{flag} requires an argument"))
        };
        match a.as_str() {
            "--layer" => opts.layer = value("--layer")?,
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
            }
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: backend-bench [--layer NAME] [--batch N] [--iters N] [--threads N]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.batch == 0 || opts.iters == 0 {
        return Err("--batch and --iters must be positive".to_string());
    }
    Ok(opts)
}

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// Run `iters` forward convolutions under `mode`, returning the best
/// wall-clock time and the final output buffer.
fn time_forward(shape: &ConvShape, mode: ExecMode, iters: usize) -> (f64, Vec<f32>) {
    let input = values(shape.input_len(), 1);
    let weights = values(shape.weight_len(), 2);
    let implicit = conv_implicit::supports_forward(shape);
    let mut best = f64::INFINITY;
    let mut out = vec![0.0f32; shape.output_len()];
    for _ in 0..iters {
        let mut cg = CoreGroup::new(mode);
        let start = Instant::now();
        if implicit {
            conv_implicit::forward(
                &mut cg,
                shape,
                Some(ImplicitFwdOperands {
                    input: &input,
                    weights: &weights,
                    output: &mut out,
                }),
            );
        } else {
            conv_explicit::forward(
                &mut cg,
                shape,
                Some(ConvFwdOperands {
                    input: &input,
                    weights: &weights,
                    output: &mut out,
                }),
            );
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some((name, mut shape)) = table2_conv::vgg_conv_shapes()
        .into_iter()
        .find(|(n, _)| *n == opts.layer)
    else {
        eprintln!(
            "unknown layer '{}'; Table II layers: {}",
            opts.layer,
            table2_conv::vgg_conv_shapes()
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    shape.batch = opts.batch;
    let threads = swbackend::resolve_threads(opts.threads);
    let plan = if conv_implicit::supports_forward(&shape) {
        "implicit"
    } else {
        "explicit"
    };

    println!(
        "conv{name} geometry ({}x{}x{}x{} -> {} ch, k={}, {plan} plan), batch {}, best of {}:",
        shape.batch,
        shape.in_c,
        shape.in_h,
        shape.in_w,
        shape.out_c,
        shape.k,
        opts.batch,
        opts.iters
    );
    let (t_mesh, out_mesh) = time_forward(&shape, ExecMode::Functional, opts.iters);
    println!("  sw26010 functional mesh : {t_mesh:9.3} s");
    let (t_host, out_host) = time_forward(&shape, ExecMode::HostNative { threads }, opts.iters);
    println!("  host-native ({threads:2} threads): {t_host:9.3} s");
    println!("  speedup                 : {:9.1}x", t_mesh / t_host);

    let diverged = out_mesh
        .iter()
        .zip(&out_host)
        .filter(|(m, h)| m.to_bits() != h.to_bits())
        .count();
    if diverged > 0 {
        eprintln!("BACKEND DIVERGENCE: {diverged} output elements differ bitwise");
        std::process::exit(1);
    }
    println!(
        "  outputs bitwise identical across backends ({} elements)",
        out_mesh.len()
    );
}
