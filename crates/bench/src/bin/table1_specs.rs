//! Table I: comparison of SW26010, NVIDIA K40m and Intel KNL.

use baselines::{gpu_k40m, intel_knl_spec, sw26010_spec};

fn main() {
    println!("Table I: Comparison of SW, Intel KNL and NVIDIA K40m processors");
    println!("{:<22}{:>10}{:>12}{:>10}", "Specifications", "SW26010", "Nvidia K40m", "Intel KNL");
    let sw = sw26010_spec();
    let gpu = baselines::device::k40m_spec();
    let knl = intel_knl_spec();
    println!("{:<22}{:>10}{:>12}{:>10}", "Release Year", sw.release_year, gpu.release_year, knl.release_year);
    println!(
        "{:<22}{:>10}{:>12}{:>10}",
        "Bandwidth (GB/s)", sw.bandwidth_gbs, gpu.bandwidth_gbs, knl.bandwidth_gbs
    );
    println!(
        "{:<22}{:>10}{:>12}{:>10}",
        "float perf. (TFlops)", sw.float_tflops, gpu.float_tflops, knl.float_tflops
    );
    println!(
        "{:<22}{:>10}{:>12}{:>10}",
        "double perf. (TFlops)", sw.double_tflops, gpu.double_tflops, knl.double_tflops
    );
    println!();
    println!(
        "Derived: SW26010 flop-per-byte ratio = {:.1} (paper: 26.5 at the 28 GB/s \
         measured DMA peak; K40m {:.2}, KNL {:.2})",
        sw26010::arch::flop_per_byte_ratio(),
        gpu.float_tflops * 1e3 / gpu.bandwidth_gbs,
        knl.float_tflops * 1e3 / knl.bandwidth_gbs,
    );
    let _ = gpu_k40m();
}
