//! Thin wrapper over `scenarios::table1_specs`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("table1_specs");
}
