//! Fig. 2: DMA get/put bandwidth for continuous and strided access
//! patterns, as a function of per-CPE data size / block size and the
//! number of CPEs issuing concurrently.

use sw26010::dma;

const GB: f64 = 1.0e9;
const CPE_COUNTS: [usize; 5] = [1, 8, 16, 32, 64];

fn main() {
    println!("Fig. 2 (left): continuous DMA, aggregate bandwidth (GB/s)");
    print!("{:>10}", "size");
    for n in CPE_COUNTS {
        print!("{:>9}", format!("{n}CPE"));
    }
    println!();
    for size in [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 24576, 32768, 49152] {
        print!("{:>10}", human(size));
        for n in CPE_COUNTS {
            print!("{:>9.2}", dma::continuous_aggregate_bandwidth(size, n) / GB);
        }
        println!();
    }

    println!();
    println!("Fig. 2 (right): strided DMA (32 KB total per CPE), aggregate bandwidth (GB/s)");
    print!("{:>10}", "block");
    for n in CPE_COUNTS {
        print!("{:>9}", format!("{n}CPE"));
    }
    println!();
    let total = 32 * 1024;
    for block in [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384] {
        print!("{:>10}", human(block));
        for n in CPE_COUNTS {
            print!("{:>9.2}", dma::strided_aggregate_bandwidth(block, total, n) / GB);
        }
        println!();
    }
    println!();
    println!(
        "Reference points: 64-CPE continuous saturates at {:.1} GB/s (paper: ~28); \
         MPE memcpy path: {:.1} GB/s (paper: 9.9).",
        dma::continuous_aggregate_bandwidth(32768, 64) / GB,
        1.0 / dma::mpe_memcpy_time(1_000_000_000).seconds(),
    );
}

fn human(bytes: usize) -> String {
    if bytes >= 1024 {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}
