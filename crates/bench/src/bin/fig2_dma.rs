//! Thin wrapper over `scenarios::fig2_dma`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig2_dma");
}
