//! Thin wrapper over `scenarios::ablation_tune`; `--json <path>` writes
//! the structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("ablation_tune");
}
