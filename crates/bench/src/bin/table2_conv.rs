//! Thin wrapper over `scenarios::table2_conv`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("table2_conv");
}
