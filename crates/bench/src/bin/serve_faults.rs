fn main() {
    swcaffe_bench::runner::scenario_main("serve_faults");
}
