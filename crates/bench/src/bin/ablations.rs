//! Ablations of the design choices DESIGN.md calls out:
//!  1. register-communication GEMM vs per-CPE DMA replication (Principle 4)
//!  2. topology-aware vs natural vs ring vs binomial all-reduce
//!  3. CPE-cluster vs MPE reduction arithmetic
//!  4. packed vs per-layer gradient all-reduce
//!  5. striped vs single-split training-set layout
//!  6. continuous-DMA chunk size (Principle 3)

use swdnn::gemm::{time_model, time_model_double_buffered, time_model_no_rlc, TilePlan};
use swdnn::GemmDims;
use swio::{IoModel, Layout};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

fn main() {
    println!("=== Ablation 1: GEMM with vs without register communication ===");
    println!("    (plus the double-buffered design-space probe)");
    for (m, n, k) in [(512, 512, 512), (1024, 1024, 1024), (4096, 4096, 1024)] {
        let dims = GemmDims::new(m, n, k);
        let plan = TilePlan::choose(dims);
        let with = time_model(dims, 0.0, plan).seconds();
        let without = time_model_no_rlc(dims, plan).seconds();
        let db = time_model_double_buffered(dims, 0.0, plan).seconds();
        println!(
            "  {m}x{n}x{k}: RLC {:.3} ms, no-RLC {:.3} ms ({:.2}x from Principle 4),              double-buffered {:.3} ms ({:.2}x further)",
            with * 1e3,
            without * 1e3,
            without / with,
            db * 1e3,
            with / db
        );
    }

    println!();
    println!("=== Ablation 2: all-reduce algorithm (1024 nodes, 232.6 MB) ===");
    let topo = Topology::new(1024);
    let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
    let elems = 58_150_000;
    for (label, map, algo) in [
        ("topology-aware RHD (swCaffe)", RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling),
        ("natural RHD (stock MPICH)", RankMap::Natural, Algorithm::RecursiveHalvingDoubling),
        ("ring", RankMap::Natural, Algorithm::Ring),
        ("binomial tree", RankMap::Natural, Algorithm::Binomial),
    ] {
        let r = allreduce(&topo, &params, map, algo, elems, None);
        println!(
            "  {label:<30} {:>8.3} s  ({} steps, {:.1} GB across the switch)",
            r.elapsed.seconds(),
            r.steps,
            r.cross_bytes as f64 / 1e9
        );
    }
    let ps = swnet::parameter_server_round(&topo, &params, 0, elems);
    println!(
        "  {:<30} {:>8.3} s  (one port serialises all traffic; Sec. V-A's rejected design)",
        "parameter server", ps.elapsed.seconds()
    );

    println!();
    println!("=== Ablation 3: reduction arithmetic engine (1024 nodes, 232.6 MB) ===");
    for (label, engine) in [("CPE clusters", ReduceEngine::CpeClusters), ("MPE", ReduceEngine::Mpe)] {
        let p = NetParams::sunway_allreduce(engine);
        let r = allreduce(&topo, &p, RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling, elems, None);
        println!("  {label:<14} {:>8.3} s", r.elapsed.seconds());
    }

    println!();
    println!("=== Ablation 4: packed vs per-layer gradient all-reduce (64 nodes, VGG-16) ===");
    let vgg_layers: Vec<usize> = vec![
        1_728, 36_864, 73_728, 147_456, 294_912, 589_824, 589_824, 1_179_648, 2_359_296,
        2_359_296, 2_359_296, 2_359_296, 2_359_296, 102_760_448, 16_777_216, 4_096_000,
    ];
    let topo64 = Topology::with_supernode(64, 32);
    let (per_layer, packed) =
        swtrain::packing::per_layer_vs_packed(&topo64, &params, RankMap::RoundRobin, &vgg_layers);
    println!("  per-layer: {:.3} s   packed: {:.3} s   -> {:.2}x", per_layer, packed, per_layer / packed);

    println!();
    println!("=== Ablation 5: file layout (192 MB mini-batch per node) ===");
    let batch = 192 << 20;
    for n in [8usize, 64, 256, 1024] {
        let single = IoModel::taihulight(Layout::SingleSplit).batch_read_time(n, batch).seconds();
        let striped = IoModel::taihulight(Layout::paper_striped()).batch_read_time(n, batch).seconds();
        println!(
            "  {n:>4} readers: single-split {:>8.2} s/batch, striped {:>6.2} s/batch ({:.0}x)",
            single,
            striped,
            single / striped
        );
    }

    println!();
    println!("=== Ablation 6: DMA transfer granularity (Principle 3) ===");
    for size in [256usize, 1024, 4096, 16384] {
        let bw = sw26010::dma::continuous_aggregate_bandwidth(size, 64) / 1e9;
        println!("  {size:>6} B per CPE: {bw:>6.2} GB/s aggregate");
    }
}
