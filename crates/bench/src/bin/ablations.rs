//! Thin wrapper over `scenarios::ablations`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("ablations");
}
