//! Thin wrapper over `scenarios::fig5_algorithm1`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig5_algorithm1");
}
