//! Fig. 5 / Algorithm 1 demonstration: the control flow of one parallel
//! SSGD iteration on one SW26010 processor — four core-group threads,
//! handshake synchronisation, gradient gather at CG0, SGD update and
//! weight re-broadcast — with the per-phase simulated times.

use sw26010::ExecMode;
use swcaffe_core::{models, SolverConfig};
use swtrain::ChipTrainer;

fn main() {
    let net = std::env::args().nth(1).unwrap_or_else(|| "alexnet".into());
    let (def, chip_batch) = match net.as_str() {
        "alexnet" => (models::alexnet_bn(64), 256),
        "vgg16" => (models::vgg16(16), 64),
        "resnet50" => (models::resnet50(8), 32),
        other => panic!("unknown network '{other}'"),
    };
    println!("Algorithm 1 on one SW26010 processor — {net}, chip batch {chip_batch}");
    println!();
    println!("  pthread_create()                 # 4 threads, one per core group");
    println!("  for each CG i in parallel:");
    println!("      sample b/4 = {} images", chip_batch / 4);
    println!("      forward + backward on CG i's CPE cluster");
    println!("  Simple_Sync()                    # handshake semaphore barrier");
    println!("  CG0: gather + sum gradients      # NoC transfer + CPE-cluster AXPY");
    println!("  (all-reduce across nodes)        # topology-aware halving/doubling");
    println!("  CG0: SGD update, re-broadcast weights");
    println!("  pthread_join()");
    println!();

    let mut trainer = ChipTrainer::new(&def, SolverConfig::default(), ExecMode::TimingOnly)
        .expect("valid net");
    let report = trainer.iteration(None);
    let total = ChipTrainer::iteration_time(&report);
    println!("measured (simulated) phase times:");
    println!(
        "  per-CG forward/backward (max of 4): {:>9.3} s  ({:.1}%)",
        report.compute.seconds(),
        100.0 * report.compute.seconds() / total.seconds()
    );
    println!(
        "  gradient gather + weight bcast:     {:>9.3} s  ({:.1}%)",
        report.intra.seconds(),
        100.0 * report.intra.seconds() / total.seconds()
    );
    println!(
        "  SGD update:                         {:>9.3} s  ({:.1}%)",
        report.update.seconds(),
        100.0 * report.update.seconds() / total.seconds()
    );
    println!("  total:                              {:>9.3} s", total.seconds());
    println!(
        "  => single-node throughput {:.2} img/s (Table III SW column)",
        chip_batch as f64 / total.seconds()
    );
    println!(
        "  gradient payload for the cross-node all-reduce: {:.1} MB",
        trainer.param_bytes() as f64 / 1e6
    );
}
