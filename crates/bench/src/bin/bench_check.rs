//! Regression gate over the structured benchmark reports.
//!
//! Runs the registered scenarios in-process, compares each fresh
//! [`swprof::Report`] against the checked-in baseline under
//! `docs/results/baseline/<name>.json`, and exits non-zero on any drift:
//! counter-class metrics (DMA bytes, RLC messages, flops, all-reduce
//! steps) are compared exactly; timing-class metrics with a relative
//! tolerance (`swprof::DEFAULT_TIMING_REL_TOL`).
//!
//! Usage:
//!   bench-check [--fast] [--bless] [--dir <baseline-dir>]
//!               [--export <out-dir>] [name...]
//!
//! `--bless` regenerates the baselines from the current build instead of
//! comparing; commit the result. `--export` additionally writes every
//! fresh report to `<out-dir>` (the nightly CI job uploads that
//! directory as an artifact). Positional names restrict the run to
//! those scenarios (default: all, or the fast subset with `--fast`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use swcaffe_bench::scenarios::{self, Scenario};
use swprof::{compare, Report, Tolerance};

/// Default baseline directory: `docs/results/baseline` at the repo root,
/// located relative to this crate so the tool works from any cwd.
fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/results/baseline")
}

struct Options {
    bless: bool,
    fast: bool,
    dir: PathBuf,
    export: Option<PathBuf>,
    names: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        bless: false,
        fast: false,
        dir: default_dir(),
        export: None,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bless" => opts.bless = true,
            "--fast" => opts.fast = true,
            "--dir" => {
                opts.dir = PathBuf::from(it.next().ok_or("--dir requires a path")?);
            }
            "--export" => {
                opts.export = Some(PathBuf::from(it.next().ok_or("--export requires a path")?));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: bench-check [--fast] [--bless] [--dir <baseline-dir>] \
                     [--export <out-dir>] [name...]\n\
                     scenarios: {}",
                    scenarios::SCENARIOS
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name => {
                if scenarios::find(name).is_none() {
                    return Err(format!("unknown scenario '{name}' (try --help)"));
                }
                opts.names.push(name.to_string());
            }
        }
    }
    Ok(opts)
}

fn selected(opts: &Options) -> Vec<&'static Scenario> {
    scenarios::SCENARIOS
        .iter()
        .filter(|s| {
            if !opts.names.is_empty() {
                opts.names.iter().any(|n| n == s.name)
            } else {
                !opts.fast || s.fast
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let tol = Tolerance::default();
    let mut failures = 0usize;

    if opts.bless {
        if let Err(e) = std::fs::create_dir_all(&opts.dir) {
            eprintln!("cannot create {}: {e}", opts.dir.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &opts.export {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }

    for scenario in selected(&opts) {
        let (_text, fresh) = (scenario.run)(&[]);
        if let Some(dir) = &opts.export {
            let out = dir.join(format!("{}.json", scenario.name));
            if let Err(e) = std::fs::write(&out, fresh.to_json_string()) {
                eprintln!("cannot write {}: {e}", out.display());
                return ExitCode::from(2);
            }
        }
        let path = opts.dir.join(format!("{}.json", scenario.name));
        if opts.bless {
            if let Err(e) = std::fs::write(&path, fresh.to_json_string()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "blessed  {} ({} metrics)",
                path.display(),
                fresh.metrics.len()
            );
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "FAIL {}: no baseline at {} ({e}); run `bench-check --bless`",
                    scenario.name,
                    path.display()
                );
                failures += 1;
                continue;
            }
        };
        let baseline = match Report::from_json_str(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL {}: unreadable baseline: {e}", scenario.name);
                failures += 1;
                continue;
            }
        };
        let drifts = compare(&baseline, &fresh, &tol);
        if drifts.is_empty() {
            println!(
                "ok       {} ({} metrics)",
                scenario.name,
                fresh.metrics.len()
            );
        } else {
            println!(
                "FAIL     {} ({} drifting metrics)",
                scenario.name,
                drifts.len()
            );
            for d in &drifts {
                println!("  {d}");
            }
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} scenario(s) drifted from the baselines; if intentional, \
             regenerate with `cargo run --release --bin bench-check -- --bless`"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
