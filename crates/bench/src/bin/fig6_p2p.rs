//! Fig. 6: MPI P2P bandwidth and latency, Sunway network vs Infiniband
//! FDR, including the over-subscribed cross-supernode case.

use swnet::{NetParams, ReduceEngine};

const GB: f64 = 1.0e9;

fn main() {
    let sw = NetParams::sunway(ReduceEngine::Mpe);
    let ib = NetParams::infiniband();

    println!("Fig. 6 (left): P2P bandwidth (GB/s) vs message size");
    println!(
        "{:>8} {:>10} {:>14} {:>12}",
        "size", "SW", "SW oversub", "Infiniband"
    );
    let mut size = 1usize;
    while size <= 4 << 20 {
        println!(
            "{:>8} {:>10.3} {:>14.3} {:>12.3}",
            human(size),
            sw.p2p_bandwidth(size, false) / GB,
            sw.p2p_bandwidth(size, true) / GB,
            ib.p2p_bandwidth(size, false) / GB,
        );
        size *= 4;
    }

    println!();
    println!("Fig. 6 (right): P2P latency (us) vs message size");
    println!("{:>8} {:>10} {:>12}", "size", "SW", "Infiniband");
    let mut size = 2usize;
    while size <= 2 << 20 {
        println!(
            "{:>8} {:>10.1} {:>12.1}",
            human(size),
            sw.p2p_latency(size).micros(),
            ib.p2p_latency(size).micros(),
        );
        size *= 4;
    }
    println!();
    println!(
        "Shape checks: SW saturates at {:.1} GB/s (paper: 12 of 16 theoretical); \
         over-subscribed is ~1/4; SW latency exceeds IB beyond the {} B eager limit.",
        sw.p2p_bandwidth(4 << 20, false) / GB,
        sw.eager_limit,
    );
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1024 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}
