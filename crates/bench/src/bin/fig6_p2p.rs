//! Thin wrapper over `scenarios::fig6_p2p`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig6_p2p");
}
