//! Thin wrapper over `scenarios::table3_networks`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("table3_networks");
}
