//! Fig. 7: the 8-node / 2-supernode all-reduce example — original
//! (natural rank order) vs improved (round-robin) halving/doubling, both
//! as the paper's closed-form costs and as measured by the step-level
//! simulator.

use swnet::analysis::{allreduce_closed_form, fig7_example, EqInputs};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

fn main() {
    let n_elems = 1 << 20; // 4 MB of gradients
    let n = n_elems * 4;
    let params = NetParams::sunway(ReduceEngine::CpeClusters);
    let topo = Topology::with_supernode(8, 4);

    println!("Fig. 7: 8 nodes in 2 supernodes, all-reduce of {} MB", n >> 20);
    println!();
    println!("Symbolic costs (paper, right side of the figure):");
    println!("  original:  6a + 7/8 n*gamma + 3/4 n*beta1 +     n*beta2");
    println!("  improved:  6a + 7/8 n*gamma + 3/2 n*beta1 + 1/4 n*beta2");
    let (orig_cf, imp_cf) = fig7_example(n, params.alpha_rendezvous, params.beta1, params.beta2(), params.gamma());
    println!("  evaluated: original {:.3} ms, improved {:.3} ms", orig_cf * 1e3, imp_cf * 1e3);
    println!();

    let nat = allreduce(&topo, &params, RankMap::Natural, Algorithm::RecursiveHalvingDoubling, n_elems, None);
    let rr = allreduce(&topo, &params, RankMap::RoundRobin, Algorithm::RecursiveHalvingDoubling, n_elems, None);
    println!("Step-level simulation:");
    println!(
        "  original:  {:.3} ms over {} steps, {:.1} MB crossed the switch",
        nat.elapsed.seconds() * 1e3,
        nat.steps,
        nat.cross_bytes as f64 / 1e6
    );
    println!(
        "  improved:  {:.3} ms over {} steps, {:.1} MB crossed the switch",
        rr.elapsed.seconds() * 1e3,
        rr.steps,
        rr.cross_bytes as f64 / 1e6
    );
    println!(
        "  improvement: {:.2}x less wall time, {:.1}x less cross-supernode traffic",
        nat.elapsed.seconds() / rr.elapsed.seconds(),
        nat.cross_bytes as f64 / rr.cross_bytes as f64
    );
    println!();

    // Large-scale closed forms (Eq. 2-6) for the production topology.
    println!("Closed-form Eq. 2 at production scale (232.6 MB AlexNet gradients):");
    for p in [256usize, 512, 1024] {
        let i = EqInputs { p, q: 256.min(p), n: 232 << 20 };
        let orig = allreduce_closed_form(i, &params, false);
        let imp = allreduce_closed_form(i, &params, true);
        println!(
            "  p = {p:4}: original {:.3} s, improved {:.3} s ({:.2}x)",
            orig,
            imp,
            orig / imp
        );
    }
}
