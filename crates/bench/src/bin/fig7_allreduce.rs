//! Thin wrapper over `scenarios::fig7_allreduce`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig7_allreduce");
}
