//! Thin wrapper over `scenarios::fig9_vgg_layers`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig9_vgg_layers");
}
