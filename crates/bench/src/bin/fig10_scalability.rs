//! Fig. 10: weak-scaling speedup of swCaffe to 1024 nodes for AlexNet
//! (sub-mini-batch 64/128/256) and ResNet-50 (32/64).

use sw26010::ExecMode;
use swcaffe_core::{models, NetDef, SolverConfig};
use swnet::{Algorithm, NetParams, RankMap, ReduceEngine};
use swtrain::{ChipTrainer, ScalingModel};

fn node_model(cg_def: &NetDef) -> (f64, usize) {
    let mut t = ChipTrainer::new(cg_def, SolverConfig::default(), ExecMode::TimingOnly)
        .expect("net build");
    let r = t.iteration(None);
    (ChipTrainer::iteration_time(&r).seconds(), t.param_elems())
}

fn main() {
    println!("Fig. 10: scalability of swCaffe (speedup over one node)");
    // (label, per-CG def (chip batch / 4), paper speedup at 1024)
    let configs: Vec<(&str, NetDef, f64)> = vec![
        ("AlexNet B=64", models::alexnet_bn(16), 409.50),
        ("AlexNet B=128", models::alexnet_bn(32), 561.58),
        ("AlexNet B=256", models::alexnet_bn(64), 715.45),
        ("ResNet50 B=32", models::resnet50(8), 928.15),
        ("ResNet50 B=64", models::resnet50(16), 828.32),
    ];
    let scales = [2usize, 8, 32, 128, 512, 1024];
    print!("{:<16}", "config");
    for s in scales {
        print!("{s:>9}");
    }
    println!("{:>14}", "paper@1024");
    for (label, def, paper) in configs {
        let (node_time, params) = node_model(&def);
        let model = ScalingModel {
            node_time: sw26010::SimTime::from_seconds(node_time),
            param_elems: params,
            net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            io: None,
        };
        print!("{label:<16}");
        for s in scales {
            print!("{:>9.1}", model.point(s).speedup);
        }
        println!("{paper:>14.1}");
    }
    println!();
    println!(
        "Shape checks: larger sub-mini-batches scale better (more compute per \
         gradient byte); ResNet-50 scales best (97.7 MB of parameters vs \
         AlexNet's 232.6 MB, far more compute per image)."
    );
}
