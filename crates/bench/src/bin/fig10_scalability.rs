//! Thin wrapper over `scenarios::fig10_scalability`; `--json <path>` writes the
//! structured report alongside the text table.

fn main() {
    swcaffe_bench::runner::scenario_main("fig10_scalability");
}
