//! # swcaffe-bench — regenerators for every table and figure in the paper
//!
//! One binary per experiment (see DESIGN.md's experiment index). Binaries
//! print paper-style tables/series to stdout; Criterion benches under
//! `benches/` measure the simulator itself.

/// Format a seconds value the way the paper's tables do.
pub fn fmt_s(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.2}m", t * 1e3)
    } else {
        format!("{:.1}u", t * 1e6)
    }
}

/// Simple fixed-width table row printer.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}
