//! # swcaffe-bench — regenerators for every table and figure in the paper
//!
//! One binary per experiment (see DESIGN.md's experiment index). Each
//! binary is a thin wrapper over a scenario in [`scenarios`]: the
//! scenario produces the paper-style text table *and* a structured
//! [`swprof::Report`]; the shared [`runner`] prints the text and, with
//! `--json <path>`, writes the report for regression gating by the
//! `bench-check` binary. Plain benches under `benches/` measure the
//! simulator itself.

pub mod runner;
pub mod scenarios;

pub use runner::scenario_main;
pub use scenarios::{find, Scenario, SCENARIOS};

/// Format a seconds value the way the paper's tables do.
pub fn fmt_s(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.2}m", t * 1e3)
    } else {
        format!("{:.1}u", t * 1e6)
    }
}

/// Simple fixed-width table row printer.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}
