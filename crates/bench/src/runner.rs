//! Shared entry point for the per-figure binaries.
//!
//! Every binary under `src/bin/` is `scenario_main("<name>")`: the text
//! table always goes to stdout, and `--json <path>` additionally writes
//! the structured [`swprof::Report`] for `bench-check` and CI artifacts.
//! Remaining arguments are passed through to the scenario (e.g.
//! `fig5_algorithm1 vgg16`).

use crate::scenarios;

/// Parse `--json <path>` out of an argument list, returning the path and
/// the remaining positional arguments.
pub fn split_json_flag(args: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut json_path = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            let path = it.next().ok_or("--json requires a path argument")?;
            json_path = Some(path.clone());
        } else if let Some(path) = a.strip_prefix("--json=") {
            json_path = Some(path.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((json_path, rest))
}

/// Parse `--backend <name>` out of an argument list, returning the
/// backend name and the remaining arguments. Names are resolved by
/// [`swbackend::parse`] (`sw26010`, `host`, `host:<threads>`, `timing`).
pub fn split_backend_flag(args: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut backend = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--backend" {
            let name = it.next().ok_or("--backend requires a name argument")?;
            backend = Some(name.clone());
        } else if let Some(name) = a.strip_prefix("--backend=") {
            backend = Some(name.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((backend, rest))
}

/// Entry point used by every scenario binary's `main`.
pub fn scenario_main(name: &str) {
    let scenario = scenarios::find(name)
        .unwrap_or_else(|| panic!("scenario '{name}' is not registered in scenarios::SCENARIOS"));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (json_path, rest) = match split_json_flag(&args) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };
    let (backend, rest) = match split_backend_flag(&rest) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(b) = backend {
        match swbackend::parse(&b) {
            Ok(be) => swbackend::install_default(be.as_ref()),
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(2);
            }
        }
    }
    let (text, report) = (scenario.run)(&rest);
    print!("{text}");
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json_string()) {
            eprintln!("{name}: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_forms() {
        let (p, rest) = split_json_flag(&strs(&["--json", "out.json", "vgg16"])).unwrap();
        assert_eq!(p.as_deref(), Some("out.json"));
        assert_eq!(rest, ["vgg16"]);

        let (p, rest) = split_json_flag(&strs(&["vgg16", "--json=o.json"])).unwrap();
        assert_eq!(p.as_deref(), Some("o.json"));
        assert_eq!(rest, ["vgg16"]);

        let (p, rest) = split_json_flag(&strs(&[])).unwrap();
        assert!(p.is_none() && rest.is_empty());

        assert!(split_json_flag(&strs(&["--json"])).is_err());
    }

    #[test]
    fn backend_flag_forms() {
        let (b, rest) = split_backend_flag(&strs(&["--backend", "host", "vgg16"])).unwrap();
        assert_eq!(b.as_deref(), Some("host"));
        assert_eq!(rest, ["vgg16"]);

        let (b, rest) = split_backend_flag(&strs(&["vgg16", "--backend=host:4"])).unwrap();
        assert_eq!(b.as_deref(), Some("host:4"));
        assert_eq!(rest, ["vgg16"]);

        let (b, rest) = split_backend_flag(&strs(&[])).unwrap();
        assert!(b.is_none() && rest.is_empty());

        assert!(split_backend_flag(&strs(&["--backend"])).is_err());
    }

    #[test]
    fn backend_names_resolve() {
        for name in ["sw26010", "host", "host:4", "timing"] {
            assert!(swbackend::parse(name).is_ok(), "{name} should parse");
        }
        assert!(swbackend::parse("cuda").is_err());
    }
}
