//! Criterion benchmarks of the simulator itself: how fast the functional
//! mesh kernels, the reference oracles, and the collectives execute on
//! the host. (Simulated-time results come from the `bin/` regenerators;
//! these benches track the cost of running the simulation.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sw26010::{CoreGroup, ExecMode};
use swdnn::gemm::{gemm, GemmOperands};
use swdnn::{reference, ConvShape, GemmDims, Trans};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

fn bench_mesh_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_gemm_functional");
    group.sample_size(10);
    for size in [64usize, 128] {
        let dims = GemmDims::new(size, size, size);
        let a = vec![1.0f32; size * size];
        let b = vec![0.5f32; size * size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| {
                let mut cg = CoreGroup::new(ExecMode::Functional);
                let mut out = vec![0.0f32; size * size];
                gemm(
                    &mut cg,
                    dims,
                    Trans::No,
                    Trans::No,
                    0.0,
                    Some(GemmOperands { a: &a, b: &b, c: &mut out }),
                );
                out
            })
        });
    }
    group.finish();
}

fn bench_reference_conv(c: &mut Criterion) {
    let shape = ConvShape {
        batch: 2,
        in_c: 8,
        in_h: 16,
        in_w: 16,
        out_c: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let input = vec![0.3f32; shape.input_len()];
    let weights = vec![0.1f32; shape.weight_len()];
    c.bench_function("reference_conv_forward", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; shape.output_len()];
            reference::conv_forward(&shape, &input, &weights, &mut out);
            out
        })
    });
}

fn bench_allreduce_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_functional");
    group.sample_size(10);
    for nodes in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |bench, &n| {
            let topo = Topology::with_supernode(n, (n / 2).max(1));
            let params = NetParams::sunway(ReduceEngine::CpeClusters);
            bench.iter(|| {
                let mut data: Vec<Vec<f32>> =
                    (0..n).map(|r| vec![r as f32; 10_000]).collect();
                allreduce(
                    &topo,
                    &params,
                    RankMap::RoundRobin,
                    Algorithm::RecursiveHalvingDoubling,
                    10_000,
                    Some(&mut data),
                );
                data
            })
        });
    }
    group.finish();
}

fn bench_timing_models(c: &mut Criterion) {
    // The closed-form models must be cheap: they are called per layer per
    // iteration in every sweep.
    let shape = ConvShape {
        batch: 128,
        in_c: 256,
        in_h: 56,
        in_w: 56,
        out_c: 256,
        k: 3,
        stride: 1,
        pad: 1,
    };
    c.bench_function("conv_time_models", |b| {
        b.iter(|| {
            (
                swdnn::conv_explicit::forward_time(&shape),
                swdnn::conv_implicit::forward_time(&shape),
            )
        })
    });
}

fn bench_double_buffered_gemm(c: &mut Criterion) {
    let dims = GemmDims::new(128, 128, 256);
    let a = vec![1.0f32; dims.m * dims.k];
    let b = vec![0.5f32; dims.k * dims.n];
    let mut group = c.benchmark_group("gemm_variants");
    group.sample_size(10);
    group.bench_function("synchronous", |bench| {
        bench.iter(|| {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut out = vec![0.0f32; dims.m * dims.n];
            gemm(&mut cg, dims, Trans::No, Trans::No, 0.0, Some(GemmOperands { a: &a, b: &b, c: &mut out }));
            out
        })
    });
    group.bench_function("double_buffered", |bench| {
        bench.iter(|| {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut out = vec![0.0f32; dims.m * dims.n];
            swdnn::gemm::gemm_double_buffered(&mut cg, dims, Trans::No, Trans::No, 0.0, Some(GemmOperands { a: &a, b: &b, c: &mut out }));
            out
        })
    });
    group.finish();
}

fn bench_elementwise_streams(c: &mut Criterion) {
    let len = 200_000;
    let x = vec![1.0f32; len];
    c.bench_function("relu_forward_functional", |bench| {
        bench.iter(|| {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut y = vec![0.0f32; len];
            swdnn::elementwise::relu_forward(&mut cg, len, Some((&x, &mut y)));
            y
        })
    });
}

fn bench_network_timing_sweep(c: &mut Criterion) {
    // Whole-network timing-mode evaluation: the inner loop of every
    // table/figure regenerator. Must stay cheap enough to sweep.
    use swcaffe_core::{models, Net};
    c.bench_function("vgg16_timing_iteration", |bench| {
        let def = models::vgg16(16);
        bench.iter(|| {
            let mut net = Net::from_def(&def, false).unwrap();
            let mut cg = CoreGroup::new(ExecMode::TimingOnly);
            net.forward(&mut cg);
            net.backward(&mut cg);
            cg.elapsed()
        })
    });
}

fn bench_pooling_mesh(c: &mut Criterion) {
    use swdnn::pool::{forward, PoolFwdOperands};
    use swdnn::{PoolMethod, PoolShape};
    let shape = PoolShape {
        batch: 4,
        channels: 16,
        in_h: 28,
        in_w: 28,
        k: 2,
        stride: 2,
        pad: 0,
        method: PoolMethod::Max,
    };
    let input = vec![1.0f32; shape.input_len()];
    c.bench_function("maxpool_mesh_functional", |bench| {
        bench.iter(|| {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut out = vec![0.0f32; shape.output_len()];
            let mut am = vec![0.0f32; shape.output_len()];
            forward(
                &mut cg,
                &shape,
                Some(PoolFwdOperands { input: &input, output: &mut out, argmax: Some(&mut am) }),
            );
            out
        })
    });
}

criterion_group!(
    benches,
    bench_mesh_gemm,
    bench_reference_conv,
    bench_allreduce_functional,
    bench_timing_models,
    bench_double_buffered_gemm,
    bench_elementwise_streams,
    bench_network_timing_sweep,
    bench_pooling_mesh
);
criterion_main!(benches);
