//! Host-side benchmarks of the simulator itself: how fast the functional
//! mesh kernels, the reference oracles, and the collectives execute on
//! the host. (Simulated-time results come from the `bin/` regenerators;
//! these benches track the cost of running the simulation.)
//!
//! Plain `harness = false` timer — no external benchmarking framework —
//! so the suite builds in the hermetic environment. Run with
//! `cargo bench --bench simulator`.

use std::hint::black_box;
use std::time::Instant;

use sw26010::{CoreGroup, ExecMode};
use swdnn::gemm::{gemm, GemmOperands};
use swdnn::{reference, ConvShape, GemmDims, Trans};
use swnet::{allreduce, Algorithm, NetParams, RankMap, ReduceEngine, Topology};

/// Time `f` over `iters` iterations (after one warm-up) and print a
/// mean-per-iteration line.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per = total / iters;
    println!("{name:<40} {per:>12.2?}/iter  ({iters} iters, {total:.2?} total)");
}

fn bench_mesh_gemm() {
    for size in [64usize, 128] {
        let dims = GemmDims::new(size, size, size);
        let a = vec![1.0f32; size * size];
        let b = vec![0.5f32; size * size];
        bench(&format!("mesh_gemm_functional/{size}"), 10, || {
            let mut cg = CoreGroup::new(ExecMode::Functional);
            let mut out = vec![0.0f32; size * size];
            gemm(
                &mut cg,
                dims,
                Trans::No,
                Trans::No,
                0.0,
                Some(GemmOperands {
                    a: &a,
                    b: &b,
                    c: &mut out,
                }),
            );
            black_box(out);
        });
    }
}

fn bench_reference_conv() {
    let shape = ConvShape {
        batch: 2,
        in_c: 8,
        in_h: 16,
        in_w: 16,
        out_c: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let input = vec![0.3f32; shape.input_len()];
    let weights = vec![0.1f32; shape.weight_len()];
    bench("reference_conv_forward", 20, || {
        let mut out = vec![0.0f32; shape.output_len()];
        reference::conv_forward(&shape, &input, &weights, &mut out);
        black_box(out);
    });
}

fn bench_allreduce_functional() {
    for nodes in [8usize, 32] {
        let topo = Topology::with_supernode(nodes, (nodes / 2).max(1));
        let params = NetParams::sunway(ReduceEngine::CpeClusters);
        bench(&format!("allreduce_functional/{nodes}"), 10, || {
            let mut data: Vec<Vec<f32>> = (0..nodes).map(|r| vec![r as f32; 10_000]).collect();
            allreduce(
                &topo,
                &params,
                RankMap::RoundRobin,
                Algorithm::RecursiveHalvingDoubling,
                10_000,
                Some(&mut data),
            );
            black_box(data);
        });
    }
}

fn bench_timing_models() {
    // The closed-form models must be cheap: they are called per layer per
    // iteration in every sweep.
    let shape = ConvShape {
        batch: 128,
        in_c: 256,
        in_h: 56,
        in_w: 56,
        out_c: 256,
        k: 3,
        stride: 1,
        pad: 1,
    };
    bench("conv_time_models", 1000, || {
        black_box((
            swdnn::conv_explicit::forward_time(&shape),
            swdnn::conv_implicit::forward_time(&shape),
        ));
    });
}

fn bench_double_buffered_gemm() {
    let dims = GemmDims::new(128, 128, 256);
    let a = vec![1.0f32; dims.m * dims.k];
    let b = vec![0.5f32; dims.k * dims.n];
    bench("gemm_variants/synchronous", 10, || {
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut out = vec![0.0f32; dims.m * dims.n];
        gemm(
            &mut cg,
            dims,
            Trans::No,
            Trans::No,
            0.0,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut out,
            }),
        );
        black_box(out);
    });
    bench("gemm_variants/double_buffered", 10, || {
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut out = vec![0.0f32; dims.m * dims.n];
        swdnn::gemm::gemm_double_buffered(
            &mut cg,
            dims,
            Trans::No,
            Trans::No,
            0.0,
            Some(GemmOperands {
                a: &a,
                b: &b,
                c: &mut out,
            }),
        );
        black_box(out);
    });
}

fn bench_elementwise_streams() {
    let len = 200_000;
    let x = vec![1.0f32; len];
    bench("relu_forward_functional", 10, || {
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut y = vec![0.0f32; len];
        swdnn::elementwise::relu_forward(&mut cg, len, Some((&x, &mut y)));
        black_box(y);
    });
}

fn bench_network_timing_sweep() {
    // Whole-network timing-mode evaluation: the inner loop of every
    // table/figure regenerator. Must stay cheap enough to sweep.
    use swcaffe_core::{models, Net};
    let def = models::vgg16(16);
    bench("vgg16_timing_iteration", 10, || {
        let mut net = Net::from_def(&def, false).unwrap();
        let mut cg = CoreGroup::new(ExecMode::TimingOnly);
        net.forward(&mut cg);
        net.backward(&mut cg);
        black_box(cg.elapsed());
    });
}

fn bench_pooling_mesh() {
    use swdnn::pool::{forward, PoolFwdOperands};
    use swdnn::{PoolMethod, PoolShape};
    let shape = PoolShape {
        batch: 4,
        channels: 16,
        in_h: 28,
        in_w: 28,
        k: 2,
        stride: 2,
        pad: 0,
        method: PoolMethod::Max,
    };
    let input = vec![1.0f32; shape.input_len()];
    bench("maxpool_mesh_functional", 10, || {
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let mut out = vec![0.0f32; shape.output_len()];
        let mut am = vec![0.0f32; shape.output_len()];
        forward(
            &mut cg,
            &shape,
            Some(PoolFwdOperands {
                input: &input,
                output: &mut out,
                argmax: Some(&mut am),
            }),
        );
        black_box(out);
    });
}

fn main() {
    // `cargo bench` passes flags like --bench; a positional filter
    // selects benchmarks by substring, mirroring the usual harness UX.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let run = |name: &str, f: fn()| {
        if filter.as_deref().is_none_or(|pat| name.contains(pat)) {
            f();
        }
    };
    run("mesh_gemm", bench_mesh_gemm);
    run("reference_conv", bench_reference_conv);
    run("allreduce", bench_allreduce_functional);
    run("timing_models", bench_timing_models);
    run("gemm_variants", bench_double_buffered_gemm);
    run("elementwise", bench_elementwise_streams);
    run("network_timing", bench_network_timing_sweep);
    run("pooling", bench_pooling_mesh);
}
