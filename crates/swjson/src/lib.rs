//! # swjson — minimal, dependency-free JSON for the swCaffe workspace
//!
//! The build environment is hermetic (no registry crates), so the
//! interchange formats in this repo — [`NetDef`](../swcaffe_core) files
//! and the [`swprof`](../swprof) benchmark reports CI gates on — are
//! (de)serialised through this small JSON library instead of serde.
//!
//! Design points that matter for the callers:
//!
//! * **Deterministic output.** Objects preserve insertion order and the
//!   writer is pure, so the same value always renders to the same bytes —
//!   the property `bench-check` relies on to diff fresh runs against
//!   checked-in baselines.
//! * **Lossless numbers.** Integers are kept as `i64` (hardware counters:
//!   DMA bytes, flops, message counts) and only genuine reals go through
//!   `f64`, using Rust's shortest-roundtrip formatting.

use std::fmt::{self, Write as _};

/// A parse failure: what went wrong and the byte offset at which the
/// parser noticed. The offset indexes the *input bytes* (not chars), so
/// callers can point at the exact spot in a file or an editor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Keeps `Json::parse(..)?` working in the many `Result<_, String>`
/// functions across the workspace.
impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

/// A JSON value. Objects are ordered key/value vectors, not maps, so
/// serialisation is deterministic and duplicate detection is explicit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral number (fits `i64`); kept exact.
    Int(i64),
    /// Real number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline —
    /// the canonical on-disk format for baselines and reports.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0, true);
        out.push('\n');
        out
    }

    /// Render without any whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        out
    }

    /// Parse a JSON document. Trailing content after the top-level value
    /// is an error carrying the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// Convenience conversions for building values.
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Num(v as f64)
        }
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Builder for ordered objects: `obj().field("a", 1).field("b", "x").build()`.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

pub fn obj() -> ObjBuilder {
    ObjBuilder::default()
}

impl ObjBuilder {
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

fn write_value(out: &mut String, v: &Json, indent: usize, pretty: bool) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1, pretty);
                write_value(out, item, indent + 1, pretty);
            }
            newline_indent(out, indent, pretty);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1, pretty);
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            newline_indent(out, indent, pretty);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-bad encoding.
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        // Keep integral reals readable and round-trippable as reals.
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> ParseError {
        self.error_at(msg, self.pos)
    }

    fn error_at(&self, msg: &str, offset: usize) -> ParseError {
        ParseError {
            offset,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_real = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_real = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Only ASCII digits/signs/exponents were consumed, so this slice
        // is valid UTF-8 by construction — but fail, don't panic, if the
        // invariant is ever broken.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error_at("invalid UTF-8 in number", start))?;
        if !is_real {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error_at(&format!("invalid number '{text}'"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "9007199254740993"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_compact_string(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("-2e3").unwrap(), Json::Num(-2000.0));
    }

    #[test]
    fn big_counters_stay_exact() {
        // i64-range counters (DMA bytes, flops) survive exactly — the
        // reason Json::Int exists.
        let v = Json::Int(1_234_567_890_123_456_789);
        let back = Json::parse(&v.to_compact_string()).unwrap();
        assert_eq!(back.as_i64(), Some(1_234_567_890_123_456_789));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\there \"quoted\" back\\slash\nnewline \u{1}ctl ünïcode 🚀";
        let v = Json::Str(s.to_string());
        let text = v.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(Json::parse(r#""🚀""#).unwrap().as_str(), Some("🚀"));
    }

    #[test]
    fn nested_structure_round_trips_pretty_and_compact() {
        let v = obj()
            .field("name", "fig2")
            .field("ok", true)
            .field(
                "metrics",
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Null]),
            )
            .field("nested", obj().field("x", 1.0f64).build())
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::Obj(vec![]))
            .build();
        for text in [v.to_pretty_string(), v.to_compact_string()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let v = Json::parse(text).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn deterministic_rendering() {
        let v = obj()
            .field("a", 1.25f64)
            .field("b", Json::Arr(vec![Json::Int(3)]))
            .build();
        assert_eq!(v.to_pretty_string(), v.to_pretty_string());
        assert_eq!(
            v.to_pretty_string(),
            "{\n  \"a\": 1.25,\n  \"b\": [\n    3\n  ]\n}\n"
        );
    }

    #[test]
    fn integral_reals_keep_a_decimal_point() {
        // 2.0 must not collapse to "2" (which would re-parse as Int and
        // change the metric class on a round trip).
        let text = Json::Num(2.0).to_compact_string();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // The offset pins the failure to the exact input byte.
        let e = Json::parse(r#"{"a" 1}"#).unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(e.msg.contains("':'"), "{}", e.msg);
        let e = Json::parse("[1, 2, x]").unwrap_err();
        assert_eq!(e.offset, 7);
        // Number errors point at the number's first byte.
        let e = Json::parse("   1e999e9").unwrap_err();
        assert_eq!(e.offset, 3);
        // Display (and the String conversion used by `?` call sites)
        // includes the offset.
        assert!(String::from(e.clone()).contains("at byte 3"), "{e}");
    }

    #[test]
    fn non_finite_reals_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact_string(), "null");
    }
}
