//! Regression: the process-default backend lookup is latched. A
//! mid-run `SWCAFFE_BACKEND` mutation must never flip the default, and
//! `install_default` must win over the environment unconditionally.
//!
//! Single test function on purpose: the default-backend state is
//! process-global, and this file is its own test binary, so the
//! sequence below fully controls the latch order.

use sw26010::ExecMode;
use swbackend::{default_backend, default_functional_mode, BackendKind, HostNative};

#[test]
fn install_wins_and_env_is_latched() {
    // Start from a clean environment (the CI conformance matrix exports
    // SWCAFFE_BACKEND for the whole run) and latch the env lookup.
    std::env::remove_var("SWCAFFE_BACKEND");
    assert_eq!(default_backend().kind(), BackendKind::Sw26010);
    assert_eq!(default_functional_mode(), ExecMode::Functional);

    // A mid-run environment mutation must be invisible: the env was
    // read exactly once, at first lookup.
    std::env::set_var("SWCAFFE_BACKEND", "timing");
    assert_eq!(default_backend().kind(), BackendKind::Sw26010);
    assert_eq!(default_functional_mode(), ExecMode::Functional);

    // install_default (the --backend flag path) wins over everything.
    swbackend::install_default(&HostNative { threads: 3 });
    assert_eq!(
        default_backend().exec_mode(),
        ExecMode::HostNative { threads: 3 }
    );
    assert_eq!(
        default_functional_mode(),
        ExecMode::HostNative { threads: 3 }
    );

    // Further env churn still cannot override the installed default.
    std::env::set_var("SWCAFFE_BACKEND", "host:7");
    assert_eq!(
        default_backend().exec_mode(),
        ExecMode::HostNative { threads: 3 }
    );

    // Re-installing is allowed (explicit code, not ambient state).
    swbackend::install_default(&swbackend::TimingOnly);
    assert_eq!(default_backend().kind(), BackendKind::TimingOnly);
    // TimingOnly still materialises values for functional-mode callers.
    assert_eq!(default_functional_mode(), ExecMode::Functional);
}
