//! # swbackend — pluggable compute backends
//!
//! Separates *what* a kernel computes from *where* it runs (the kubecl /
//! SMAUG runtime split). Three backends share one kernel definition:
//!
//! * [`Sw26010`] — the cost-model-faithful simulator: kernels run on the
//!   64-thread CPE mesh with `KernelPlan` validation, charged simulated
//!   time and hardware counters. This is the blessed-baseline path.
//! * [`HostNative`] — plain blocked host loops on OS threads, **no timing
//!   model**: reports carry zero simulated time and zero counters, but
//!   values are bit-for-bit identical to `Sw26010` (the host mirrors
//!   replicate the mesh kernels' types and accumulation order exactly).
//! * [`TimingOnly`] — the analytic cost models only; no values move.
//!
//! Kernels dispatch through [`dispatch`], which resolves the core group's
//! [`ExecMode`] to a backend and asks it for its execution [`Path`]. The
//! backend carried by a mode is total — every mode maps to exactly one
//! backend — so a kernel without a host mirror simply keeps returning
//! [`Path::Mesh`] from its own dispatch site and degrades gracefully to
//! the (bit-identical, slower) simulated mesh.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use sw26010::ExecMode;

/// Backend identity, used for registry/reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    Sw26010,
    HostNative,
    TimingOnly,
}

/// Which execution path a kernel should take for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Run the validated mesh kernel on the simulator (timing + counters
    /// + optional happens-before checking).
    Mesh,
    /// Run the host mirror on `threads` OS threads (no timing model).
    Host { threads: usize },
    /// Charge the analytic model only.
    Timing,
}

/// A compute backend: resolves to an [`ExecMode`] for core groups and an
/// execution [`Path`] for kernel launches.
///
/// Invariants (see DESIGN.md):
/// * `Sw26010` carries timing, counters and checking; its results define
///   bitwise correctness.
/// * `HostNative` carries values only — bit-identical to `Sw26010` — and
///   reports zero time/counters.
/// * `TimingOnly` carries time/counters only; no values exist.
pub trait Backend: Send + Sync {
    fn kind(&self) -> BackendKind;
    /// Stable registry name (what `--backend` accepts).
    fn name(&self) -> &'static str;
    /// The mode a `CoreGroup` must run in for this backend.
    fn exec_mode(&self) -> ExecMode;
    /// The per-launch execution path kernels should take.
    fn path(&self) -> Path;
    /// Whether launch reports on this backend carry meaningful simulated
    /// time and counters.
    fn carries_timing(&self) -> bool {
        !matches!(self.path(), Path::Host { .. })
    }
    /// Whether the happens-before checker / `KernelPlan` validation can
    /// observe launches on this backend.
    fn carries_checking(&self) -> bool {
        matches!(self.path(), Path::Mesh)
    }
}

/// The simulator backend (default; blessed baselines run here).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sw26010;

/// The host-native backend. `threads == 0` means one worker per available
/// host core, resolved at launch time.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostNative {
    pub threads: usize,
}

/// The cost-model-only backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingOnly;

impl Backend for Sw26010 {
    fn kind(&self) -> BackendKind {
        BackendKind::Sw26010
    }
    fn name(&self) -> &'static str {
        "sw26010"
    }
    fn exec_mode(&self) -> ExecMode {
        ExecMode::Functional
    }
    fn path(&self) -> Path {
        Path::Mesh
    }
}

impl Backend for HostNative {
    fn kind(&self) -> BackendKind {
        BackendKind::HostNative
    }
    fn name(&self) -> &'static str {
        "host"
    }
    fn exec_mode(&self) -> ExecMode {
        ExecMode::HostNative {
            threads: self.threads,
        }
    }
    fn path(&self) -> Path {
        Path::Host {
            threads: self.threads,
        }
    }
}

impl Backend for TimingOnly {
    fn kind(&self) -> BackendKind {
        BackendKind::TimingOnly
    }
    fn name(&self) -> &'static str {
        "timing"
    }
    fn exec_mode(&self) -> ExecMode {
        ExecMode::TimingOnly
    }
    fn path(&self) -> Path {
        Path::Timing
    }
}

/// Resolve a `--backend` argument to a backend. Accepted names:
/// `sw26010`/`sw` (simulator), `host`/`native` (host-native, optionally
/// `host:<threads>`), `timing` (cost models only).
pub fn parse(name: &str) -> Result<Box<dyn Backend>, String> {
    match name {
        "sw26010" | "sw" | "simulator" => Ok(Box::new(Sw26010)),
        "timing" | "timing-only" => Ok(Box::new(TimingOnly)),
        "host" | "native" => Ok(Box::new(HostNative { threads: 0 })),
        other => {
            if let Some(t) = other.strip_prefix("host:") {
                let threads: usize = t
                    .parse()
                    .map_err(|_| format!("bad thread count in backend '{other}'"))?;
                return Ok(Box::new(HostNative { threads }));
            }
            Err(format!(
                "unknown backend '{other}' (expected sw26010, host[:threads] or timing)"
            ))
        }
    }
}

/// The backend a core-group mode belongs to. Total: every mode maps to
/// exactly one backend.
pub fn backend_for(mode: ExecMode) -> Box<dyn Backend> {
    match mode {
        ExecMode::Functional => Box::new(Sw26010),
        ExecMode::TimingOnly => Box::new(TimingOnly),
        ExecMode::HostNative { threads } => Box::new(HostNative { threads }),
    }
}

/// Per-launch dispatch: the single point every swdnn kernel consults to
/// pick its execution path for the mode its core group runs in.
pub fn dispatch(mode: ExecMode) -> Path {
    backend_for(mode).path()
}

// ---------------------------------------------------------------------
// Process-default backend (the `--backend` flag / SWCAFFE_BACKEND env)
// ---------------------------------------------------------------------

const KIND_UNSET: u8 = 0;
const KIND_SW: u8 = 1;
const KIND_HOST: u8 = 2;
const KIND_TIMING: u8 = 3;

static DEFAULT_KIND: AtomicU8 = AtomicU8::new(KIND_UNSET);
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Install the process-default backend (what [`default_backend`]
/// returns). Called by binaries after parsing `--backend`.
pub fn install_default(backend: &dyn Backend) {
    let kind = match backend.kind() {
        BackendKind::Sw26010 => KIND_SW,
        BackendKind::HostNative => KIND_HOST,
        BackendKind::TimingOnly => KIND_TIMING,
    };
    if let ExecMode::HostNative { threads } = backend.exec_mode() {
        DEFAULT_THREADS.store(threads, Ordering::Relaxed);
    }
    DEFAULT_KIND.store(kind, Ordering::Relaxed);
}

fn env_default() -> &'static Option<Box<dyn Backend>> {
    static ENV: OnceLock<Option<Box<dyn Backend>>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("SWCAFFE_BACKEND")
            .ok()
            .filter(|v| !v.is_empty())
            .map(|v| parse(&v).unwrap_or_else(|e| panic!("SWCAFFE_BACKEND: {e}")))
    })
}

/// The process-default backend: `--backend` flag (via
/// [`install_default`]) if given, else the `SWCAFFE_BACKEND` environment
/// variable, else [`Sw26010`].
pub fn default_backend() -> Box<dyn Backend> {
    match DEFAULT_KIND.load(Ordering::Relaxed) {
        KIND_SW => Box::new(Sw26010),
        KIND_HOST => Box::new(HostNative {
            threads: DEFAULT_THREADS.load(Ordering::Relaxed),
        }),
        KIND_TIMING => Box::new(TimingOnly),
        _ => match env_default() {
            Some(b) => backend_for(b.exec_mode()),
            None => Box::new(Sw26010),
        },
    }
}

/// The mode value-materialising code should run in under the
/// process-default backend: `Functional` for `Sw26010` **and**
/// `TimingOnly` (values are still needed), `HostNative` for `host`.
pub fn default_functional_mode() -> ExecMode {
    match default_backend().exec_mode() {
        ExecMode::TimingOnly => ExecMode::Functional,
        mode => mode,
    }
}

// ---------------------------------------------------------------------
// Host-side parallel helper
// ---------------------------------------------------------------------

/// Resolve a requested worker count (0 = one per available host core).
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run independent work units on `threads` scoped OS threads.
///
/// Units are distributed round-robin; since every unit's result is
/// fully determined by the unit itself (host mirrors never share
/// accumulators across units), the partition does not affect results —
/// output is bit-identical for any thread count, including 1.
pub fn par_tasks<I, F>(threads: usize, tasks: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let threads = resolve_threads(threads).min(tasks.len()).max(1);
    if threads == 1 {
        for t in tasks {
            f(t);
        }
        return;
    }
    let mut buckets: Vec<Vec<I>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        buckets[i % threads].push(t);
    }
    let f = &f;
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                for t in bucket {
                    f(t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_and_backends_are_a_bijection() {
        for mode in [
            ExecMode::Functional,
            ExecMode::TimingOnly,
            ExecMode::HostNative { threads: 3 },
        ] {
            assert_eq!(backend_for(mode).exec_mode(), mode);
        }
    }

    #[test]
    fn dispatch_paths() {
        assert_eq!(dispatch(ExecMode::Functional), Path::Mesh);
        assert_eq!(dispatch(ExecMode::TimingOnly), Path::Timing);
        assert_eq!(
            dispatch(ExecMode::HostNative { threads: 5 }),
            Path::Host { threads: 5 }
        );
    }

    #[test]
    fn parse_accepts_the_registry_names() {
        assert_eq!(parse("sw26010").unwrap().kind(), BackendKind::Sw26010);
        assert_eq!(parse("sw").unwrap().kind(), BackendKind::Sw26010);
        assert_eq!(parse("host").unwrap().kind(), BackendKind::HostNative);
        assert_eq!(
            parse("host:7").unwrap().exec_mode(),
            ExecMode::HostNative { threads: 7 }
        );
        assert_eq!(parse("timing").unwrap().kind(), BackendKind::TimingOnly);
        assert!(parse("cuda").is_err());
        assert!(parse("host:x").is_err());
    }

    #[test]
    fn invariant_flags() {
        assert!(Sw26010.carries_timing() && Sw26010.carries_checking());
        let host = HostNative { threads: 2 };
        assert!(!host.carries_timing() && !host.carries_checking());
        assert!(TimingOnly.carries_timing() && !TimingOnly.carries_checking());
    }

    #[test]
    fn par_tasks_covers_every_unit_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        par_tasks(4, (0..100).collect(), |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Degenerate cases.
        par_tasks(8, Vec::<usize>::new(), |_| unreachable!());
        par_tasks(0, vec![0usize], |_| {});
    }
}
