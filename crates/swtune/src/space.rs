//! Candidate enumeration: the finite, feasibility-filtered design space
//! the searcher walks.
//!
//! Two axes of determinism matter here. The *contents* of the space are
//! a pure function of the layer shape — candidates come off fixed
//! ladders, filtered through the same `validate()` the launch path
//! enforces, so the set can never contain an LDM-overflowing or
//! non-batch-dividing plan. The *order* is seedable: [`shuffle`] is a
//! splitmix64-driven Fisher–Yates, so two runs with the same seed visit
//! candidates identically, while the argmin in [`crate::search`] makes
//! the winner independent of the order altogether.

use sw26010::KernelPlan;
use swdnn::conv_implicit::{ConvTiles, ImplicitPass};
use swdnn::gemm::TilePlan;
use swdnn::{Broadcast, Buffering, ConvShape, GemmDims, TilingScheme};

use crate::search;

/// Version tag of the enumeration below. Part of the tune-DB
/// invalidation key: bump it whenever the ladders or variants change so
/// stale DBs are rejected rather than silently reused.
pub const SPACE_VERSION: &str = "gemm-v1.conv-v1";

/// Tile-extent ladder for the GEMM block search. Spans the feasible
/// range (`MAX_TILE` = 32) with denser coverage at the small end where
/// the LDM trade-offs bite.
pub const GEMM_EXTENTS: [usize; 9] = [1, 2, 4, 6, 8, 12, 16, 24, 32];

/// Channel-tile ladder for the implicit-conv search.
pub const CONV_EXTENTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Kernel-variant axis of the GEMM space. `(DmaReplicate, Double)` is
/// excluded: the no-RLC kernel has a single staging depth, so that
/// combination would duplicate `(DmaReplicate, Single)` under another
/// label.
const GEMM_VARIANTS: [(Buffering, Broadcast); 3] = [
    (Buffering::Single, Broadcast::RowCol),
    (Buffering::Double, Broadcast::RowCol),
    (Buffering::Single, Broadcast::DmaReplicate),
];

/// All feasible GEMM schemes for `dims`: the hand pick plus every
/// ladder/variant combination that validates. The hand point is always
/// first and always present, so the searched winner can never be worse
/// than the hand choice under the cost model.
pub fn gemm_candidates(dims: GemmDims) -> Vec<TilingScheme> {
    let hand = TilingScheme::hand(dims);
    let mut out = vec![hand];
    for &mt in &GEMM_EXTENTS {
        for &nt in &GEMM_EXTENTS {
            for &kt in &GEMM_EXTENTS {
                for (buffering, broadcast) in GEMM_VARIANTS {
                    let s = TilingScheme {
                        tile: TilePlan { mt, nt, kt },
                        buffering,
                        broadcast,
                    };
                    if s != hand && s.validate().is_ok() {
                        out.push(s);
                    }
                }
            }
        }
    }
    out
}

/// Divisors of `batch` usable as the batch-fibre tile, capped at the
/// largest extent the kernels block for.
fn fibre_candidates(batch: usize) -> Vec<usize> {
    (1..=batch.min(64))
        .filter(|d| batch.is_multiple_of(*d))
        .collect()
}

/// All feasible implicit-conv tile triples for `pass` on `shape`: the
/// hand pick plus every channel-ladder x batch-divisor combination that
/// validates (LDM fit and batch divisibility included).
pub fn conv_tiles_candidates(shape: &ConvShape, pass: ImplicitPass) -> Vec<ConvTiles> {
    let hand = search::hand_tiles(shape, pass);
    let mut out = vec![hand];
    for &a in &CONV_EXTENTS {
        for &b in &CONV_EXTENTS {
            for &fibre in &fibre_candidates(shape.batch) {
                // `nt` spans the batch fibre except in the weight-gradient
                // kernel, where `kt` does.
                let t = match pass {
                    ImplicitPass::BackwardWeights => ConvTiles {
                        mt: a,
                        nt: b,
                        kt: fibre,
                    },
                    _ => ConvTiles {
                        mt: a,
                        nt: fibre,
                        kt: b,
                    },
                };
                if t != hand && t.validate(pass, shape).is_ok() {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Every kernel plan the searcher can emit for `shape`, labelled and
/// deduplicated — the zoo the `swcheck` static lint sweeps. GEMM plans
/// are shape-independent modulo the hand point, so duplicates across the
/// three passes collapse to one entry.
pub fn zoo_plans(shape: &ConvShape) -> Vec<(String, KernelPlan)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for pass in [
        ImplicitPass::Forward,
        ImplicitPass::BackwardWeights,
        ImplicitPass::BackwardInput,
    ] {
        for s in gemm_candidates(search::gemm_dims_for(shape, pass)) {
            let label = format!("gemm/{}", s.label());
            if seen.insert(label.clone()) {
                out.push((label, s.kernel_plan()));
            }
        }
        if search::implicit_allowed(shape, pass) {
            for t in conv_tiles_candidates(shape, pass) {
                let plan = t.kernel_plan(pass);
                let label = format!("{}/{}x{}x{}", plan.name, t.mt, t.nt, t.kt);
                if seen.insert(label.clone()) {
                    out.push((label, plan));
                }
            }
        }
    }
    out
}

/// Deterministic seeded Fisher–Yates driven by splitmix64. Same seed,
/// same order; the empty and single-element cases are no-ops.
pub fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape {
            batch: 128,
            in_c: 128,
            in_h: 28,
            in_w: 28,
            out_c: 128,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn gemm_candidates_all_validate_and_include_hand() {
        let dims = GemmDims::new(128, 100352, 1152);
        let cands = gemm_candidates(dims);
        assert_eq!(cands[0], TilingScheme::hand(dims));
        assert!(cands.len() > 100, "space too small: {}", cands.len());
        for s in &cands {
            s.validate()
                .unwrap_or_else(|v| panic!("{}: {v}", s.label()));
        }
        // No duplicates: labels identify schemes uniquely.
        let mut labels: Vec<String> = cands.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cands.len());
    }

    #[test]
    fn conv_candidates_divide_batch_and_fit_ldm() {
        let shape = small_shape();
        for pass in [
            ImplicitPass::Forward,
            ImplicitPass::BackwardWeights,
            ImplicitPass::BackwardInput,
        ] {
            let cands = conv_tiles_candidates(&shape, pass);
            assert_eq!(cands[0], search::hand_tiles(&shape, pass));
            assert!(cands.len() > 20, "space too small: {}", cands.len());
            for t in &cands {
                t.validate(pass, &shape).unwrap();
                assert!(shape.batch.is_multiple_of(t.fibre_tile(pass)));
            }
        }
    }

    #[test]
    fn enumeration_is_a_pure_function_of_shape() {
        let dims = GemmDims::new(64, 50176, 27);
        assert_eq!(gemm_candidates(dims), gemm_candidates(dims));
        let shape = small_shape();
        assert_eq!(
            conv_tiles_candidates(&shape, ImplicitPass::Forward),
            conv_tiles_candidates(&shape, ImplicitPass::Forward),
        );
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_a_permutation() {
        let base: Vec<usize> = (0..97).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b, "same seed must give the same order");
        let mut c = base.clone();
        shuffle(&mut c, 43);
        assert_ne!(a, c, "different seeds should give different orders");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, base, "shuffle must be a permutation");
    }

    #[test]
    fn zoo_plans_are_unique_and_nonempty() {
        let zoo = zoo_plans(&small_shape());
        assert!(zoo.len() > 100, "zoo too small: {}", zoo.len());
        let mut labels: Vec<&String> = zoo.iter().map(|(l, _)| l).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), zoo.len());
    }
}
