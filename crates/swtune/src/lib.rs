//! # swtune — offline LDM tiling-plan search (ROADMAP item 2)
//!
//! swCaffe's kernels historically shipped with hand-picked blocking:
//! `TilePlan::choose` for the register-communication GEMM and the
//! `div_ceil(8)` channel/batch tiles of the implicit-GEMM convolution.
//! This crate replaces those constants with a *searched* choice:
//!
//! * [`space`] enumerates the candidate [`swdnn::TilingScheme`]s and
//!   [`swdnn::ConvTiles`] a layer shape admits. Every candidate passes
//!   the same `KernelPlan::validate` feasibility gate the launch path
//!   enforces — the searcher cannot emit an LDM-overflowing plan.
//! * [`search`] scores candidates with the kernels' own analytic cost
//!   models (the exact times a `TimingOnly` core group would charge) and
//!   picks a per-layer, per-pass winner. The visit order is seedable but
//!   the winner is an order-independent argmin, so results are
//!   deterministic regardless of seed.
//! * [`db`] persists the winners in a JSON tune DB (via `swjson`) keyed
//!   by layer shape, with an invalidation key tied to the machine model
//!   and the search-space version.
//! * [`shapes`] owns the canonical Table II layer sweep (VGG-16 conv
//!   layers at batch 128) that the benchmarks and `swcheck` share.
//!
//! The `swtune` binary regenerates `docs/tune/tune_db.json` and, with
//! `--check`, verifies the committed DB is byte-identical to a fresh
//! search — the CI determinism gate.

pub mod db;
pub mod search;
pub mod shapes;
pub mod space;

pub use db::TuneDb;
pub use search::{
    tune_all, tune_layer, tune_pass, LayerTuning, PassTuning, TunedPlan, DEFAULT_SEED,
};
pub use shapes::{shape_key, vgg_conv_shapes};
