//! Regenerate or verify the committed tiling tune DB.
//!
//! ```text
//! swtune [--seed N] [--out PATH]   # search and (re)write the DB
//! swtune --check [--out PATH]      # regenerate and demand byte identity
//! ```
//!
//! `--check` is the CI determinism gate: it re-runs the search with the
//! seed recorded in the committed DB and fails unless the fresh render
//! is byte-identical to the file on disk.

use std::process::ExitCode;

use swtune::{TuneDb, DEFAULT_SEED};

const DEFAULT_OUT: &str = "docs/tune/tune_db.json";

fn usage() -> ExitCode {
    eprintln!("usage: swtune [--seed N] [--out PATH] [--check]");
    ExitCode::FAILURE
}

fn summarize(db: &TuneDb) {
    let mut wins = 0usize;
    for layer in &db.layers {
        let win = layer.is_win();
        wins += win as usize;
        let marker = if win { "tuned" } else { " hand" };
        println!(
            "conv{:4}  hand {:8.3}s  tuned {:8.3}s  ({:+6.1}%)  [{}]",
            layer.name,
            layer.hand_total(),
            layer.tuned_total(),
            100.0 * (layer.tuned_total() / layer.hand_total() - 1.0),
            marker,
        );
        for p in layer.passes.iter() {
            println!(
                "          {:3}: {:24} {:10.4}s vs hand {:10.4}s ({} candidates)",
                match p.pass {
                    swdnn::ImplicitPass::Forward => "fwd",
                    swdnn::ImplicitPass::BackwardWeights => "dw",
                    swdnn::ImplicitPass::BackwardInput => "dx",
                },
                p.plan.label(),
                p.tuned_seconds,
                p.hand_seconds,
                p.candidates,
            );
        }
    }
    println!(
        "searched plans beat the hand blocking on {wins}/{} layers",
        db.layers.len()
    );
}

fn main() -> ExitCode {
    let mut seed = DEFAULT_SEED;
    let mut out = DEFAULT_OUT.to_string();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(v) => out = v,
                None => return usage(),
            },
            "--check" => check = true,
            _ => return usage(),
        }
    }

    if check {
        let committed = match std::fs::read_to_string(&out) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("swtune --check: cannot read {out}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Re-search with the committed DB's own seed: byte identity then
        // proves both determinism and seed-independence of the winners.
        let recorded = match TuneDb::parse(&committed) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("swtune --check: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fresh = TuneDb::generate(recorded.seed);
        if fresh.render() == committed {
            println!(
                "swtune --check: {out} is byte-identical to a fresh search (seed {})",
                recorded.seed
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("swtune --check: {out} differs from a fresh search — regenerate it");
            ExitCode::FAILURE
        }
    } else {
        let db = TuneDb::generate(seed);
        if let Some(dir) = std::path::Path::new(&out).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("swtune: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&out, db.render()) {
            eprintln!("swtune: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        summarize(&db);
        println!("wrote {out}");
        ExitCode::SUCCESS
    }
}
