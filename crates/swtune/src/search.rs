//! The searcher: score every candidate with the kernels' own analytic
//! cost models and keep a per-layer, per-pass winner.
//!
//! The scoring function is exactly what a `TimingOnly` core group
//! charges for the candidate — `TilingScheme::time_model` for the
//! explicit plan's GEMMs (plus the pass's fixed im2col/col2im cost) and
//! the `conv_implicit::*_time_with` models for the implicit plan — so a
//! winner's `tuned_seconds` is the time the benchmarks will actually
//! report for it.
//!
//! Determinism: candidates are visited in a seed-shuffled order, but the
//! winner is the argmin under the total order `(seconds, label)`, which
//! is independent of visit order. `tune_pass(seed: a) == tune_pass(seed:
//! b)` for all seeds — the property the CI determinism gate pins.

use swdnn::conv_implicit::{ConvTiles, ImplicitPass};
use swdnn::{conv_explicit, conv_implicit, ConvShape, GemmDims, TilingScheme};

use crate::shapes;
use crate::space;

/// Default search seed; affects only the visit order, never the winner.
pub const DEFAULT_SEED: u64 = 0x5CA1AB1E;

/// One searched plan: which convolution strategy won and its blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunedPlan {
    /// Explicit im2col+GEMM plan under this GEMM tiling scheme.
    Explicit(TilingScheme),
    /// Implicit-GEMM plan under these tile extents.
    Implicit(ConvTiles),
}

impl TunedPlan {
    /// Unique display form, e.g. `ex:16x24x32+db` or `im:8x16x4`. The
    /// argmin tie-break orders on this, so uniqueness within a pass's
    /// candidate set is what makes the winner order-independent.
    pub fn label(&self) -> String {
        match self {
            TunedPlan::Explicit(s) => format!("ex:{}", s.label()),
            TunedPlan::Implicit(t) => format!("im:{}x{}x{}", t.mt, t.nt, t.kt),
        }
    }

    /// Predicted whole-batch seconds of `pass` on `shape` under this
    /// plan — the searcher's objective.
    pub fn seconds(&self, shape: &ConvShape, pass: ImplicitPass) -> f64 {
        match self {
            TunedPlan::Explicit(s) => explicit_seconds(shape, pass, *s),
            TunedPlan::Implicit(t) => implicit_seconds(shape, pass, *t),
        }
    }
}

/// The tuning result for one pass of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PassTuning {
    pub pass: ImplicitPass,
    /// The searched winner.
    pub plan: TunedPlan,
    /// Cost-model seconds of the winner.
    pub tuned_seconds: f64,
    /// Cost-model seconds of the pre-tuner chooser: best of the
    /// hand-blocked explicit plan and (where supported) the hand-blocked
    /// implicit plan.
    pub hand_seconds: f64,
    /// Number of candidates scored.
    pub candidates: usize,
}

impl PassTuning {
    /// Did the search strictly beat the hand-picked blocking?
    pub fn is_win(&self) -> bool {
        self.tuned_seconds < self.hand_seconds
    }
}

/// The tuning result for one layer: forward, weight-gradient and
/// input-gradient passes, in that order.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTuning {
    pub name: String,
    pub shape: ConvShape,
    pub passes: Vec<PassTuning>,
}

impl LayerTuning {
    /// The passes a training step actually runs: the first layer of a
    /// network (raw image input) never needs an input gradient.
    pub fn training_passes(&self) -> impl Iterator<Item = &PassTuning> {
        let first_layer = self.shape.in_c == 3;
        self.passes
            .iter()
            .filter(move |p| !(first_layer && p.pass == ImplicitPass::BackwardInput))
    }

    /// Total searched seconds over the training passes.
    pub fn tuned_total(&self) -> f64 {
        self.training_passes().map(|p| p.tuned_seconds).sum()
    }

    /// Total hand-blocked seconds over the training passes.
    pub fn hand_total(&self) -> f64 {
        self.training_passes().map(|p| p.hand_seconds).sum()
    }

    /// Did the search strictly beat the hand blocking on this layer's
    /// training total?
    pub fn is_win(&self) -> bool {
        self.tuned_total() < self.hand_total()
    }
}

/// The GEMM problem behind `pass` of the explicit plan on `shape`.
pub fn gemm_dims_for(shape: &ConvShape, pass: ImplicitPass) -> GemmDims {
    match pass {
        ImplicitPass::Forward => conv_explicit::fwd_gemm_dims(shape),
        ImplicitPass::BackwardWeights => conv_explicit::bwd_weights_gemm_dims(shape),
        ImplicitPass::BackwardInput => conv_explicit::bwd_input_gemm_dims(shape),
    }
}

/// The hand-picked implicit tiles for `pass` — the chooser's pre-tuner
/// defaults, always present in the candidate set.
pub fn hand_tiles(shape: &ConvShape, pass: ImplicitPass) -> ConvTiles {
    match pass {
        ImplicitPass::Forward => ConvTiles::hand_forward(shape),
        ImplicitPass::BackwardWeights => ConvTiles::hand_backward_weights(shape),
        ImplicitPass::BackwardInput => ConvTiles::hand_backward_input(shape),
    }
}

/// Whether the implicit plan's strategy gate admits `pass` on `shape`
/// (same gate the runtime chooser applies).
pub fn implicit_allowed(shape: &ConvShape, pass: ImplicitPass) -> bool {
    match pass {
        ImplicitPass::Forward => conv_implicit::supports_forward(shape),
        _ => conv_implicit::supports_backward(shape),
    }
}

fn explicit_seconds(shape: &ConvShape, pass: ImplicitPass, scheme: TilingScheme) -> f64 {
    match pass {
        ImplicitPass::Forward => conv_explicit::forward_time_with_scheme(shape, scheme),
        ImplicitPass::BackwardWeights => {
            conv_explicit::backward_weights_time_with_scheme(shape, scheme)
        }
        ImplicitPass::BackwardInput => {
            conv_explicit::backward_input_time_with_scheme(shape, scheme)
        }
    }
    .seconds()
}

fn implicit_seconds(shape: &ConvShape, pass: ImplicitPass, tiles: ConvTiles) -> f64 {
    match pass {
        ImplicitPass::Forward => conv_implicit::forward_time_with(shape, tiles),
        ImplicitPass::BackwardWeights => conv_implicit::backward_weights_time_with(shape, tiles),
        ImplicitPass::BackwardInput => conv_implicit::backward_input_time_with(shape, tiles),
    }
    .seconds()
}

/// Search one pass of one layer. `seed` steers only the candidate visit
/// order; the returned winner is the order-independent argmin over
/// `(seconds, label)`.
pub fn tune_pass(shape: &ConvShape, pass: ImplicitPass, seed: u64) -> PassTuning {
    let dims = gemm_dims_for(shape, pass);
    let hand_explicit = explicit_seconds(shape, pass, TilingScheme::hand(dims));
    let hand_seconds = if implicit_allowed(shape, pass) {
        hand_explicit.min(implicit_seconds(shape, pass, hand_tiles(shape, pass)))
    } else {
        hand_explicit
    };

    let mut candidates: Vec<TunedPlan> = space::gemm_candidates(dims)
        .into_iter()
        .map(TunedPlan::Explicit)
        .collect();
    if implicit_allowed(shape, pass) {
        candidates.extend(
            space::conv_tiles_candidates(shape, pass)
                .into_iter()
                .map(TunedPlan::Implicit),
        );
    }
    space::shuffle(&mut candidates, seed);

    let n = candidates.len();
    let mut best: Option<(f64, String, TunedPlan)> = None;
    for plan in candidates {
        let secs = plan.seconds(shape, pass);
        let label = plan.label();
        let better = match &best {
            None => true,
            Some((bs, bl, _)) => secs < *bs || (secs == *bs && label < *bl),
        };
        if better {
            best = Some((secs, label, plan));
        }
    }
    let (tuned_seconds, _, plan) = best.expect("candidate set always contains the hand point");
    PassTuning {
        pass,
        plan,
        tuned_seconds,
        hand_seconds,
        candidates: n,
    }
}

/// Search all three passes of one layer.
pub fn tune_layer(name: &str, shape: &ConvShape, seed: u64) -> LayerTuning {
    LayerTuning {
        name: name.to_string(),
        shape: *shape,
        passes: [
            ImplicitPass::Forward,
            ImplicitPass::BackwardWeights,
            ImplicitPass::BackwardInput,
        ]
        .into_iter()
        .map(|pass| tune_pass(shape, pass, seed))
        .collect(),
    }
}

/// Search the full canonical sweep ([`crate::shapes::vgg_conv_shapes`]).
pub fn tune_all(seed: u64) -> Vec<LayerTuning> {
    shapes::vgg_conv_shapes()
        .iter()
        .map(|(name, shape)| tune_layer(name, shape, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_shape() -> ConvShape {
        // VGG conv4_2 at a reduced batch: big enough that the trade-offs
        // are real, small enough for fast unit tests.
        ConvShape {
            batch: 16,
            in_c: 512,
            in_h: 28,
            in_w: 28,
            out_c: 512,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn winner_is_independent_of_seed() {
        let shape = mid_shape();
        for pass in [
            ImplicitPass::Forward,
            ImplicitPass::BackwardWeights,
            ImplicitPass::BackwardInput,
        ] {
            let a = tune_pass(&shape, pass, 1);
            let b = tune_pass(&shape, pass, 0xDEAD_BEEF);
            assert_eq!(a, b, "seed changed the winner for {pass:?}");
        }
    }

    #[test]
    fn tuned_never_loses_to_hand() {
        // The hand point is in the candidate set, so the winner can be
        // at most equal to it under the cost model.
        let shape = mid_shape();
        let tuning = tune_layer("test", &shape, DEFAULT_SEED);
        for p in &tuning.passes {
            assert!(
                p.tuned_seconds <= p.hand_seconds,
                "{:?}: tuned {} > hand {}",
                p.pass,
                p.tuned_seconds,
                p.hand_seconds
            );
            assert!(p.candidates > 100);
        }
    }

    #[test]
    fn winner_seconds_match_its_own_cost_model() {
        let shape = mid_shape();
        let p = tune_pass(&shape, ImplicitPass::Forward, DEFAULT_SEED);
        assert_eq!(
            p.tuned_seconds,
            p.plan.seconds(&shape, ImplicitPass::Forward)
        );
    }

    #[test]
    fn first_layer_training_total_skips_input_gradient() {
        let shape = ConvShape {
            batch: 8,
            in_c: 3,
            in_h: 32,
            in_w: 32,
            out_c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let tuning = tune_layer("first", &shape, DEFAULT_SEED);
        assert_eq!(tuning.passes.len(), 3);
        assert_eq!(tuning.training_passes().count(), 2);
    }
}
