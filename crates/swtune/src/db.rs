//! The on-disk tune DB: searched winners, keyed by layer shape,
//! serialised deterministically through `swjson`.
//!
//! The DB carries an *invalidation key* binding it to the machine model
//! (LDM capacity, mesh geometry) and the search-space version. A DB
//! written against a different machine or an older candidate space is
//! rejected at parse time — a stale cache is an error, never a silent
//! fallback. The recorded seed is provenance only: winners are
//! seed-independent, so `--check` regenerates with the recorded seed and
//! demands byte identity.

use swdnn::conv_implicit::{ConvTiles, ImplicitPass};
use swdnn::gemm::TilePlan;
use swdnn::{Broadcast, Buffering, ConvShape, TilingScheme};
use swjson::{obj, Json};

use crate::search::{tune_all, LayerTuning, PassTuning, TunedPlan};
use crate::shapes::shape_key;
use crate::space::SPACE_VERSION;

/// Schema version of the DB layout itself.
pub const DB_VERSION: i64 = 1;

/// The key a DB must match to be usable on this build: machine model
/// extents plus the candidate-space version.
pub fn invalidation_key() -> String {
    format!(
        "ldm={};mesh={};space={}",
        sw26010::arch::LDM_BYTES,
        sw26010::arch::MESH_DIM,
        SPACE_VERSION
    )
}

/// A complete tuning database: one entry per canonical layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneDb {
    pub seed: u64,
    pub layers: Vec<LayerTuning>,
}

fn pass_key(pass: ImplicitPass) -> &'static str {
    match pass {
        ImplicitPass::Forward => "fwd",
        ImplicitPass::BackwardWeights => "dw",
        ImplicitPass::BackwardInput => "dx",
    }
}

fn parse_pass_key(key: &str) -> Result<ImplicitPass, String> {
    match key {
        "fwd" => Ok(ImplicitPass::Forward),
        "dw" => Ok(ImplicitPass::BackwardWeights),
        "dx" => Ok(ImplicitPass::BackwardInput),
        other => Err(format!("tune db: unknown pass `{other}`")),
    }
}

fn plan_json(plan: &TunedPlan) -> Json {
    match plan {
        TunedPlan::Explicit(s) => obj()
            .field("kind", "explicit")
            .field("mt", s.tile.mt)
            .field("nt", s.tile.nt)
            .field("kt", s.tile.kt)
            .field("double_buffer", s.buffering == Buffering::Double)
            .field("no_rlc", s.broadcast == Broadcast::DmaReplicate)
            .build(),
        TunedPlan::Implicit(t) => obj()
            .field("kind", "implicit")
            .field("mt", t.mt)
            .field("nt", t.nt)
            .field("kt", t.kt)
            .build(),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("tune db: missing field `{key}`"))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("tune db: field `{key}` is not a non-negative integer"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("tune db: field `{key}` is not a number"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("tune db: field `{key}` is not a string"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("tune db: field `{key}` is not a bool"))
}

fn parse_plan(v: &Json) -> Result<TunedPlan, String> {
    let mt = usize_field(v, "mt")?;
    let nt = usize_field(v, "nt")?;
    let kt = usize_field(v, "kt")?;
    match str_field(v, "kind")? {
        "explicit" => Ok(TunedPlan::Explicit(TilingScheme {
            tile: TilePlan { mt, nt, kt },
            buffering: if bool_field(v, "double_buffer")? {
                Buffering::Double
            } else {
                Buffering::Single
            },
            broadcast: if bool_field(v, "no_rlc")? {
                Broadcast::DmaReplicate
            } else {
                Broadcast::RowCol
            },
        })),
        "implicit" => Ok(TunedPlan::Implicit(ConvTiles { mt, nt, kt })),
        other => Err(format!("tune db: unknown plan kind `{other}`")),
    }
}

fn shape_json(shape: &ConvShape) -> Json {
    obj()
        .field("batch", shape.batch)
        .field("in_c", shape.in_c)
        .field("in_h", shape.in_h)
        .field("in_w", shape.in_w)
        .field("out_c", shape.out_c)
        .field("k", shape.k)
        .field("stride", shape.stride)
        .field("pad", shape.pad)
        .build()
}

fn parse_shape(v: &Json) -> Result<ConvShape, String> {
    Ok(ConvShape {
        batch: usize_field(v, "batch")?,
        in_c: usize_field(v, "in_c")?,
        in_h: usize_field(v, "in_h")?,
        in_w: usize_field(v, "in_w")?,
        out_c: usize_field(v, "out_c")?,
        k: usize_field(v, "k")?,
        stride: usize_field(v, "stride")?,
        pad: usize_field(v, "pad")?,
    })
}

impl TuneDb {
    /// Run the full search over the canonical sweep.
    pub fn generate(seed: u64) -> TuneDb {
        TuneDb {
            seed,
            layers: tune_all(seed),
        }
    }

    /// The searched winner for `(shape, pass)`, if this DB has one.
    pub fn lookup(&self, shape: &ConvShape, pass: ImplicitPass) -> Option<&PassTuning> {
        self.layers
            .iter()
            .find(|l| l.shape == *shape)?
            .passes
            .iter()
            .find(|p| p.pass == pass)
    }

    pub fn to_json(&self) -> Json {
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                let passes: Vec<Json> = l
                    .passes
                    .iter()
                    .map(|p| {
                        obj()
                            .field("pass", pass_key(p.pass))
                            .field("label", p.plan.label())
                            .field("plan", plan_json(&p.plan))
                            .field("tuned_seconds", p.tuned_seconds)
                            .field("hand_seconds", p.hand_seconds)
                            .field("candidates", p.candidates)
                            .build()
                    })
                    .collect();
                obj()
                    .field("name", l.name.as_str())
                    .field("key", shape_key(&l.shape))
                    .field("shape", shape_json(&l.shape))
                    .field("passes", Json::Arr(passes))
                    .build()
            })
            .collect();
        obj()
            .field("version", DB_VERSION)
            .field("invalidation_key", invalidation_key())
            .field("seed", self.seed)
            .field("layers", Json::Arr(layers))
            .build()
    }

    /// Deterministic on-disk form (pretty JSON, trailing newline).
    pub fn render(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parse and *validate* a DB: a version or invalidation-key mismatch
    /// is an error — stale caches must be regenerated, never reused.
    pub fn parse(text: &str) -> Result<TuneDb, String> {
        let v = Json::parse(text)?;
        let version = field(&v, "version")?
            .as_i64()
            .ok_or("tune db: `version` is not an integer")?;
        if version != DB_VERSION {
            return Err(format!(
                "tune db is stale: version {version}, expected {DB_VERSION}"
            ));
        }
        let key = str_field(&v, "invalidation_key")?;
        let want = invalidation_key();
        if key != want {
            return Err(format!(
                "tune db is stale: invalidation key `{key}`, this build wants `{want}`"
            ));
        }
        let seed = field(&v, "seed")?
            .as_u64()
            .ok_or("tune db: `seed` is not a non-negative integer")?;
        let mut layers = Vec::new();
        for lv in field(&v, "layers")?
            .as_arr()
            .ok_or("tune db: `layers` is not an array")?
        {
            let shape = parse_shape(field(lv, "shape")?)?;
            let mut passes = Vec::new();
            for pv in field(lv, "passes")?
                .as_arr()
                .ok_or("tune db: `passes` is not an array")?
            {
                passes.push(PassTuning {
                    pass: parse_pass_key(str_field(pv, "pass")?)?,
                    plan: parse_plan(field(pv, "plan")?)?,
                    tuned_seconds: f64_field(pv, "tuned_seconds")?,
                    hand_seconds: f64_field(pv, "hand_seconds")?,
                    candidates: usize_field(pv, "candidates")?,
                });
            }
            layers.push(LayerTuning {
                name: str_field(lv, "name")?.to_string(),
                shape,
                passes,
            });
        }
        Ok(TuneDb { seed, layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{tune_layer, DEFAULT_SEED};

    fn small_db() -> TuneDb {
        let shape = ConvShape {
            batch: 16,
            in_c: 128,
            in_h: 14,
            in_w: 14,
            out_c: 128,
            k: 3,
            stride: 1,
            pad: 1,
        };
        TuneDb {
            seed: DEFAULT_SEED,
            layers: vec![tune_layer("small", &shape, DEFAULT_SEED)],
        }
    }

    #[test]
    fn render_parse_roundtrip_is_lossless() {
        let db = small_db();
        let text = db.render();
        let back = TuneDb::parse(&text).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.render(), text, "re-render must be byte-identical");
    }

    #[test]
    fn lookup_finds_winners_by_shape_and_pass() {
        let db = small_db();
        let shape = db.layers[0].shape;
        let hit = db.lookup(&shape, ImplicitPass::Forward).unwrap();
        assert_eq!(hit.pass, ImplicitPass::Forward);
        let miss_shape = ConvShape { batch: 99, ..shape };
        assert!(db.lookup(&miss_shape, ImplicitPass::Forward).is_none());
    }

    #[test]
    fn stale_invalidation_key_is_rejected() {
        let text = small_db()
            .render()
            .replace(SPACE_VERSION, "gemm-v0.conv-v0");
        let err = TuneDb::parse(&text).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let text = small_db()
            .render()
            .replace("\"version\": 1", "\"version\": 99");
        let err = TuneDb::parse(&text).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }
}
