//! The canonical benchmark layer sweep: every VGG-16 convolutional
//! layer at batch 128 (Table II of the paper). This is the single source
//! of truth — the `table2_conv` benchmark and the `swcheck` static lint
//! both import it from here, so the tuner, the benchmarks and the
//! sanitizer always agree on which shapes matter.

use swdnn::ConvShape;

struct Layer {
    name: &'static str,
    ni: usize,
    no: usize,
    hw: usize,
}

const LAYERS: [Layer; 13] = [
    Layer {
        name: "1_1",
        ni: 3,
        no: 64,
        hw: 224,
    },
    Layer {
        name: "1_2",
        ni: 64,
        no: 64,
        hw: 224,
    },
    Layer {
        name: "2_1",
        ni: 64,
        no: 128,
        hw: 112,
    },
    Layer {
        name: "2_2",
        ni: 128,
        no: 128,
        hw: 112,
    },
    Layer {
        name: "3_1",
        ni: 128,
        no: 256,
        hw: 56,
    },
    Layer {
        name: "3_2",
        ni: 256,
        no: 256,
        hw: 56,
    },
    Layer {
        name: "3_3",
        ni: 256,
        no: 256,
        hw: 56,
    },
    Layer {
        name: "4_1",
        ni: 256,
        no: 512,
        hw: 28,
    },
    Layer {
        name: "4_2",
        ni: 512,
        no: 512,
        hw: 28,
    },
    Layer {
        name: "4_3",
        ni: 512,
        no: 512,
        hw: 28,
    },
    Layer {
        name: "5_1",
        ni: 512,
        no: 512,
        hw: 14,
    },
    Layer {
        name: "5_2",
        ni: 512,
        no: 512,
        hw: 14,
    },
    Layer {
        name: "5_3",
        ni: 512,
        no: 512,
        hw: 14,
    },
];

/// The Table II shape sweep: every VGG-16 convolutional layer at batch
/// 128 (k=3, stride 1, pad 1), named `1_1` .. `5_3`.
pub fn vgg_conv_shapes() -> Vec<(&'static str, ConvShape)> {
    LAYERS
        .iter()
        .map(|l| {
            (
                l.name,
                ConvShape {
                    batch: 128,
                    in_c: l.ni,
                    in_h: l.hw,
                    in_w: l.hw,
                    out_c: l.no,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
            )
        })
        .collect()
}

/// Canonical tune-DB key of a conv shape, e.g.
/// `b128_c3x224x224_o64_k3s1p1`. Two shapes share an entry iff they are
/// field-for-field equal.
pub fn shape_key(shape: &ConvShape) -> String {
    format!(
        "b{}_c{}x{}x{}_o{}_k{}s{}p{}",
        shape.batch,
        shape.in_c,
        shape.in_h,
        shape.in_w,
        shape.out_c,
        shape.k,
        shape.stride,
        shape.pad
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_thirteen_valid_named_layers() {
        let shapes = vgg_conv_shapes();
        assert_eq!(shapes.len(), 13);
        assert_eq!(shapes[0].0, "1_1");
        assert_eq!(shapes[12].0, "5_3");
        for (name, s) in &shapes {
            s.validate().unwrap_or_else(|e| panic!("conv{name}: {e}"));
            assert_eq!(s.batch, 128);
        }
    }

    #[test]
    fn shape_keys_are_stable_and_shape_determined() {
        let shapes = vgg_conv_shapes();
        let keys: Vec<String> = shapes.iter().map(|(_, s)| shape_key(s)).collect();
        assert_eq!(keys[0], "b128_c3x224x224_o64_k3s1p1");
        // Repeated layers (e.g. conv5_1..5_3) are the same shape and must
        // share a key: the tune DB is keyed by shape, not layer position.
        for ((na, a), (nb, b)) in shapes.iter().zip(shapes.iter().skip(1)) {
            assert_eq!(
                a == b,
                shape_key(a) == shape_key(b),
                "key/shape equality mismatch between conv{na} and conv{nb}"
            );
        }
    }
}
