//! Conformance properties of the searched plans (the ISSUE's acceptance
//! gates):
//!
//! 1. Every plan the candidate enumeration can emit launches through the
//!    checked `CoreGroup::try_run_planned` path — the searcher and the
//!    launch-time validator agree on feasibility.
//! 2. A searched winner computes *bit-identical* results to the hand
//!    blocking, on the simulated mesh and on the host-native backend:
//!    re-tiling changes the schedule, never the arithmetic.

use sw26010::{CoreGroup, ExecMode};
use swdnn::conv_explicit::{self, ConvBwdOperands, ConvFwdOperands};
use swdnn::conv_implicit::{
    self, ConvTiles, ImplicitBwdOperands, ImplicitFwdOperands, ImplicitPass,
};
use swdnn::{ConvShape, ExplicitSchemes, TilingScheme};
use swtune::search::{self, TunedPlan};
use swtune::space;

const MODES: [ExecMode; 2] = [ExecMode::Functional, ExecMode::HostNative { threads: 2 }];

fn pattern(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(2862933555777941757)
                .wrapping_add(seed);
            ((x >> 40) % 200) as f32 / 100.0 - 1.0
        })
        .collect()
}

fn small_shape() -> ConvShape {
    ConvShape {
        batch: 4,
        in_c: 12,
        in_h: 8,
        in_w: 8,
        out_c: 10,
        k: 3,
        stride: 1,
        pad: 1,
    }
}

/// The best explicit scheme for `pass` under the cost model (any
/// argmin will do here; order-independence is covered in `search`).
fn best_explicit(shape: &ConvShape, pass: ImplicitPass) -> TilingScheme {
    space::gemm_candidates(search::gemm_dims_for(shape, pass))
        .into_iter()
        .min_by(|a, b| {
            let (ta, tb) = (
                TunedPlan::Explicit(*a).seconds(shape, pass),
                TunedPlan::Explicit(*b).seconds(shape, pass),
            );
            ta.partial_cmp(&tb).unwrap()
        })
        .unwrap()
}

fn best_implicit(shape: &ConvShape, pass: ImplicitPass) -> ConvTiles {
    space::conv_tiles_candidates(shape, pass)
        .into_iter()
        .min_by(|a, b| {
            let (ta, tb) = (
                TunedPlan::Implicit(*a).seconds(shape, pass),
                TunedPlan::Implicit(*b).seconds(shape, pass),
            );
            ta.partial_cmp(&tb).unwrap()
        })
        .unwrap()
}

#[test]
fn every_searchable_plan_launches_through_the_checked_path() {
    // A shape that admits both strategies on all three passes, so the
    // zoo contains the GEMM *and* implicit plan families.
    let shape = ConvShape {
        batch: 8,
        in_c: 128,
        in_h: 7,
        in_w: 7,
        out_c: 128,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let zoo = space::zoo_plans(&shape);
    assert!(zoo.len() > 2_000, "zoo too small: {}", zoo.len());
    let mut cg = CoreGroup::new(ExecMode::TimingOnly);
    for (label, plan) in &zoo {
        cg.try_run_planned(plan, |cpe| cpe.charge_flops(1))
            .unwrap_or_else(|v| panic!("{label} rejected at launch: {v}"));
    }
    assert_eq!(cg.stats().launches as usize, zoo.len());
}

#[test]
fn tuned_explicit_forward_matches_hand_bitwise_on_all_backends() {
    let s = small_shape();
    let input = pattern(s.input_len(), 11);
    let weights = pattern(s.weight_len(), 22);
    let run = |mode: ExecMode, scheme: TilingScheme| {
        let mut out = vec![0.0f32; s.output_len()];
        let mut cg = CoreGroup::new(mode);
        conv_explicit::forward_with_scheme(
            &mut cg,
            &s,
            scheme,
            Some(ConvFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut out,
            }),
        );
        out
    };
    let hand_scheme = TilingScheme::hand(conv_explicit::fwd_gemm_dims(&s));
    let tuned_scheme = best_explicit(&s, ImplicitPass::Forward);
    let hand = run(ExecMode::Functional, hand_scheme);
    for mode in MODES {
        assert_eq!(
            run(mode, tuned_scheme),
            hand,
            "tuned {} diverged from hand under {mode:?}",
            tuned_scheme.label()
        );
        assert_eq!(
            run(mode, hand_scheme),
            hand,
            "hand not stable under {mode:?}"
        );
    }
}

#[test]
fn tuned_explicit_backward_matches_hand_bitwise_on_all_backends() {
    let s = small_shape();
    let input = pattern(s.input_len(), 11);
    let weights = pattern(s.weight_len(), 22);
    let out_grad = pattern(s.output_len(), 33);
    let run = |mode: ExecMode, schemes: ExplicitSchemes| {
        let mut in_grad = vec![0.0f32; s.input_len()];
        let mut w_grad = vec![0.0f32; s.weight_len()];
        let mut cg = CoreGroup::new(mode);
        conv_explicit::backward_with_schemes(
            &mut cg,
            &s,
            schemes,
            Some(ConvBwdOperands {
                input: &input,
                weights: &weights,
                out_grad: &out_grad,
                in_grad: Some(&mut in_grad),
                w_grad: Some(&mut w_grad),
            }),
        );
        (in_grad, w_grad)
    };
    let tuned = ExplicitSchemes {
        forward: best_explicit(&s, ImplicitPass::Forward),
        backward_weights: best_explicit(&s, ImplicitPass::BackwardWeights),
        backward_input: best_explicit(&s, ImplicitPass::BackwardInput),
    };
    let hand = run(ExecMode::Functional, ExplicitSchemes::hand(&s));
    for mode in MODES {
        assert_eq!(
            run(mode, tuned),
            hand,
            "tuned gradients diverged under {mode:?}"
        );
    }
}

#[test]
fn tuned_implicit_tiles_match_hand_bitwise_on_all_backends() {
    let s = small_shape();
    let input = pattern(s.input_len(), 44);
    let weights = pattern(s.weight_len(), 55);
    let out_grad = pattern(s.output_len(), 66);

    let fwd = |mode: ExecMode, tiles: ConvTiles| {
        let mut out = vec![0.0f32; s.output_len()];
        let mut cg = CoreGroup::new(mode);
        conv_implicit::forward_with_tiles(
            &mut cg,
            &s,
            tiles,
            Some(ImplicitFwdOperands {
                input: &input,
                weights: &weights,
                output: &mut out,
            }),
        );
        out
    };
    let tuned_fwd = best_implicit(&s, ImplicitPass::Forward);
    let hand_fwd = fwd(ExecMode::Functional, ConvTiles::hand_forward(&s));
    for mode in MODES {
        assert_eq!(
            fwd(mode, tuned_fwd),
            hand_fwd,
            "tuned tiles {tuned_fwd:?} diverged from hand under {mode:?}"
        );
    }

    let bwd = |mode: ExecMode, input_tiles: ConvTiles, weight_tiles: ConvTiles| {
        let mut in_grad = vec![0.0f32; s.input_len()];
        let mut w_grad = vec![0.0f32; s.weight_len()];
        let mut cg = CoreGroup::new(mode);
        conv_implicit::backward_with_tiles(
            &mut cg,
            &s,
            input_tiles,
            weight_tiles,
            Some(ImplicitBwdOperands {
                input: &input,
                weights: &weights,
                out_grad: &out_grad,
                in_grad: Some(&mut in_grad),
                w_grad: Some(&mut w_grad),
            }),
        );
        (in_grad, w_grad)
    };
    let hand = bwd(
        ExecMode::Functional,
        ConvTiles::hand_backward_input(&s),
        ConvTiles::hand_backward_weights(&s),
    );
    let tuned_dx = best_implicit(&s, ImplicitPass::BackwardInput);
    let tuned_dw = best_implicit(&s, ImplicitPass::BackwardWeights);
    for mode in MODES {
        assert_eq!(
            bwd(mode, tuned_dx, tuned_dw),
            hand,
            "tuned gradients diverged under {mode:?}"
        );
    }
}
