//! # baselines — the paper's comparator systems as roofline cost models
//!
//! The paper compares swCaffe on SW26010 against Caffe+cuDNN on an NVIDIA
//! K40m and Caffe+OpenBLAS on a 12-core Xeon E5-2680 v3 (Table I specs,
//! Table III throughputs, Figs. 8/9 per-layer times). Neither device is
//! available here, so both are modelled: per-layer roofline costs
//! (`max(flops / effective_peak, bytes / bandwidth)` plus fixed per-layer
//! launch overheads) with efficiency knobs calibrated to the throughputs
//! the paper measured. The GPU additionally pays a host-side data-pipeline
//! cost per image (LMDB decode + PCIe transfer), which is what lets
//! swCaffe *beat* the K40m on AlexNet in Table III despite the GPU's
//! higher peak.

pub mod device;
pub mod eval;

pub use device::{
    cpu_e5_2680v3, gpu_k40m, intel_knl_spec, k40m_spec, sw26010_spec, Device, DeviceSpec,
};
pub use eval::{network_times, throughput_img_per_sec, LayerTime};
