//! Device descriptions (Table I) and per-layer roofline models.

use swdnn::ConvShape;

/// Static specification of a processor, as in Table I.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub release_year: u32,
    pub bandwidth_gbs: f64,
    pub float_tflops: f64,
    pub double_tflops: f64,
}

impl DeviceSpec {
    /// Peak single-precision rate in flops/s.
    pub fn peak_flops(&self) -> f64 {
        self.float_tflops * 1e12
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bandwidth(&self) -> f64 {
        self.bandwidth_gbs * 1e9
    }

    /// Machine balance in flops per byte — the roofline knee: work with a
    /// lower arithmetic intensity is bandwidth-bound on this device.
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops() / self.mem_bandwidth()
    }
}

/// Table I, column SW26010.
pub fn sw26010_spec() -> DeviceSpec {
    DeviceSpec {
        name: "SW26010",
        release_year: 2014,
        bandwidth_gbs: 128.0,
        float_tflops: 3.02,
        double_tflops: 3.02,
    }
}

/// Table I, column NVIDIA K40m.
pub fn k40m_spec() -> DeviceSpec {
    DeviceSpec {
        name: "Nvidia K40m",
        release_year: 2013,
        bandwidth_gbs: 288.0,
        float_tflops: 4.29,
        double_tflops: 1.43,
    }
}

/// Table I, column Intel Knights Landing.
pub fn intel_knl_spec() -> DeviceSpec {
    DeviceSpec {
        name: "Intel KNL",
        release_year: 2016,
        bandwidth_gbs: 475.0,
        float_tflops: 6.92,
        double_tflops: 3.46,
    }
}

/// A comparator device with the calibration knobs of its software stack.
#[derive(Debug, Clone, Copy)]
pub struct Device {
    pub name: &'static str,
    /// Peak single-precision flops/s.
    pub peak_flops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Best-case fraction of peak the conv/GEMM library achieves on
    /// large, well-shaped problems.
    pub gemm_eff: f64,
    /// Receptive-field size (in_channels * k * k) below which library
    /// efficiency degrades linearly (thin GEMMs, tail effects).
    pub eff_knee: f64,
    /// Floor on the efficiency degradation factor.
    pub eff_floor: f64,
    /// Fixed overhead per layer invocation (kernel launch / dispatch).
    pub layer_overhead: f64,
    /// Host-side input-pipeline cost per image per iteration (decode +
    /// transform + PCIe for GPUs; zero where the data is consumed in
    /// place). The paper: "data reading ... accounts for over 40% \[of\]
    /// AlexNet" on the K40m.
    pub input_pipeline_per_image: f64,
}

/// Caffe + cuDNN v5.1 on a K40m, calibrated to Table III.
pub fn gpu_k40m() -> Device {
    Device {
        name: "K40m",
        peak_flops: 4.29e12,
        mem_bw: 288.0e9,
        gemm_eff: 0.33,
        eff_knee: 900.0,
        eff_floor: 0.30,
        layer_overhead: 20.0e-6,
        input_pipeline_per_image: 6.5e-3,
    }
}

/// Caffe + OpenBLAS on the 12-core E5-2680 v3, calibrated to Table III.
pub fn cpu_e5_2680v3() -> Device {
    Device {
        name: "12-core CPU",
        peak_flops: 1.28e12,
        mem_bw: 68.0e9,
        gemm_eff: 0.085,
        eff_knee: 900.0,
        eff_floor: 0.4,
        layer_overhead: 5.0e-6,
        input_pipeline_per_image: 0.0,
    }
}

impl Device {
    /// Library efficiency for a convolution shape: degrades when the
    /// GEMM's shared dimension (in_channels * k^2) is thin.
    fn conv_eff(&self, shape: &ConvShape) -> f64 {
        let k_dim = (shape.in_c * shape.k * shape.k) as f64;
        let factor = (k_dim / self.eff_knee).clamp(self.eff_floor, 1.0);
        self.gemm_eff * factor
    }

    fn roofline(&self, flops: f64, bytes: f64, eff: f64) -> f64 {
        self.layer_overhead + (flops / (self.peak_flops * eff)).max(bytes / self.mem_bw)
    }

    /// Convolution forward time for the whole batch.
    pub fn conv_forward(&self, shape: &ConvShape) -> f64 {
        let flops = shape.forward_flops() as f64;
        let bytes = 4.0
            * (shape.input_len() + shape.output_len() + shape.weight_len() * shape.batch.min(8))
                as f64;
        self.roofline(flops, bytes, self.conv_eff(shape))
    }

    /// Convolution backward time (both gradients: ~2x the forward work).
    pub fn conv_backward(&self, shape: &ConvShape, input_grad_needed: bool) -> f64 {
        let passes = if input_grad_needed { 2.0 } else { 1.0 };
        let flops = passes * shape.forward_flops() as f64;
        let bytes = (1.0 + passes) * 4.0 * (shape.input_len() + shape.output_len()) as f64;
        self.layer_overhead
            + (flops / (self.peak_flops * self.conv_eff(shape))).max(bytes / self.mem_bw)
    }

    /// Dense (inner-product) layer, `m x n x k` GEMM per pass.
    pub fn gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        // Dense layers at small batch are weight-bandwidth-bound; the knee
        // keys on the reduction dimension.
        let factor = ((k as f64) / self.eff_knee).clamp(self.eff_floor, 1.0);
        self.roofline(flops, bytes, self.gemm_eff * factor)
    }

    /// Memory-bound streaming op over `elems` elements with `streams`
    /// tensor traversals.
    pub fn streaming(&self, elems: usize, streams: usize) -> f64 {
        self.layer_overhead + (elems * streams) as f64 * 4.0 / self.mem_bw
    }

    /// Host input pipeline for one iteration of `batch` images.
    pub fn input_pipeline(&self, batch: usize) -> f64 {
        batch as f64 * self.input_pipeline_per_image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_conv(ni: usize, no: usize, hw: usize, b: usize) -> ConvShape {
        ConvShape {
            batch: b,
            in_c: ni,
            in_h: hw,
            in_w: hw,
            out_c: no,
            k: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn table_i_specs() {
        let sw = sw26010_spec();
        assert_eq!(
            sw.float_tflops, sw.double_tflops,
            "SW26010 has no native SP"
        );
        // The SW26010's defining imbalance (Sec. II-A): ~23.6 flops/byte
        // against DRAM, an order past contemporary GPUs.
        assert!((sw.machine_balance() - 3.02e12 / 128.0e9).abs() < 1e-9);
        assert!(sw.machine_balance() > 20.0);
        let gpu = k40m_spec();
        assert!(gpu.float_tflops > 3.0 * gpu.double_tflops / 1.1);
        let knl = intel_knl_spec();
        assert!(knl.bandwidth_gbs > gpu.bandwidth_gbs);
    }

    #[test]
    fn gpu_fast_on_large_convs() {
        let gpu = gpu_k40m();
        let shape = vgg_conv(256, 256, 56, 64);
        let t = gpu.conv_forward(&shape);
        let achieved = shape.forward_flops() as f64 / t;
        // cuDNN-era K40m: hundreds of Gflops on big VGG layers.
        assert!(achieved > 300.0e9, "achieved {achieved:.3e}");
        assert!(achieved < 4.29e12);
    }

    #[test]
    fn gpu_thin_convs_degrade() {
        let gpu = gpu_k40m();
        let big = vgg_conv(256, 256, 56, 4);
        let thin = ConvShape { in_c: 3, ..big };
        let rate = |s: &ConvShape| s.forward_flops() as f64 / gpu.conv_forward(s);
        assert!(rate(&thin) < 0.6 * rate(&big));
    }

    #[test]
    fn cpu_is_an_order_slower_than_gpu() {
        let gpu = gpu_k40m();
        let cpu = cpu_e5_2680v3();
        let shape = vgg_conv(128, 128, 112, 16);
        assert!(cpu.conv_forward(&shape) > 5.0 * gpu.conv_forward(&shape));
    }

    #[test]
    fn streaming_ops_are_bandwidth_bound() {
        let gpu = gpu_k40m();
        // 100 MB of pooling on the GPU: well under a millisecond beyond
        // the launch overhead.
        let t = gpu.streaming(25_000_000, 2);
        assert!(t < 1.0e-3);
        assert!(t > 25_000_000.0 * 8.0 / 288.0e9);
    }
}
