//! Network evaluation on a baseline device: walks the resolved layer
//! descriptors of a `swcaffe_core::Net` and prices each layer with the
//! device's roofline model, producing the Figs. 8/9 per-layer series and
//! the Table III throughputs.

use swcaffe_core::{LayerKind, LayerOp, Net};
use swdnn::ConvShape;

use crate::device::Device;

/// One layer's forward and backward time on a device.
#[derive(Debug, Clone)]
pub struct LayerTime {
    pub name: String,
    pub forward: f64,
    pub backward: f64,
}

fn conv_shape_of(op: &LayerOp) -> ConvShape {
    let (num_output, kernel, stride, pad) = match op.kind {
        LayerKind::Convolution {
            num_output,
            kernel,
            stride,
            pad,
            ..
        }
        | LayerKind::FusedConvBnRelu {
            num_output,
            kernel,
            stride,
            pad,
            ..
        } => (num_output, kernel, stride, pad),
        _ => unreachable!("not a convolution"),
    };
    let s = &op.in_shapes[0];
    ConvShape {
        batch: s[0],
        in_c: s[1],
        in_h: s[2],
        in_w: s[3],
        out_c: num_output,
        k: kernel,
        stride,
        pad,
    }
}

/// Per-layer times for a network on a device. The first layer (Input)
/// carries the input-pipeline cost.
pub fn network_times(net: &Net, device: &Device) -> Vec<LayerTime> {
    net.ops()
        .iter()
        .map(|op| {
            let out_elems: usize = op
                .out_shapes
                .first()
                .map(|s| s.iter().product())
                .unwrap_or(0);
            let in_elems: usize = op
                .in_shapes
                .first()
                .map(|s| s.iter().product())
                .unwrap_or(0);
            let (forward, backward) = match &op.kind {
                LayerKind::Input { shape, .. } => (device.input_pipeline(shape[0]), 0.0),
                LayerKind::Convolution { .. } => {
                    let shape = conv_shape_of(op);
                    // The first convolution never needs an input gradient.
                    let needs_dx = shape.in_c > 3;
                    (
                        device.conv_forward(&shape),
                        device.conv_backward(&shape, needs_dx),
                    )
                }
                LayerKind::InnerProduct { num_output, .. } => {
                    let batch = op.in_shapes[0][0];
                    let features: usize = op.in_shapes[0][1..].iter().product();
                    let fwd = device.gemm(batch, *num_output, features);
                    // dW + dX: two GEMMs of the same volume.
                    let bwd = device.gemm(*num_output, features, batch)
                        + device.gemm(batch, features, *num_output);
                    (fwd, bwd)
                }
                LayerKind::Pooling { .. } => (
                    device.streaming(in_elems + out_elems, 1),
                    device.streaming(in_elems + out_elems, 1),
                ),
                LayerKind::ReLU | LayerKind::Dropout { .. } | LayerKind::EltwiseSum => {
                    (device.streaming(in_elems, 2), device.streaming(in_elems, 3))
                }
                LayerKind::BatchNorm { .. } => {
                    (device.streaming(in_elems, 3), device.streaming(in_elems, 5))
                }
                // Inference-only fusion (swserve): baseline devices run
                // the conv plus one fused streaming epilogue; never
                // trained, so no backward cost.
                LayerKind::FusedConvBnRelu { .. } => {
                    let shape = conv_shape_of(op);
                    (
                        device.conv_forward(&shape) + device.streaming(out_elems, 3),
                        0.0,
                    )
                }
                LayerKind::Lrn { local_size, .. } => (
                    device.streaming(in_elems, 2 + local_size / 2),
                    device.streaming(in_elems, 3 + local_size),
                ),
                LayerKind::SoftmaxWithLoss | LayerKind::Accuracy { .. } => {
                    (device.streaming(in_elems, 2), device.streaming(in_elems, 2))
                }
                LayerKind::Concat => (
                    device.streaming(out_elems, 2),
                    device.streaming(out_elems, 2),
                ),
                // Baseline frameworks keep a single layout.
                LayerKind::TensorTransform { .. } => (0.0, 0.0),
            };
            LayerTime {
                name: op.name.clone(),
                forward,
                backward,
            }
        })
        .collect()
}

/// Whole-iteration time on a device (forward + backward + input pipeline).
pub fn iteration_time(net: &Net, device: &Device) -> f64 {
    network_times(net, device)
        .iter()
        .map(|l| l.forward + l.backward)
        .sum()
}

/// Table III's img/sec metric.
pub fn throughput_img_per_sec(net: &Net, device: &Device, batch: usize) -> f64 {
    batch as f64 / iteration_time(net, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{cpu_e5_2680v3, gpu_k40m};
    use swcaffe_core::models;

    fn net(def: &swcaffe_core::NetDef) -> Net {
        Net::from_def(def, false).unwrap()
    }

    #[test]
    fn table_iii_gpu_throughputs_roughly_match() {
        // Paper: AlexNet 79.25, VGG-16 13.79, VGG-19 11.2, ResNet-50
        // 25.45, GoogLeNet 66.09 img/s on the K40m. Accept a 2x band:
        // these are calibrated models of someone else's software stack.
        let gpu = gpu_k40m();
        let cases: Vec<(&str, swcaffe_core::NetDef, usize, f64)> = vec![
            ("alexnet", models::alexnet_bn(256), 256, 79.25),
            ("vgg16", models::vgg16(64), 64, 13.79),
            ("vgg19", models::vgg19(64), 64, 11.2),
            ("resnet50", models::resnet50(32), 32, 25.45),
            ("googlenet", models::googlenet(128), 128, 66.09),
        ];
        for (name, def, batch, want) in cases {
            let got = throughput_img_per_sec(&net(&def), &gpu, batch);
            assert!(
                got > want / 2.0 && got < want * 2.0,
                "{name}: modelled {got:.1} img/s vs paper {want}"
            );
        }
    }

    #[test]
    fn table_iii_cpu_throughputs_roughly_match() {
        // Paper: AlexNet 12.01, VGG-16 1.06, VGG-19 1.07, ResNet-50 1.99,
        // GoogLeNet 4.92 img/s on the 12-core CPU.
        let cpu = cpu_e5_2680v3();
        let cases: Vec<(&str, swcaffe_core::NetDef, usize, f64)> = vec![
            ("alexnet", models::alexnet_bn(256), 256, 12.01),
            ("vgg16", models::vgg16(64), 64, 1.06),
            ("vgg19", models::vgg19(64), 64, 1.07),
            ("resnet50", models::resnet50(32), 32, 1.99),
            ("googlenet", models::googlenet(128), 128, 4.92),
        ];
        for (name, def, batch, want) in cases {
            let got = throughput_img_per_sec(&net(&def), &cpu, batch);
            assert!(
                got > want / 2.5 && got < want * 2.5,
                "{name}: modelled {got:.2} img/s vs paper {want}"
            );
        }
    }

    #[test]
    fn gpu_alexnet_is_pipeline_bound() {
        // Paper Sec. VI-B: data reading accounts for over 40% of AlexNet
        // training time on the GPU.
        let gpu = gpu_k40m();
        let n = net(&models::alexnet_bn(256));
        let times = network_times(&n, &gpu);
        let input: f64 = times
            .iter()
            .filter(|l| l.name == "data")
            .map(|l| l.forward)
            .sum();
        let total = iteration_time(&n, &gpu);
        assert!(input / total > 0.3, "input share {:.2}", input / total);
    }
}
