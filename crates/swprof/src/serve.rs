//! Serving-resilience counters: what the fault-tolerant serving path in
//! `swserve` did to keep requests inside their SLO while replicas
//! crashed, straggled or corrupted responses.
//!
//! The struct lives here — not in `swserve` — for the same reason
//! [`StatsSnap`](crate::StatsSnap) does: it is a *profiling surface*.
//! The serving layer produces it, the bench scenarios flatten it into
//! gated [`Report`] metrics with [`export`](ServeHealthCounters::export),
//! and `bench-check` diffs every field against the blessed baseline, so
//! a regression in the detection, retry, hedge or shed paths shows up as
//! counter drift even when latencies still look healthy.

use crate::Report;

/// Counters accumulated by one fault-tolerant serving simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeHealthCounters {
    /// Healthy/Degraded -> Dead transitions (deadline timeout fired).
    pub dead_transitions: u64,
    /// Healthy -> Degraded transitions (corrupt or late response).
    pub degraded_transitions: u64,
    /// Degraded -> Healthy recoveries (probation served).
    pub recovered_transitions: u64,
    /// Re-warm cycles completed (frozen snapshot reloaded, CG rejoined).
    pub rewarms: u64,
    /// Requests re-enqueued after a failed batch (lost or corrupt).
    pub retries: u64,
    /// Batches lost to a dead replica whose requests were re-dispatched
    /// to a different, live replica.
    pub failovers: u64,
    /// Hedge copies issued (second replica raced against a suspect one).
    pub hedges: u64,
    /// Hedge copies that beat (or outlived) the primary.
    pub hedge_wins: u64,
    /// Requests dropped because their deadline expired before a live
    /// replica could serve them (includes exhausted retry budgets).
    pub deadline_shed: u64,
    /// Requests dropped by the brown-out policy's lowest-tier shed.
    pub brownout_shed: u64,
    /// Virtual seconds spent between a replica's crash and its
    /// detection (deadline-timeout latency, summed over detections).
    pub detect_latency_s: f64,
    /// Virtual seconds spent re-warming replicas (snapshot read-back).
    pub rewarm_s: f64,
    /// Virtual seconds charged as backoff before failed-batch retries.
    pub backoff_s: f64,
}

impl ServeHealthCounters {
    /// Flatten every counter into `report` under `prefix` — counts as
    /// exact-match metrics, durations as timing-class reals.
    pub fn export(&self, report: &mut Report, prefix: &str) {
        report.count(&format!("{prefix}.dead_transitions"), self.dead_transitions);
        report.count(
            &format!("{prefix}.degraded_transitions"),
            self.degraded_transitions,
        );
        report.count(
            &format!("{prefix}.recovered_transitions"),
            self.recovered_transitions,
        );
        report.count(&format!("{prefix}.rewarms"), self.rewarms);
        report.count(&format!("{prefix}.retries"), self.retries);
        report.count(&format!("{prefix}.failovers"), self.failovers);
        report.count(&format!("{prefix}.hedges"), self.hedges);
        report.count(&format!("{prefix}.hedge_wins"), self.hedge_wins);
        report.count(&format!("{prefix}.deadline_shed"), self.deadline_shed);
        report.count(&format!("{prefix}.brownout_shed"), self.brownout_shed);
        report.real(&format!("{prefix}.detect_latency_s"), self.detect_latency_s);
        report.real(&format!("{prefix}.rewarm_s"), self.rewarm_s);
        report.real(&format!("{prefix}.backoff_s"), self.backoff_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_flattens_every_field() {
        let counters = ServeHealthCounters {
            dead_transitions: 1,
            degraded_transitions: 2,
            recovered_transitions: 3,
            rewarms: 4,
            retries: 5,
            failovers: 6,
            hedges: 7,
            hedge_wins: 8,
            deadline_shed: 9,
            brownout_shed: 10,
            detect_latency_s: 0.25,
            rewarm_s: 1.5,
            backoff_s: 0.001,
        };
        let mut report = Report::new("t");
        counters.export(&mut report, "health");
        for (name, want) in [
            ("health.dead_transitions", 1.0),
            ("health.degraded_transitions", 2.0),
            ("health.recovered_transitions", 3.0),
            ("health.rewarms", 4.0),
            ("health.retries", 5.0),
            ("health.failovers", 6.0),
            ("health.hedges", 7.0),
            ("health.hedge_wins", 8.0),
            ("health.deadline_shed", 9.0),
            ("health.brownout_shed", 10.0),
            ("health.detect_latency_s", 0.25),
            ("health.rewarm_s", 1.5),
            ("health.backoff_s", 0.001),
        ] {
            let m = report
                .metric(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(m.value.as_f64(), want, "{name}");
        }
        assert_eq!(report.metrics.len(), 13);
    }
}
