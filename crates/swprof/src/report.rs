//! The serialisable report structure.

use sw26010::{SimTime, Stats};
use swjson::{obj, Json};

/// Bumped whenever the JSON layout changes incompatibly; `bench-check`
/// refuses to compare across versions.
pub const SCHEMA_VERSION: i64 = 1;

/// One named duration, possibly refined into sub-phases (e.g. `compute`
/// under one iteration, `forward`/`backward` under `compute`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseTiming {
    pub name: String,
    pub seconds: f64,
    pub children: Vec<PhaseTiming>,
}

impl PhaseTiming {
    pub fn new(name: &str, seconds: f64) -> Self {
        PhaseTiming {
            name: name.to_string(),
            seconds,
            children: Vec::new(),
        }
    }

    pub fn leaf(name: &str, t: SimTime) -> Self {
        Self::new(name, t.seconds())
    }

    pub fn child(mut self, child: PhaseTiming) -> Self {
        self.children.push(child);
        self
    }

    fn to_json(&self) -> Json {
        let mut b = obj()
            .field("name", self.name.as_str())
            .field("seconds", self.seconds);
        if !self.children.is_empty() {
            b = b.field(
                "children",
                Json::Arr(self.children.iter().map(|c| c.to_json()).collect()),
            );
        }
        b.build()
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PhaseTiming {
            name: str_field(v, "name")?,
            seconds: f64_field(v, "seconds")?,
            children: match v.get("children") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(Self::from_json)
                    .collect::<Result<_, _>>()?,
                _ => Vec::new(),
            },
        })
    }
}

/// Snapshot of the hardware counters of one scope (kernel, launch, core
/// group) — the serialisable mirror of [`sw26010::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnap {
    pub dma_get_bytes: u64,
    pub dma_put_bytes: u64,
    pub dma_requests: u64,
    pub rlc_bytes: u64,
    pub rlc_messages: u64,
    pub flops: u64,
    pub mpe_flops: u64,
    pub launches: u64,
    pub busy_seconds: f64,
    /// Peak LDM working set in bytes, per CPE, when the scope ran under
    /// the `swcheck` sanitizer; 0 (and omitted from JSON) otherwise, so
    /// reports from unchecked runs are byte-identical to schema-1 files.
    pub ldm_high_water: u64,
}

impl From<&Stats> for StatsSnap {
    fn from(s: &Stats) -> Self {
        StatsSnap {
            dma_get_bytes: s.dma_get_bytes,
            dma_put_bytes: s.dma_put_bytes,
            dma_requests: s.dma_requests,
            rlc_bytes: s.rlc_bytes,
            rlc_messages: s.rlc_messages,
            flops: s.flops,
            mpe_flops: s.mpe_flops,
            launches: s.launches,
            busy_seconds: s.busy.seconds(),
            ldm_high_water: 0,
        }
    }
}

impl StatsSnap {
    pub fn dma_bytes(&self) -> u64 {
        self.dma_get_bytes + self.dma_put_bytes
    }

    /// Attach the LDM high-water mark observed by the sanitizer (builder
    /// style, used by checked benchmark/`swcheck` runs).
    pub fn with_ldm_high_water(mut self, bytes: u64) -> Self {
        self.ldm_high_water = bytes;
        self
    }

    /// Flops per DMA byte, `None` without DMA traffic.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        let bytes = self.dma_bytes();
        (bytes > 0).then(|| self.flops as f64 / bytes as f64)
    }

    fn to_json(self) -> Json {
        let mut b = obj()
            .field("dma_get_bytes", self.dma_get_bytes)
            .field("dma_put_bytes", self.dma_put_bytes)
            .field("dma_requests", self.dma_requests)
            .field("rlc_bytes", self.rlc_bytes)
            .field("rlc_messages", self.rlc_messages)
            .field("flops", self.flops)
            .field("mpe_flops", self.mpe_flops)
            .field("launches", self.launches)
            .field("busy_seconds", self.busy_seconds);
        if self.ldm_high_water > 0 {
            b = b.field("ldm_high_water", self.ldm_high_water);
        }
        b.build()
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StatsSnap {
            dma_get_bytes: u64_field(v, "dma_get_bytes")?,
            dma_put_bytes: u64_field(v, "dma_put_bytes")?,
            dma_requests: u64_field(v, "dma_requests")?,
            rlc_bytes: u64_field(v, "rlc_bytes")?,
            rlc_messages: u64_field(v, "rlc_messages")?,
            flops: u64_field(v, "flops")?,
            mpe_flops: u64_field(v, "mpe_flops")?,
            launches: u64_field(v, "launches")?,
            busy_seconds: f64_field(v, "busy_seconds")?,
            // Absent in reports from unchecked runs (and all schema-1
            // files written before the sanitizer existed).
            ldm_high_water: v.get("ldm_high_water").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// Roofline attribution of a kernel/layer on a given machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Memory traffic dominates: `bytes / mem_bw >= flops / peak_flops`.
    Bandwidth,
    /// Arithmetic dominates.
    Compute,
}

impl Bound {
    /// Classify work of `flops` floating-point operations moving `bytes`
    /// of memory traffic on a machine with the given peaks.
    pub fn attribute(flops: f64, bytes: f64, peak_flops: f64, mem_bw: f64) -> Bound {
        if bytes / mem_bw >= flops / peak_flops {
            Bound::Bandwidth
        } else {
            Bound::Compute
        }
    }

    /// Classification straight from a counter snapshot.
    pub fn from_snap(snap: &StatsSnap, peak_flops: f64, mem_bw: f64) -> Bound {
        Bound::attribute(
            snap.flops as f64,
            snap.dma_bytes() as f64,
            peak_flops,
            mem_bw,
        )
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth",
            Bound::Compute => "compute",
        }
    }

    fn parse(s: &str) -> Result<Bound, String> {
        match s {
            "bandwidth" => Ok(Bound::Bandwidth),
            "compute" => Ok(Bound::Compute),
            other => Err(format!("unknown bound '{other}'")),
        }
    }
}

/// One kernel (or layer) execution: attribution tag, counters, roofline
/// classification.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Attribution tag, e.g. `"conv_explicit"` or `"alexnet/conv2.fwd"`.
    pub name: String,
    pub stats: StatsSnap,
    pub bound: Option<Bound>,
}

impl KernelRecord {
    pub fn new(name: &str, stats: StatsSnap) -> Self {
        KernelRecord {
            name: name.to_string(),
            stats,
            bound: None,
        }
    }

    /// Attach a roofline classification for the given machine balance.
    pub fn with_roofline(mut self, peak_flops: f64, mem_bw: f64) -> Self {
        self.bound = Some(Bound::from_snap(&self.stats, peak_flops, mem_bw));
        self
    }

    fn to_json(&self) -> Json {
        let mut b = obj()
            .field("name", self.name.as_str())
            .field("stats", self.stats.to_json());
        if let Some(bound) = self.bound {
            b = b.field("bound", bound.as_str());
        }
        b.build()
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(KernelRecord {
            name: str_field(v, "name")?,
            stats: StatsSnap::from_json(
                v.get("stats")
                    .ok_or_else(|| "kernel record missing 'stats'".to_string())?,
            )?,
            bound: match v.get("bound") {
                Some(j) => Some(Bound::parse(
                    j.as_str()
                        .ok_or_else(|| "'bound' must be a string".to_string())?,
                )?),
                None => None,
            },
        })
    }
}

/// A metric value; the variant *is* the tolerance class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Deterministic hardware/algorithm counter — compared exactly.
    Count(u64),
    /// Modelled timing (or a value derived from one) — compared with a
    /// relative tolerance.
    Real(f64),
}

impl MetricValue {
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Count(c) => *c as f64,
            MetricValue::Real(r) => *r,
        }
    }

    pub fn class(&self) -> &'static str {
        match self {
            MetricValue::Count(_) => "counter",
            MetricValue::Real(_) => "timing",
        }
    }
}

/// One named metric of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub name: String,
    pub value: MetricValue,
}

/// A structured benchmark report: what each `crates/bench` binary emits
/// via `--json` and what `bench-check` compares against baselines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    pub name: String,
    /// Free-form configuration echo (batch sizes, node counts, ...).
    pub config: Vec<(String, String)>,
    pub phases: Vec<PhaseTiming>,
    pub kernels: Vec<KernelRecord>,
    pub metrics: Vec<Metric>,
}

impl Report {
    pub fn new(name: &str) -> Self {
        Report {
            name: name.to_string(),
            ..Default::default()
        }
    }

    pub fn config(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Record an exact counter metric (0% tolerance in `bench-check`).
    pub fn count(&mut self, name: &str, value: u64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Count(value),
        });
        self
    }

    /// Record a timing-class metric (relative tolerance in `bench-check`).
    pub fn real(&mut self, name: &str, value: f64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Real(value),
        });
        self
    }

    pub fn phase(&mut self, phase: PhaseTiming) -> &mut Self {
        self.phases.push(phase);
        self
    }

    pub fn kernel(&mut self, record: KernelRecord) -> &mut Self {
        self.kernels.push(record);
        self
    }

    /// Record a kernel and flatten its key counters + busy time into
    /// gated metrics under `kernel.<name>.*`.
    pub fn kernel_with_metrics(&mut self, record: KernelRecord) -> &mut Self {
        let prefix = format!("kernel.{}", record.name);
        self.count(&format!("{prefix}.dma_bytes"), record.stats.dma_bytes());
        self.count(&format!("{prefix}.dma_requests"), record.stats.dma_requests);
        self.count(&format!("{prefix}.rlc_messages"), record.stats.rlc_messages);
        self.count(&format!("{prefix}.flops"), record.stats.flops);
        self.real(&format!("{prefix}.busy_seconds"), record.stats.busy_seconds);
        self.kernel(record)
    }

    /// Record a phase tree and flatten every node into gated metrics
    /// under `phase.<path>.seconds`.
    pub fn phase_with_metrics(&mut self, phase: PhaseTiming) -> &mut Self {
        fn flatten(report: &mut Report, path: &str, p: &PhaseTiming) {
            report.real(&format!("phase.{path}.seconds"), p.seconds);
            for c in &p.children {
                let child_path = format!("{path}.{}", c.name);
                flatten(report, &child_path, c);
            }
        }
        flatten(self, &phase.name.clone(), &phase);
        self.phase(phase)
    }

    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    pub fn to_json(&self) -> Json {
        obj()
            .field("schema", Json::Int(SCHEMA_VERSION))
            .field("name", self.name.as_str())
            .field(
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            )
            .field(
                "phases",
                Json::Arr(self.phases.iter().map(|p| p.to_json()).collect()),
            )
            .field(
                "kernels",
                Json::Arr(self.kernels.iter().map(|k| k.to_json()).collect()),
            )
            .field(
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            obj()
                                .field("name", m.name.as_str())
                                .field("class", m.value.class())
                                .field(
                                    "value",
                                    match m.value {
                                        MetricValue::Count(c) => Json::from(c),
                                        MetricValue::Real(r) => Json::Num(r),
                                    },
                                )
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    }

    /// Canonical on-disk rendering (pretty, trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    pub fn from_json_str(text: &str) -> Result<Report, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_i64)
            .ok_or_else(|| "report missing 'schema'".to_string())?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "report schema {schema} != supported {SCHEMA_VERSION}; regenerate with --bless"
            ));
        }
        let mut report = Report::new(&str_field(&v, "name")?);
        if let Some(fields) = v.get("config").and_then(Json::as_obj) {
            for (k, val) in fields {
                report.config.push((
                    k.clone(),
                    val.as_str()
                        .ok_or_else(|| "config values must be strings".to_string())?
                        .to_string(),
                ));
            }
        }
        if let Some(items) = v.get("phases").and_then(Json::as_arr) {
            report.phases = items
                .iter()
                .map(PhaseTiming::from_json)
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = v.get("kernels").and_then(Json::as_arr) {
            report.kernels = items
                .iter()
                .map(KernelRecord::from_json)
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = v.get("metrics").and_then(Json::as_arr) {
            for m in items {
                let name = str_field(m, "name")?;
                let class = str_field(m, "class")?;
                let value = match class.as_str() {
                    "counter" => MetricValue::Count(u64_field(m, "value")?),
                    "timing" => MetricValue::Real(f64_field(m, "value")?),
                    other => return Err(format!("unknown metric class '{other}'")),
                };
                report.metrics.push(Metric { name, value });
            }
        }
        Ok(report)
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing counter field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("fig5_algorithm1");
        r.config("network", "alexnet").config("chip_batch", 256);
        r.phase_with_metrics(
            PhaseTiming::new("iteration", 2.75)
                .child(PhaseTiming::new("compute", 2.5))
                .child(PhaseTiming::new("intra", 0.2))
                .child(PhaseTiming::new("update", 0.05)),
        );
        let snap = StatsSnap {
            dma_get_bytes: 1 << 30,
            dma_put_bytes: 1 << 29,
            dma_requests: 4096,
            rlc_bytes: 123_456,
            rlc_messages: 789,
            flops: 3_000_000_000_000,
            mpe_flops: 42,
            launches: 13,
            busy_seconds: 1.875,
            ldm_high_water: 48 * 1024,
        };
        r.kernel_with_metrics(KernelRecord::new("gemm", snap).with_roofline(3.02e12, 28.0e9));
        r.count("allreduce.cross_bytes", 999);
        r.real("throughput_img_per_sec", 94.17);
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = Report::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        // And fully stable: render -> parse -> render is identity.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample_report()
            .to_json_string()
            .replace(&format!("\"schema\": {SCHEMA_VERSION}"), "\"schema\": 999");
        let err = Report::from_json_str(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn phase_metrics_are_flattened_hierarchically() {
        let r = sample_report();
        for name in [
            "phase.iteration.seconds",
            "phase.iteration.compute.seconds",
            "phase.iteration.intra.seconds",
            "phase.iteration.update.seconds",
        ] {
            assert!(r.metric(name).is_some(), "missing {name}");
        }
        assert_eq!(
            r.metric("phase.iteration.compute.seconds").unwrap().value,
            MetricValue::Real(2.5)
        );
    }

    #[test]
    fn kernel_metrics_have_counter_class() {
        let r = sample_report();
        assert!(matches!(
            r.metric("kernel.gemm.flops").unwrap().value,
            MetricValue::Count(3_000_000_000_000)
        ));
        assert!(matches!(
            r.metric("kernel.gemm.busy_seconds").unwrap().value,
            MetricValue::Real(_)
        ));
    }

    #[test]
    fn roofline_attribution() {
        // SW26010 machine balance: 3.02 Tflops / 28 GB/s measured DMA.
        let (peak, bw) = (3.02e12, 28.0e9);
        // 1 flop per byte: clearly bandwidth bound.
        assert_eq!(Bound::attribute(1e9, 1e9, peak, bw), Bound::Bandwidth);
        // 1000 flops per byte: clearly compute bound.
        assert_eq!(Bound::attribute(1e12, 1e9, peak, bw), Bound::Compute);
        // The knee sits at peak/bw ~ 107.9 flops/byte.
        let knee = peak / bw;
        assert_eq!(
            Bound::attribute((knee - 1.0) * 1e6, 1e6, peak, bw),
            Bound::Bandwidth
        );
        assert_eq!(
            Bound::attribute((knee + 1.0) * 1e6, 1e6, peak, bw),
            Bound::Compute
        );
    }

    #[test]
    fn stats_snap_mirrors_stats() {
        let s = sw26010::Stats {
            dma_get_bytes: 10,
            dma_put_bytes: 20,
            dma_requests: 3,
            rlc_bytes: 40,
            rlc_messages: 5,
            flops: 600,
            mpe_flops: 7,
            launches: 8,
            busy: SimTime::from_seconds(0.5),
        };
        let snap = StatsSnap::from(&s);
        assert_eq!(snap.dma_bytes(), 30);
        assert_eq!(snap.flops, 600);
        assert_eq!(snap.busy_seconds, 0.5);
        assert_eq!(snap.arithmetic_intensity(), Some(20.0));
    }

    #[test]
    fn ldm_high_water_is_omitted_when_zero() {
        // Unchecked runs must keep producing byte-identical reports, so a
        // zero high-water mark is not serialized at all...
        let mut r = Report::new("hw");
        r.kernel(KernelRecord::new("k", StatsSnap::default()));
        assert!(!r.to_json_string().contains("ldm_high_water"));
        // ...while a checked run's non-zero value round-trips losslessly.
        let mut r = Report::new("hw");
        r.kernel(KernelRecord::new(
            "k",
            StatsSnap::default().with_ldm_high_water(51_200),
        ));
        let text = r.to_json_string();
        assert!(text.contains("\"ldm_high_water\": 51200"), "{text}");
        let back = Report::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.kernels[0].stats.ldm_high_water, 51_200);
    }
}
