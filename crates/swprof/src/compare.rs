//! Baseline comparison — the logic behind `bench-check`.
//!
//! Tolerance policy (documented in `docs/results/README.md`):
//!
//! * **counter** metrics (DMA bytes, RLC messages, flops, step counts)
//!   are deterministic outputs of the simulator and compare **exactly**;
//! * **timing** metrics come from the calibrated cost models and allow a
//!   small relative drift so legitimate recalibrations within the band
//!   don't break CI (default 2%). Anything larger must be re-blessed
//!   deliberately.

use crate::report::{MetricValue, Report};

/// Default relative tolerance for timing-class metrics.
pub const DEFAULT_TIMING_REL_TOL: f64 = 0.02;

/// Per-class tolerances. Counters are always exact by construction.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed relative error `|fresh - base| / |base|` for timing
    /// metrics; the boundary itself passes.
    pub timing_rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            timing_rel: DEFAULT_TIMING_REL_TOL,
        }
    }
}

/// Why a metric drifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Baseline metric absent from the fresh report.
    MissingInFresh,
    /// Fresh metric absent from the baseline (baseline is stale).
    MissingInBaseline,
    /// Metric class changed between baseline and fresh run.
    ClassChanged,
    /// Value moved beyond the allowed tolerance.
    ValueDrift,
}

/// One detected regression.
#[derive(Debug, Clone)]
pub struct Drift {
    pub metric: String,
    pub kind: DriftKind,
    pub baseline: Option<f64>,
    pub fresh: Option<f64>,
    /// Realised relative error (`f64::INFINITY` when undefined).
    pub rel_err: f64,
    /// Tolerance that applied.
    pub allowed: f64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            DriftKind::MissingInFresh => {
                write!(
                    f,
                    "{}: present in baseline, missing from fresh run",
                    self.metric
                )
            }
            DriftKind::MissingInBaseline => {
                write!(f, "{}: new metric not in baseline (re-bless)", self.metric)
            }
            DriftKind::ClassChanged => {
                write!(
                    f,
                    "{}: metric class changed (counter <-> timing)",
                    self.metric
                )
            }
            DriftKind::ValueDrift => write!(
                f,
                "{}: {} -> {} (rel err {:.4e} > allowed {:.4e})",
                self.metric,
                self.baseline.unwrap_or(f64::NAN),
                self.fresh.unwrap_or(f64::NAN),
                self.rel_err,
                self.allowed,
            ),
        }
    }
}

/// Compare a fresh report against a blessed baseline. Empty result means
/// the gate passes. Every baseline metric must exist in the fresh run
/// within tolerance, and the fresh run must not introduce metrics the
/// baseline lacks (that means the baseline is stale and needs
/// re-blessing).
pub fn compare(baseline: &Report, fresh: &Report, tol: &Tolerance) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for bm in &baseline.metrics {
        let Some(fm) = fresh.metric(&bm.name) else {
            drifts.push(Drift {
                metric: bm.name.clone(),
                kind: DriftKind::MissingInFresh,
                baseline: Some(bm.value.as_f64()),
                fresh: None,
                rel_err: f64::INFINITY,
                allowed: 0.0,
            });
            continue;
        };
        match (&bm.value, &fm.value) {
            (MetricValue::Count(b), MetricValue::Count(f)) => {
                if b != f {
                    let rel = relative_error(*b as f64, *f as f64);
                    drifts.push(Drift {
                        metric: bm.name.clone(),
                        kind: DriftKind::ValueDrift,
                        baseline: Some(*b as f64),
                        fresh: Some(*f as f64),
                        rel_err: rel,
                        allowed: 0.0,
                    });
                }
            }
            (MetricValue::Real(b), MetricValue::Real(f)) => {
                let rel = relative_error(*b, *f);
                if rel > tol.timing_rel {
                    drifts.push(Drift {
                        metric: bm.name.clone(),
                        kind: DriftKind::ValueDrift,
                        baseline: Some(*b),
                        fresh: Some(*f),
                        rel_err: rel,
                        allowed: tol.timing_rel,
                    });
                }
            }
            _ => drifts.push(Drift {
                metric: bm.name.clone(),
                kind: DriftKind::ClassChanged,
                baseline: Some(bm.value.as_f64()),
                fresh: Some(fm.value.as_f64()),
                rel_err: f64::INFINITY,
                allowed: 0.0,
            }),
        }
    }
    for fm in &fresh.metrics {
        if baseline.metric(&fm.name).is_none() {
            drifts.push(Drift {
                metric: fm.name.clone(),
                kind: DriftKind::MissingInBaseline,
                baseline: None,
                fresh: Some(fm.value.as_f64()),
                rel_err: f64::INFINITY,
                allowed: 0.0,
            });
        }
    }
    drifts
}

/// `|fresh - base| / |base|`; exact match is 0 even at base == 0, any
/// deviation from a zero baseline is infinite.
fn relative_error(base: f64, fresh: f64) -> f64 {
    if base == fresh {
        0.0
    } else if base == 0.0 {
        f64::INFINITY
    } else {
        (fresh - base).abs() / base.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;

    fn base() -> Report {
        let mut r = Report::new("t");
        r.count("dma_bytes", 1_000_000);
        r.real("iter_seconds", 2.0);
        r
    }

    #[test]
    fn identical_reports_pass() {
        let b = base();
        assert!(compare(&b, &b.clone(), &Tolerance::default()).is_empty());
    }

    #[test]
    fn timing_passes_exactly_at_the_boundary() {
        // 100 -> 102 is exactly +2%: (102-100)/100 computes to the same
        // f64 as the literal 0.02, so this probes the `<=` boundary.
        let mut b = Report::new("t");
        b.real("iter_seconds", 100.0);
        let mut f = Report::new("t");
        f.real("iter_seconds", 102.0);
        let drifts = compare(&b, &f, &Tolerance { timing_rel: 0.02 });
        assert!(drifts.is_empty(), "{drifts:?}");
    }

    #[test]
    fn timing_fails_just_past_the_boundary() {
        let mut b = Report::new("t");
        b.real("iter_seconds", 100.0);
        let mut f = Report::new("t");
        f.real("iter_seconds", 102.01);
        let drifts = compare(&b, &f, &Tolerance { timing_rel: 0.02 });
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].kind, DriftKind::ValueDrift);
        assert_eq!(drifts[0].metric, "iter_seconds");
    }

    #[test]
    fn counters_have_zero_tolerance() {
        let b = base();
        let mut f = Report::new("t");
        // One byte off on a megabyte: far below any relative tolerance,
        // still a failure — counters are exact.
        f.count("dma_bytes", 1_000_001);
        f.real("iter_seconds", 2.0);
        let drifts = compare(&b, &f, &Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "dma_bytes");
        assert_eq!(drifts[0].allowed, 0.0);
    }

    #[test]
    fn missing_metric_fails() {
        let b = base();
        let mut f = Report::new("t");
        f.count("dma_bytes", 1_000_000);
        let drifts = compare(&b, &f, &Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].kind, DriftKind::MissingInFresh);
    }

    #[test]
    fn new_metric_flags_stale_baseline() {
        let b = base();
        let mut f = base();
        f.real("extra", 1.0);
        let drifts = compare(&b, &f, &Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].kind, DriftKind::MissingInBaseline);
    }

    #[test]
    fn class_change_fails() {
        let b = base();
        let mut f = Report::new("t");
        f.real("dma_bytes", 1_000_000.0);
        f.real("iter_seconds", 2.0);
        let drifts = compare(&b, &f, &Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].kind, DriftKind::ClassChanged);
    }

    #[test]
    fn zero_baseline_allows_only_exact_zero() {
        let mut b = Report::new("t");
        b.real("comm_seconds", 0.0);
        let mut pass = Report::new("t");
        pass.real("comm_seconds", 0.0);
        assert!(compare(&b, &pass, &Tolerance::default()).is_empty());
        let mut fail = Report::new("t");
        fail.real("comm_seconds", 1e-12);
        assert_eq!(compare(&b, &fail, &Tolerance::default()).len(), 1);
    }
}
