//! # swprof — structured benchmark reports for the swCaffe stack
//!
//! Every table/figure regenerator in `crates/bench` used to print
//! free-form text, which made the paper's quantitative claims (Figs.
//! 2/5-11, Tables 1-3) impossible to regression-test. This crate defines
//! the machine-readable [`Report`] those binaries now emit alongside
//! their text output:
//!
//! * hierarchical **phase timings** (the compute/intra/allreduce/update
//!   breakdown of [`ChipIteration`](../swtrain) iterations),
//! * per-kernel **hardware-counter snapshots** ([`StatsSnap`], mirroring
//!   [`sw26010::Stats`]: DMA bytes/requests, register-communication
//!   traffic, flops, busy time),
//! * derived **roofline attribution** ([`Bound`]): whether a kernel or
//!   layer is bandwidth- or compute-bound on a given machine balance,
//! * flat **metrics** that `bench-check` diffs against checked-in
//!   baselines with per-class tolerances ([`compare`]).
//!
//! Counter metrics are exact (`u64`, 0% tolerance — the simulator is
//! deterministic); timing metrics carry a relative tolerance so small,
//! intentional cost-model recalibrations can be absorbed by re-blessing.

pub mod compare;
pub mod report;
pub mod serve;

pub use compare::{compare, Drift, DriftKind, Tolerance, DEFAULT_TIMING_REL_TOL};
pub use report::{
    Bound, KernelRecord, Metric, MetricValue, PhaseTiming, Report, StatsSnap, SCHEMA_VERSION,
};
pub use serve::ServeHealthCounters;
