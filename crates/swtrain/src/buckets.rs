//! Backward-overlapped bucketed all-reduce (the DDP/Horovod scheme).
//!
//! swCaffe's Sec. V-A packs every gradient into one flat buffer and
//! all-reduces once *after* the backward pass, so the entire
//! communication phase sits on the critical path — the comm fraction
//! that dominates Fig. 11 at 1024 nodes. But gradients become ready
//! layer by layer during backprop (output layers first — for AlexNet
//! that is the huge fully-connected layers), so their reduction can
//! start while earlier layers are still computing.
//!
//! This module groups gradient-ready events
//! ([`swcaffe_core::GradReady`], emitted by `Net::backward_with_events`)
//! into size-targeted buckets and schedules one *segmented* all-reduce
//! per bucket on a single communication channel:
//!
//! * bucket `k` starts at `max(ready_k, finish_{k-1})`,
//! * the iteration's communication finishes with the last bucket, and
//! * the overlapped iteration time is
//!   `max(backward finish, last bucket finish)` plus the unchanged
//!   serial tail (intra-chip gather, solver update) — instead of
//!   `backward + comm`.
//!
//! Each segment runs the **monolithic schedule restricted to the
//! segment** ([`swnet::allreduce_segment`]), so the union of bucket
//! reductions performs exactly the monolithic packed reduce's
//! element-wise operations: functional mode is bit-identical to the
//! paper's scheme for every [`Algorithm`]. The serialized packed reduce
//! remains the default — it is what the paper evaluates — and bucketing
//! pays a real price per bucket (start-up latencies and one
//! bulk-synchronous straggler penalty per collective step), which is why
//! bucket sizing is a tunable and the `ablation_overlap` scenario sweeps
//! it.

use sw26010::SimTime;
use swcaffe_core::GradReady;
use swnet::{
    allreduce, allreduce_segment_ft, Algorithm, CollectiveFault, FaultSession, NetParams, RankMap,
    Topology,
};

/// Default bucket size target. 25 MB mirrors the PyTorch-DDP default
/// (`bucket_cap_mb`); the sweep in `ablation_overlap` shows larger
/// buckets amortise the per-bucket straggler cost better at 1024 nodes.
pub const DEFAULT_BUCKET_BYTES: usize = 25 << 20;

/// One gradient bucket: a contiguous span of the packed gradient vector
/// whose member layers' gradients are all ready at `ready`.
#[derive(Debug, Clone)]
pub struct GradBucket {
    /// Span of the packed vector (the `pack_gradients` layout).
    pub range: std::ops::Range<usize>,
    /// Member layer names, in ready (backward execution) order.
    pub layers: Vec<String>,
    /// Simulated time (relative to iteration start) at which the whole
    /// bucket is ready — the slowest member's gradient-ready time.
    pub ready: SimTime,
}

impl GradBucket {
    pub fn elems(&self) -> usize {
        self.range.len()
    }

    pub fn bytes(&self) -> usize {
        self.elems() * 4
    }
}

/// Merge per-replica event streams (the four core groups, or several
/// chips) into one: identical layers and spans — every replica runs the
/// same network — with the *slowest* replica's ready time, since the
/// bucket cannot leave the chip before every core group's contribution
/// is in.
pub fn merge_events(per_replica: &[Vec<GradReady>]) -> Vec<GradReady> {
    let mut merged: Vec<GradReady> = per_replica.first().map(|e| e.to_vec()).unwrap_or_default();
    for events in per_replica.iter().skip(1) {
        assert_eq!(
            events.len(),
            merged.len(),
            "replicas emitted different event streams"
        );
        for (m, e) in merged.iter_mut().zip(events) {
            assert_eq!(m.layer, e.layer, "replica event order mismatch");
            assert_eq!(m.span, e.span, "replica span mismatch for {}", m.layer);
            m.ready = m.ready.max(e.ready);
        }
    }
    merged
}

/// Greedily group gradient-ready events into buckets of at least
/// `bucket_bytes` (the last bucket may be smaller). Events must arrive
/// in backward emission order — descending packed spans, each adjacent
/// to the previous — which is what `backward_with_events` produces; the
/// resulting buckets partition `0..param_len` back to front.
pub fn build_buckets(events: &[GradReady], bucket_bytes: usize) -> Vec<GradBucket> {
    assert!(bucket_bytes > 0, "bucket size must be positive");
    let mut buckets = Vec::new();
    let mut current: Option<GradBucket> = None;
    for e in events {
        match current.as_mut() {
            None => {
                current = Some(GradBucket {
                    range: e.span.clone(),
                    layers: vec![e.layer.clone()],
                    ready: e.ready,
                });
            }
            Some(b) => {
                assert_eq!(
                    e.span.end, b.range.start,
                    "event spans must be contiguous in backward order (layer {})",
                    e.layer
                );
                b.range.start = e.span.start;
                b.layers.push(e.layer.clone());
                b.ready = b.ready.max(e.ready);
            }
        }
        if current.as_ref().is_some_and(|b| b.bytes() >= bucket_bytes) {
            buckets.push(current.take().unwrap());
        }
    }
    buckets.extend(current);
    buckets
}

/// Outcome of scheduling one bucketed all-reduce sequence.
#[derive(Debug, Clone, Copy)]
pub struct OverlapOutcome {
    /// When the last bucket's reduction finishes, relative to iteration
    /// start (`= max(ready, previous finish) + reduce time`, per bucket).
    pub comm_finish: SimTime,
    /// Total time the communication channel was busy (sum of per-bucket
    /// reduce times — what a serialized bucketed reduce would cost).
    pub bucket_comm_total: SimTime,
    pub buckets: usize,
    pub total_bytes: u64,
    pub cross_bytes: u64,
}

/// Run one segmented all-reduce per bucket on a single communication
/// channel, charging each against the backward timeline. In functional
/// mode (`data` present) the buckets' unions reproduce the monolithic
/// packed reduce bit for bit.
pub fn overlapped_allreduce(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    total_elems: usize,
    buckets: &[GradBucket],
    data: Option<&mut [Vec<f32>]>,
) -> OverlapOutcome {
    overlapped_allreduce_ft(topo, params, map, algo, total_elems, buckets, data, None)
        .expect("infallible without fault injection")
}

/// Fault-aware [`overlapped_allreduce`]: each bucket's segmented reduce
/// consults the fault session (see [`swnet::allreduce_segment_ft`]), so
/// detection timeouts, degraded links, and retransmissions land on the
/// overlapped timeline and a dead rank or exhausted retry budget aborts
/// the whole bucketed sequence with a [`CollectiveFault`].
#[allow(clippy::too_many_arguments)]
pub fn overlapped_allreduce_ft(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    algo: Algorithm,
    total_elems: usize,
    buckets: &[GradBucket],
    mut data: Option<&mut [Vec<f32>]>,
    mut faults: Option<&mut FaultSession>,
) -> Result<OverlapOutcome, CollectiveFault> {
    let mut clock = SimTime::ZERO;
    let mut busy = SimTime::ZERO;
    let mut total_bytes = 0u64;
    let mut cross_bytes = 0u64;
    for b in buckets {
        let r = allreduce_segment_ft(
            topo,
            params,
            map,
            algo,
            total_elems,
            b.range.clone(),
            data.as_deref_mut(),
            faults.as_deref_mut(),
        )?;
        let start = clock.max(b.ready);
        clock = start + r.elapsed;
        busy += r.elapsed;
        total_bytes += r.total_bytes;
        cross_bytes += r.cross_bytes;
    }
    Ok(OverlapOutcome {
        comm_finish: clock,
        bucket_comm_total: busy,
        buckets: buckets.len(),
        total_bytes,
        cross_bytes,
    })
}

/// One point of the serialized-vs-overlapped comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverlapPoint {
    pub nodes: usize,
    /// Paper-faithful iteration: node time + monolithic packed reduce.
    pub serialized_iter: SimTime,
    /// Overlapped iteration: node time + comm exposed past backward.
    pub overlapped_iter: SimTime,
    /// Monolithic packed all-reduce time.
    pub serial_comm: SimTime,
    /// Comm time not hidden behind backward compute.
    pub exposed_comm: SimTime,
    /// Channel-busy time of the bucketed reduce (its serialized cost).
    pub bucket_comm_total: SimTime,
    pub buckets: usize,
}

/// Analytic overlap model at scale, the `ablation_overlap` engine: as in
/// [`crate::scaling::ScalingModel`], one representative node's timeline
/// (all nodes are statistically identical under synchronous data
/// parallelism) plus the collective cost model determine the curve.
#[derive(Debug, Clone)]
pub struct OverlapModel {
    /// Full on-node serial time per iteration (compute + intra-chip
    /// gather/broadcast + solver update).
    pub node_time: SimTime,
    /// Forward+backward portion — the window communication can hide in.
    pub compute: SimTime,
    /// Gradient-ready events, relative to iteration start (merged over
    /// core groups).
    pub events: Vec<GradReady>,
    pub total_elems: usize,
    pub net: NetParams,
    pub rank_map: RankMap,
    pub algorithm: Algorithm,
    pub supernode_size: usize,
    pub bucket_bytes: usize,
}

impl OverlapModel {
    /// Evaluate one scale: both the serialized-packed and the
    /// bucketed-overlapped iteration at `nodes`.
    pub fn point(&self, nodes: usize) -> OverlapPoint {
        let topo = Topology::with_supernode(nodes, self.supernode_size);
        if nodes <= 1 {
            return OverlapPoint {
                nodes,
                serialized_iter: self.node_time,
                overlapped_iter: self.node_time,
                serial_comm: SimTime::ZERO,
                exposed_comm: SimTime::ZERO,
                bucket_comm_total: SimTime::ZERO,
                buckets: 0,
            };
        }
        let serial_comm = allreduce(
            &topo,
            &self.net,
            self.rank_map,
            self.algorithm,
            self.total_elems,
            None,
        )
        .elapsed;
        let buckets = build_buckets(&self.events, self.bucket_bytes);
        let o = overlapped_allreduce(
            &topo,
            &self.net,
            self.rank_map,
            self.algorithm,
            self.total_elems,
            &buckets,
            None,
        );
        let exposed =
            SimTime::from_seconds((o.comm_finish.seconds() - self.compute.seconds()).max(0.0));
        OverlapPoint {
            nodes,
            serialized_iter: self.node_time + serial_comm,
            overlapped_iter: self.node_time + exposed,
            serial_comm,
            exposed_comm: exposed,
            bucket_comm_total: o.bucket_comm_total,
            buckets: o.buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::{CoreGroup, ExecMode};
    use swcaffe_core::{models, Net};
    use swnet::ReduceEngine;

    fn ready(layer: &str, span: std::ops::Range<usize>, t: f64) -> GradReady {
        GradReady {
            layer: layer.to_string(),
            span,
            ready: SimTime::from_seconds(t),
        }
    }

    #[test]
    fn buckets_partition_backward_order() {
        // 100 elems over four layers, backward order: d(60..100),
        // c(40..60), b(8..40), a(0..8). Bucket target 128 B = 32 elems.
        let events = vec![
            ready("d", 60..100, 0.1),
            ready("c", 40..60, 0.2),
            ready("b", 8..40, 0.3),
            ready("a", 0..8, 0.4),
        ];
        let buckets = build_buckets(&events, 128);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].range, 60..100);
        assert_eq!(buckets[0].layers, vec!["d"]);
        assert_eq!(buckets[1].range, 8..60);
        assert_eq!(buckets[1].layers, vec!["c", "b"]);
        assert!((buckets[1].ready.seconds() - 0.3).abs() < 1e-12);
        // Tail bucket smaller than the target.
        assert_eq!(buckets[2].range, 0..8);
        // Union partitions the packed vector.
        assert_eq!(buckets.last().unwrap().range.start, 0);
        assert_eq!(buckets[0].range.end, 100);
    }

    #[test]
    fn one_giant_bucket_degenerates_to_packed() {
        let events = vec![ready("b", 50..100, 0.1), ready("a", 0..50, 0.2)];
        let buckets = build_buckets(&events, usize::MAX);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].range, 0..100);
        assert!((buckets[0].ready.seconds() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_slowest_replica() {
        let a = vec![ready("x", 0..4, 0.5)];
        let b = vec![ready("x", 0..4, 0.9)];
        let m = merge_events(&[a, b]);
        assert_eq!(m.len(), 1);
        assert!((m[0].ready.seconds() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bucketed_matches_monolithic_for_every_algorithm() {
        // The functional acceptance criterion: the bucketed-overlapped
        // reduce must produce bit-identical sums to the monolithic
        // packed reduce for every algorithm, driven by real backward
        // events from a real net.
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        let mut cg = CoreGroup::new(ExecMode::Functional);
        let img = 3 * 16 * 16;
        let data: Vec<f32> = (0..2 * img)
            .map(|i| ((i * 29 % 13) as f32 - 6.0) / 7.0)
            .collect();
        net.set_input("data", &data);
        net.set_input("label", &[0.0, 2.0]);
        net.zero_param_diffs();
        net.forward(&mut cg);
        let events = net.backward_with_events(&mut cg);
        let elems = net.param_len();

        let p = 8;
        let topo = Topology::with_supernode(p, 4);
        let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
        let make = |seed: usize| -> Vec<Vec<f32>> {
            (0..p)
                .map(|r| {
                    (0..elems)
                        .map(|i| 1.0 / (1 + (r * 131 + i * 17 + seed) % 97) as f32 - 0.5)
                        .collect()
                })
                .collect()
        };
        for algo in [
            Algorithm::Ring,
            Algorithm::Binomial,
            Algorithm::RecursiveHalvingDoubling,
        ] {
            let mut mono = make(3);
            let mut seg = mono.clone();
            allreduce(
                &topo,
                &params,
                RankMap::RoundRobin,
                algo,
                elems,
                Some(&mut mono),
            );
            let buckets = build_buckets(&events, 4096);
            assert!(buckets.len() > 1, "test wants multiple buckets");
            overlapped_allreduce(
                &topo,
                &params,
                RankMap::RoundRobin,
                algo,
                elems,
                &buckets,
                Some(&mut seg),
            );
            for (rank, (a, b)) in mono.iter().zip(&seg).enumerate() {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{algo:?} rank {rank} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduler_respects_readiness_and_channel_serialization() {
        let events = vec![ready("b", 500..1000, 0.0), ready("a", 0..500, 10.0)];
        let topo = Topology::with_supernode(4, 2);
        let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
        let buckets = build_buckets(&events, 4 * 500);
        assert_eq!(buckets.len(), 2);
        let o = overlapped_allreduce(
            &topo,
            &params,
            RankMap::RoundRobin,
            Algorithm::RecursiveHalvingDoubling,
            1000,
            &buckets,
            None,
        );
        // The second bucket is gated on its ready time (10 s), far past
        // the first bucket's finish, so the channel idles in between:
        // finish > 10 s but busy time stays well below it.
        assert!(o.comm_finish.seconds() > 10.0);
        assert!(o.bucket_comm_total.seconds() < 1.0);
        assert_eq!(o.buckets, 2);
    }

    #[test]
    fn overlap_hides_comm_behind_compute() {
        // Gradients ready early + long compute tail: the overlapped
        // iteration approaches pure node time while the serialized one
        // pays compute + comm in full.
        let elems = 4_000_000;
        let events = vec![
            ready("fc", elems / 2..elems, 0.05),
            ready("conv", 0..elems / 2, 0.10),
        ];
        let m = OverlapModel {
            node_time: SimTime::from_seconds(2.0),
            compute: SimTime::from_seconds(1.8),
            events,
            total_elems: elems,
            net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            supernode_size: swnet::SUPERNODE_SIZE,
            bucket_bytes: DEFAULT_BUCKET_BYTES,
        };
        let p = m.point(256);
        assert!(p.serial_comm.seconds() > 0.0);
        assert!(
            p.overlapped_iter.seconds() < p.serialized_iter.seconds(),
            "overlap must win: {} vs {}",
            p.overlapped_iter.seconds(),
            p.serialized_iter.seconds()
        );
        // Single node: both modes degenerate to node time.
        let p1 = m.point(1);
        assert_eq!(p1.serialized_iter.seconds(), p1.overlapped_iter.seconds());
        assert_eq!(p1.buckets, 0);
    }
}
