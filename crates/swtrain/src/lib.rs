//! # swtrain — scaling swCaffe across the (simulated) TaihuLight
//!
//! Section V of the paper: Algorithm 1's four-core-group synchronous SGD
//! with the handshake barrier (Fig. 5), gradient packing, the
//! topology-aware all-reduce across nodes, and the scaling analytics
//! behind Figs. 10 and 11.
//!
//! Functional mode runs every core group (and every node, at small
//! scales) with real threads and real gradients — tests prove the
//! distributed update is bit-for-bit the large-batch centralised update.
//! Timing mode drives the same code paths against the cost models for the
//! 1024-node sweeps.

pub mod cluster;
pub mod packing;
pub mod profile;
pub mod scaling;
pub mod ssgd;
pub mod sync;
pub mod trainer;

pub use cluster::{ClusterConfig, ClusterIteration, ClusterTrainer};
pub use packing::{pack_gradients, pack_params, unpack_gradients, unpack_params};
pub use scaling::{ScalingModel, ScalingPoint};
pub use ssgd::{evaluate, CgBatch, ChipIteration, ChipTrainer};
pub use sync::HandshakeBarrier;
pub use trainer::{TrainConfig, TrainRecord, Trainer};
