//! # swtrain — scaling swCaffe across the (simulated) TaihuLight
//!
//! Section V of the paper: Algorithm 1's four-core-group synchronous SGD
//! with the handshake barrier (Fig. 5), gradient packing, the
//! topology-aware all-reduce across nodes, and the scaling analytics
//! behind Figs. 10 and 11.
//!
//! Functional mode runs every core group (and every node, at small
//! scales) with real threads and real gradients — tests prove the
//! distributed update is bit-for-bit the large-batch centralised update.
//! Timing mode drives the same code paths against the cost models for the
//! 1024-node sweeps.
//!
//! Beyond the paper, [`buckets`] adds a backward-overlapped communication
//! mode ([`CommMode::Overlapped`]): per-layer gradient-ready events from
//! backward are grouped into size-targeted buckets and each bucket's
//! segmented all-reduce overlaps the remaining compute. The schedule is
//! bit-identical to the paper's monolithic packed reduce (asserted per
//! algorithm) and the serialized path stays the default.

pub mod buckets;
pub mod cluster;
pub mod packing;
pub mod profile;
pub mod scaling;
pub mod ssgd;
pub mod sync;
pub mod trainer;

pub use buckets::{
    build_buckets, merge_events, overlapped_allreduce, overlapped_allreduce_ft, GradBucket,
    OverlapModel, OverlapOutcome, OverlapPoint, DEFAULT_BUCKET_BYTES,
};
pub use cluster::{ClusterConfig, ClusterIteration, ClusterTrainer, CommMode, Recovery};
pub use packing::{pack_gradients, pack_params, unpack_gradients, unpack_params};
pub use scaling::{ScalingModel, ScalingPoint};
pub use ssgd::{evaluate, CgBatch, ChipIteration, ChipTrainer};
pub use swnet::{CollectiveFault, FaultPlan, FaultReport, FaultSession};
pub use sync::HandshakeBarrier;
pub use trainer::{TrainConfig, TrainRecord, Trainer};
