//! Bridges the trainer's timing breakdowns into `swprof` phase trees.
//!
//! [`ChipIteration`] and [`ClusterIteration`] carry the per-phase
//! simulated times of Algorithm 1; these helpers render them as the
//! hierarchical [`PhaseTiming`] the benchmark reports serialise, using
//! one canonical set of phase names so baselines stay comparable across
//! binaries.

use swprof::PhaseTiming;

use crate::cluster::ClusterIteration;
use crate::ssgd::{ChipIteration, ChipTrainer};

/// Phase tree of one single-chip iteration:
/// `iteration{compute, intra, update}`.
pub fn chip_phase(r: &ChipIteration) -> PhaseTiming {
    PhaseTiming::new("iteration", ChipTrainer::iteration_time(r).seconds())
        .child(PhaseTiming::leaf("compute", r.compute))
        .child(PhaseTiming::leaf("intra", r.intra))
        .child(PhaseTiming::leaf("update", r.update))
}

/// Phase tree of one cluster iteration:
/// `iteration{compute, intra, allreduce, update, io_stall}`.
pub fn cluster_phase(r: &ClusterIteration) -> PhaseTiming {
    PhaseTiming::new("iteration", r.total().seconds())
        .child(PhaseTiming::leaf("compute", r.compute))
        .child(PhaseTiming::leaf("intra", r.intra))
        .child(PhaseTiming::leaf("allreduce", r.comm))
        .child(PhaseTiming::leaf("update", r.update))
        .child(PhaseTiming::leaf("io_stall", r.io_stall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::SimTime;

    #[test]
    fn chip_phase_sums_to_iteration_time() {
        let r = ChipIteration {
            loss: 0.5,
            compute: SimTime::from_seconds(2.0),
            intra: SimTime::from_seconds(0.3),
            update: SimTime::from_seconds(0.1),
        };
        let p = chip_phase(&r);
        assert_eq!(p.name, "iteration");
        let child_sum: f64 = p.children.iter().map(|c| c.seconds).sum();
        assert!((p.seconds - child_sum).abs() < 1e-12);
        assert!((p.seconds - 2.4).abs() < 1e-12);
    }

    #[test]
    fn cluster_phase_includes_comm_and_io() {
        let r = ClusterIteration {
            loss: 0.5,
            compute: SimTime::from_seconds(2.0),
            comm: SimTime::from_seconds(0.5),
            intra: SimTime::from_seconds(0.3),
            update: SimTime::from_seconds(0.1),
            io_stall: SimTime::from_seconds(0.05),
        };
        let p = cluster_phase(&r);
        let names: Vec<&str> = p.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["compute", "intra", "allreduce", "update", "io_stall"]
        );
        let child_sum: f64 = p.children.iter().map(|c| c.seconds).sum();
        assert!((p.seconds - child_sum).abs() < 1e-12);
    }
}
