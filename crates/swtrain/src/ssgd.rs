//! Algorithm 1 / Fig. 5: synchronous SGD on one SW26010 processor.
//!
//! Four threads — one per core group — each run forward/backward on a
//! quarter of the mini-batch against their own model replica (each CG has
//! its own memory space on the real chip). The threads meet in the
//! handshake barrier, CG0 gathers and sums the gradients over the NoC and
//! its CPE cluster, the (optional) cross-node reduction runs, the solver
//! updates CG0's weights, and the new weights are re-broadcast to the
//! other core groups.

use sw26010::arch::CORE_GROUPS;
use sw26010::{Chip, CoreGroup, ExecMode, SimTime};
use swcaffe_core::snapshot::SolverState;
use swcaffe_core::{GradReady, Net, NetDef, SgdSolver, SolverConfig};
use swdnn::elementwise as ew;

use crate::packing::{pack_gradients, pack_params, unpack_gradients, unpack_params};
use crate::sync::{HandshakeBarrier, HANDSHAKE_SECONDS};

/// One core group's `(data, labels)` input pair.
pub type CgBatch = (Vec<f32>, Vec<f32>);

/// Per-iteration timing breakdown of one chip.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChipIteration {
    pub loss: f32,
    /// Slowest core group's forward+backward time.
    pub compute: SimTime,
    /// Intra-chip gradient gather + sum + weight re-broadcast.
    pub intra: SimTime,
    /// Solver update.
    pub update: SimTime,
}

/// One simulated SW26010 node running Algorithm 1.
pub struct ChipTrainer {
    /// One model replica per core group (each CG owns its memory space).
    nets: Vec<Net>,
    cgs: Vec<CoreGroup>,
    solver: SgdSolver,
    mode: ExecMode,
    param_elems: usize,
    /// Per-CG sub-mini-batch size (the paper's b/4).
    pub cg_batch: usize,
}

impl ChipTrainer {
    /// `def` must be defined at the *per-CG* batch size (b/4).
    pub fn new(def: &NetDef, solver: SolverConfig, mode: ExecMode) -> Result<Self, String> {
        let materialize = mode.is_functional();
        let nets: Result<Vec<Net>, String> = (0..CORE_GROUPS)
            .map(|_| Net::from_def(def, materialize))
            .collect();
        let nets = nets?;
        let cg_batch = nets[0].blob("data").shape()[0];
        let param_elems = nets[0].param_len();
        Ok(ChipTrainer {
            nets,
            cgs: (0..CORE_GROUPS).map(|_| CoreGroup::new(mode)).collect(),
            solver: SgdSolver::new(solver),
            mode,
            param_elems,
            cg_batch,
        })
    }

    pub fn param_elems(&self) -> usize {
        self.param_elems
    }

    /// Hardware counters aggregated over all four core groups.
    pub fn stats(&self) -> sw26010::Stats {
        let mut s = sw26010::Stats::default();
        for cg in &self.cgs {
            s.merge(cg.stats());
        }
        s
    }

    /// Gradient bytes exchanged by the all-reduce.
    pub fn param_bytes(&self) -> usize {
        self.param_elems * 4
    }

    /// The chip's whole mini-batch (4 * b/4).
    pub fn chip_batch(&self) -> usize {
        CORE_GROUPS * self.cg_batch
    }

    /// Primary net (CG0's replica), e.g. for evaluation.
    pub fn net(&self) -> &Net {
        &self.nets[0]
    }

    pub fn net_mut(&mut self) -> &mut Net {
        &mut self.nets[0]
    }

    /// The chip's solver (iteration counter, LR schedule, momentum).
    pub fn solver(&self) -> &SgdSolver {
        &self.solver
    }

    /// Capture everything beyond the weights that a bit-identical resume
    /// needs (see [`swcaffe_core::snapshot::SolverState`]). The weights
    /// and persistent layer state travel separately, via the primary
    /// replica ([`ChipTrainer::net`]) and the snapshot body.
    pub fn solver_state(&self) -> SolverState {
        SolverState {
            iteration: self.solver.iter() as u64,
            momentum: self.solver.history().to_vec(),
            rng_streams: self.nets[0].rng_streams(),
        }
    }

    /// Restore a checkpoint onto this chip: write the packed weights,
    /// persistent layer state, and RNG streams into **every** core-group
    /// replica (each CG owns its memory space, so all four must agree,
    /// exactly as after [`ChipTrainer::apply_update`]'s re-broadcast) and
    /// reposition the solver.
    pub fn restore(
        &mut self,
        weights: &[f32],
        persistent: &[Vec<f32>],
        state: &SolverState,
    ) -> Result<(), String> {
        assert!(
            self.mode.is_functional(),
            "checkpoint restore needs functional mode"
        );
        for net in &mut self.nets {
            unpack_params(net, weights);
            let dsts = net.state_mut();
            if dsts.len() != persistent.len() {
                return Err(format!(
                    "checkpoint has {} persistent state vectors, net has {}",
                    persistent.len(),
                    dsts.len()
                ));
            }
            for (dst, src) in dsts.into_iter().zip(persistent) {
                if dst.len() != src.len() {
                    return Err("persistent state vector length mismatch".into());
                }
                dst.copy_from_slice(src);
            }
            net.set_rng_streams(&state.rng_streams)?;
        }
        self.solver
            .restore(state.iteration as usize, state.momentum.clone());
        Ok(())
    }

    /// Phases 1-3 of Algorithm 1: per-CG forward/backward (real threads),
    /// handshake sync, gradient gather+sum at CG0. Returns the mean loss,
    /// timing, and the *summed* (not yet averaged) packed gradient.
    pub fn compute_gradients(
        &mut self,
        inputs: Option<&[(Vec<f32>, Vec<f32>)]>,
    ) -> (ChipIteration, Vec<f32>) {
        let (report, packed, _) = self.compute_gradients_inner(inputs, false);
        (report, packed)
    }

    /// Like [`ChipTrainer::compute_gradients`], additionally collecting
    /// gradient-ready events for the overlapped communication mode:
    /// per-layer spans of the packed gradient with the *slowest* core
    /// group's ready time (a bucket cannot leave the chip before every
    /// CG's contribution is in), relative to the iteration start.
    pub fn compute_gradients_with_events(
        &mut self,
        inputs: Option<&[(Vec<f32>, Vec<f32>)]>,
    ) -> (ChipIteration, Vec<f32>, Vec<GradReady>) {
        self.compute_gradients_inner(inputs, true)
    }

    fn compute_gradients_inner(
        &mut self,
        inputs: Option<&[(Vec<f32>, Vec<f32>)]>,
        collect_events: bool,
    ) -> (ChipIteration, Vec<f32>, Vec<GradReady>) {
        let functional = self.mode.is_functional();
        if functional {
            let inputs = inputs.expect("functional training needs per-CG inputs");
            assert_eq!(inputs.len(), CORE_GROUPS);
        }
        let barrier = HandshakeBarrier::new(CORE_GROUPS);
        let before: Vec<SimTime> = self.cgs.iter().map(|c| c.elapsed()).collect();

        // pthread_create over the 4 CGs (Fig. 5).
        let outcomes: Vec<(f32, Vec<GradReady>)> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .nets
                .iter_mut()
                .zip(self.cgs.iter_mut())
                .enumerate()
                .map(|(i, (net, cg))| {
                    let barrier = &barrier;
                    let input = inputs.map(|inp| &inp[i]);
                    let start = before[i];
                    s.spawn(move || {
                        if let Some((data, labels)) = input {
                            net.set_input("data", data);
                            net.set_input("label", labels);
                        }
                        net.zero_param_diffs();
                        let loss = net.forward(cg);
                        let events = if collect_events {
                            let mut ev = net.backward_with_events(cg);
                            for e in &mut ev {
                                e.ready = e.ready - start;
                            }
                            ev
                        } else {
                            net.backward(cg);
                            Vec::new()
                        };
                        barrier.wait();
                        cg.charge(SimTime::from_seconds(HANDSHAKE_SECONDS));
                        (loss, events)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("CG thread panicked"))
                .collect()
        });
        let losses: Vec<f32> = outcomes.iter().map(|(l, _)| *l).collect();
        let events = if collect_events {
            crate::buckets::merge_events(&outcomes.into_iter().map(|(_, e)| e).collect::<Vec<_>>())
        } else {
            Vec::new()
        };

        let compute = self
            .cgs
            .iter()
            .zip(&before)
            .map(|(c, b)| c.elapsed() - *b)
            .fold(SimTime::ZERO, SimTime::max);

        // CG0 gathers the other CGs' gradients over the NoC and sums them
        // on its CPE cluster.
        let intra_before = self.cgs[0].elapsed();
        let noc = Chip::noc_transfer_time(self.param_bytes());
        let mut packed = if functional {
            pack_gradients(&self.nets[0])
        } else {
            Vec::new()
        };
        for i in 1..CORE_GROUPS {
            self.cgs[0].charge(noc);
            if functional {
                let other = pack_gradients(&self.nets[i]);
                ew::axpy(
                    &mut self.cgs[0],
                    self.param_elems,
                    1.0,
                    Some((&other, &mut packed)),
                );
            } else {
                ew::axpy(&mut self.cgs[0], self.param_elems, 1.0, None);
            }
        }
        let intra = self.cgs[0].elapsed() - intra_before;

        let loss = losses.iter().sum::<f32>() / CORE_GROUPS as f32;
        (
            ChipIteration {
                loss,
                compute,
                intra,
                update: SimTime::ZERO,
            },
            packed,
            events,
        )
    }

    /// Phases 4-5: scale the summed gradient by `scale` (1/(4N) across the
    /// job), apply the SGD update on CG0, and re-broadcast the weights to
    /// the other core groups. Returns (update time, intra-chip broadcast
    /// time).
    pub fn apply_update(&mut self, packed: &mut [f32], scale: f32) -> (SimTime, SimTime) {
        let functional = self.mode.is_functional();
        let t0 = self.cgs[0].elapsed();
        if functional {
            ew::scale(
                &mut self.cgs[0],
                self.param_elems,
                scale,
                Some(&mut *packed),
            );
            unpack_gradients(&mut self.nets[0], packed);
        } else {
            ew::scale(&mut self.cgs[0], self.param_elems, scale, None);
        }
        // Solver step (split borrow of nets[0] vs cgs[0]).
        let (net0, cg0) = (&mut self.nets[0], &mut self.cgs[0]);
        self.solver.step(cg0, net0);
        let update = self.cgs[0].elapsed() - t0;

        // Weight re-broadcast over the NoC. Persistent layer state (batch
        // norm running mean/var) rides along: each replica's statistics
        // see only its quarter-batch, so without this CG0's `evaluate()`
        // would run on skewed statistics and the replicas would diverge.
        // The state is tiny next to the weights, so it shares the weight
        // broadcast's NoC charge below.
        let tb = self.cgs[0].elapsed();
        if functional {
            let weights = pack_params(&self.nets[0]);
            let state: Vec<Vec<f32>> = self.nets[0].state().iter().map(|s| s.to_vec()).collect();
            for i in 1..CORE_GROUPS {
                unpack_params(&mut self.nets[i], &weights);
                for (dst, src) in self.nets[i].state_mut().into_iter().zip(&state) {
                    dst.copy_from_slice(src);
                }
            }
        }
        let noc = Chip::noc_transfer_time(self.param_bytes());
        for _ in 1..CORE_GROUPS {
            self.cgs[0].charge(noc);
        }
        let bcast = self.cgs[0].elapsed() - tb;
        (update, bcast)
    }

    /// One complete single-node iteration (no cross-node reduction).
    pub fn iteration(&mut self, inputs: Option<&[(Vec<f32>, Vec<f32>)]>) -> ChipIteration {
        let (mut report, mut packed) = self.compute_gradients(inputs);
        let (update, bcast) = self.apply_update(&mut packed, 1.0 / CORE_GROUPS as f32);
        report.update = update;
        report.intra += bcast;
        report
    }

    /// Total per-iteration time of a single-node step.
    pub fn iteration_time(report: &ChipIteration) -> SimTime {
        report.compute + report.intra + report.update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcaffe_core::models;

    fn synth_inputs(
        cg_batch: usize,
        classes: usize,
        img: usize,
        seed: usize,
    ) -> Vec<(Vec<f32>, Vec<f32>)> {
        (0..CORE_GROUPS)
            .map(|cgi| {
                let mut data = vec![0.0f32; cg_batch * img];
                let mut labels = vec![0.0f32; cg_batch];
                for b in 0..cg_batch {
                    let class = (b + cgi + seed) % classes;
                    labels[b] = class as f32;
                    for i in 0..img {
                        let noise = (((b * 131 + i * 31 + cgi * 7 + seed * 13) % 89) as f32 / 89.0
                            - 0.5)
                            * 0.2;
                        let stripe = (i * classes / img) == class;
                        data[b * img + i] = noise + if stripe { 1.0 } else { 0.0 };
                    }
                }
                (data, labels)
            })
            .collect()
    }

    #[test]
    fn four_cg_training_reduces_loss() {
        let def = models::tiny_cnn(2, 3); // per-CG batch 2 => chip batch 8
        let mut trainer = ChipTrainer::new(
            &def,
            SolverConfig {
                base_lr: 0.05,
                ..Default::default()
            },
            ExecMode::Functional,
        )
        .unwrap();
        assert_eq!(trainer.chip_batch(), 8);
        let img = 3 * 16 * 16;
        let first = trainer.iteration(Some(&synth_inputs(2, 3, img, 0))).loss;
        let mut last = first;
        for it in 1..20 {
            last = trainer
                .iteration(Some(&synth_inputs(2, 3, img, it % 3)))
                .loss;
        }
        assert!(
            last < 0.7 * first,
            "chip SSGD failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn replicas_stay_in_lockstep() {
        // After every iteration all four CG replicas hold identical
        // *full* snapshot state — weights AND persistent layer state
        // (batch-norm running statistics, which each CG accumulates from
        // its own quarter-batch and must receive back from CG0).
        let def = models::tiny_cnn(2, 3); // tiny_cnn includes a BN layer
        let mut trainer =
            ChipTrainer::new(&def, SolverConfig::default(), ExecMode::Functional).unwrap();
        assert!(
            !trainer.nets[0].state().is_empty(),
            "test net must carry persistent layer state"
        );
        let img = 3 * 16 * 16;
        let snapshot = |net: &Net| {
            let mut buf = Vec::new();
            swcaffe_core::snapshot::write_weights(net, &mut buf).unwrap();
            buf
        };
        for it in 0..3 {
            trainer.iteration(Some(&synth_inputs(2, 3, img, it)));
            let reference = snapshot(&trainer.nets[0]);
            for i in 1..CORE_GROUPS {
                assert_eq!(snapshot(&trainer.nets[i]), reference, "CG {i} diverged");
            }
        }
    }

    #[test]
    fn timing_mode_reports_costs() {
        let def = models::tiny_cnn(8, 10);
        let mut trainer =
            ChipTrainer::new(&def, SolverConfig::default(), ExecMode::TimingOnly).unwrap();
        let report = trainer.iteration(None);
        assert!(report.compute.seconds() > 0.0);
        assert!(report.intra.seconds() > 0.0);
        assert!(report.update.seconds() > 0.0);
        // Compute dominates the intra-chip bookkeeping for a conv net.
        assert!(report.compute.seconds() > report.intra.seconds());
    }

    #[test]
    fn chip_gradient_equals_sum_of_cg_gradients() {
        let def = models::tiny_cnn(2, 3);
        let mut trainer =
            ChipTrainer::new(&def, SolverConfig::default(), ExecMode::Functional).unwrap();
        let img = 3 * 16 * 16;
        let inputs = synth_inputs(2, 3, img, 5);
        let (_, packed) = trainer.compute_gradients(Some(&inputs));
        // Recompute per-CG gradients independently and sum.
        let mut want = vec![0.0f64; trainer.param_elems()];
        for (cgi, (data, labels)) in inputs.iter().enumerate() {
            let mut net = Net::from_def(&def, true).unwrap();
            let mut cg = CoreGroup::new(ExecMode::Functional);
            net.set_input("data", data);
            net.set_input("label", labels);
            net.zero_param_diffs();
            net.forward(&mut cg);
            net.backward(&mut cg);
            for (w, v) in want.iter_mut().zip(pack_gradients(&net)) {
                *w += v as f64;
            }
            let _ = cgi;
        }
        for (i, (g, w)) in packed.iter().zip(&want).enumerate() {
            assert!(
                (*g as f64 - w).abs() < 1e-3 * w.abs().max(1.0),
                "gradient {i}: {g} vs {w}"
            );
        }
    }
}

/// Evaluate a trained chip on held-out batches: switches the primary
/// replica to `Phase::Test` (running BN statistics, dropout off), runs
/// forward passes on CG0, and reports mean loss and accuracy.
pub fn evaluate(trainer: &mut ChipTrainer, batches: &[(Vec<f32>, Vec<f32>)]) -> (f32, f32) {
    use swcaffe_core::Phase;
    assert!(
        trainer.mode.is_functional(),
        "evaluation needs functional mode"
    );
    let net = &mut trainer.nets[0];
    net.set_phase(Phase::Test);
    let cg = &mut trainer.cgs[0];
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    for (data, labels) in batches {
        net.set_input("data", data);
        net.set_input("label", labels);
        loss_sum += net.forward(cg) as f64;
        if net.has_blob("accuracy") {
            acc_sum += net.blob("accuracy").data()[0] as f64;
        }
    }
    net.set_phase(Phase::Train);
    let n = batches.len().max(1) as f64;
    ((loss_sum / n) as f32, (acc_sum / n) as f32)
}

#[cfg(test)]
mod eval_tests {
    use super::*;
    use swcaffe_core::models;

    #[test]
    fn evaluation_improves_with_training() {
        let classes = 3;
        let def = models::tiny_cnn(2, classes);
        let mut trainer = ChipTrainer::new(
            &def,
            SolverConfig {
                base_lr: 0.05,
                ..Default::default()
            },
            ExecMode::Functional,
        )
        .unwrap();
        let img = 3 * 16 * 16;
        let make = |seed: usize| {
            let mut data = vec![0.0f32; 2 * img];
            let mut labels = vec![0.0f32; 2];
            for b in 0..2 {
                let class = (b + seed) % classes;
                labels[b] = class as f32;
                for i in 0..img {
                    let noise = (((b * 131 + i * 31 + seed * 13) % 89) as f32 / 89.0 - 0.5) * 0.2;
                    let stripe = (i * classes / img) == class;
                    data[b * img + i] = noise + if stripe { 1.0 } else { 0.0 };
                }
            }
            (data, labels)
        };
        let eval_set: Vec<(Vec<f32>, Vec<f32>)> = (0..4).map(make).collect();
        let (loss_before, _) = evaluate(&mut trainer, &eval_set);
        for it in 0..15 {
            let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..4).map(|cg| make(it + cg)).collect();
            trainer.iteration(Some(&inputs));
        }
        let (loss_after, acc_after) = evaluate(&mut trainer, &eval_set);
        assert!(
            loss_after < loss_before,
            "eval loss did not improve: {loss_before} -> {loss_after}"
        );
        assert!(acc_after > 0.4, "eval accuracy {acc_after}");
    }
}
