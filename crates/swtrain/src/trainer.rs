//! High-level training driver: wires the synthetic dataset, the striped-
//! filesystem prefetchers, the four-core-group chip trainer and periodic
//! evaluation into one loop — the `caffe train` analogue.

use sw26010::arch::CORE_GROUPS;
use sw26010::{ExecMode, SimTime};
use swcaffe_core::{NetDef, SolverConfig};
use swio::{io_stall, IoModel, Prefetcher, SyntheticImageNet};

use crate::ssgd::{evaluate, ChipTrainer};

/// Configuration of a single-node training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub solver: SolverConfig,
    /// Evaluate every `eval_every` iterations (0 = never).
    pub eval_every: usize,
    /// Held-out batches used for evaluation.
    pub eval_batches: usize,
    /// Restrict labels to the model's class count.
    pub classes: usize,
}

/// One row of the training log.
#[derive(Debug, Clone, Copy)]
pub struct TrainRecord {
    pub iter: usize,
    pub train_loss: f32,
    pub eval_loss: Option<f32>,
    pub eval_accuracy: Option<f32>,
    /// Simulated wall time of this iteration (compute + intra + update +
    /// I/O stall).
    pub iter_time: SimTime,
}

/// Single-node trainer with a real prefetch pipeline.
pub struct Trainer {
    chip: ChipTrainer,
    dataset: SyntheticImageNet,
    prefetcher: Prefetcher,
    config: TrainConfig,
    input_chw: (usize, usize, usize),
    eval_set: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Trainer {
    /// Build a functional-mode trainer. `def` is at the per-CG batch size.
    pub fn new(
        def: &NetDef,
        dataset: SyntheticImageNet,
        io: IoModel,
        config: TrainConfig,
    ) -> Result<Self, String> {
        Self::with_mode(def, dataset, io, config, ExecMode::Functional)
    }

    /// Build a trainer on a specific compute backend. `ExecMode::Functional`
    /// is the Sw26010 mesh simulation (timed); `ExecMode::HostNative` runs
    /// the same arithmetic on host threads with zero simulated time, so
    /// `iter_time` reflects only the I/O model.
    pub fn with_mode(
        def: &NetDef,
        dataset: SyntheticImageNet,
        io: IoModel,
        config: TrainConfig,
        mode: ExecMode,
    ) -> Result<Self, String> {
        let chip = ChipTrainer::new(def, config.solver, mode)?;
        let shape = chip.net().blob("data").shape().to_vec();
        let (c, h, w) = (shape[1], shape[2], shape[3]);
        let chip_batch = chip.chip_batch();
        let prefetcher = Prefetcher::spawn(dataset, io, 1, chip_batch, c, h, w, 1);
        // Deterministic held-out set drawn from a disjoint seed range.
        let cg_batch = chip.cg_batch;
        let mut eval_set = Vec::new();
        for i in 0..config.eval_batches {
            let mut data = vec![0.0f32; cg_batch * c * h * w];
            let mut labels = vec![0.0f32; cg_batch];
            dataset.fill_batch(
                1_000_000 + i as u64,
                cg_batch,
                c,
                h,
                w,
                &mut data,
                &mut labels,
            );
            for l in labels.iter_mut() {
                *l %= config.classes as f32;
            }
            eval_set.push((data, labels));
        }
        Ok(Trainer {
            chip,
            dataset,
            prefetcher,
            config,
            input_chw: (c, h, w),
            eval_set,
        })
    }

    /// Run `iters` iterations; returns the log, or the dataset read
    /// error (with the failing batch's seed) that ended the run early.
    pub fn run(&mut self, iters: usize) -> Result<Vec<TrainRecord>, String> {
        let (c, h, w) = self.input_chw;
        let per_img = c * h * w;
        let cg_batch = self.chip.cg_batch;
        let mut log = Vec::with_capacity(iters);
        for iter in 0..iters {
            let batch = self.prefetcher.next()?;
            let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..CORE_GROUPS)
                .map(|cg| {
                    let d = batch.data[cg * cg_batch * per_img..][..cg_batch * per_img].to_vec();
                    let mut l = batch.labels[cg * cg_batch..][..cg_batch].to_vec();
                    for v in l.iter_mut() {
                        *v %= self.config.classes as f32;
                    }
                    (d, l)
                })
                .collect();
            let report = self.chip.iteration(Some(&inputs));
            let compute = ChipTrainer::iteration_time(&report);
            let iter_time = compute + io_stall(batch.io_time, compute);

            let (eval_loss, eval_accuracy) = if self.config.eval_every > 0
                && (iter + 1).is_multiple_of(self.config.eval_every)
            {
                let (l, a) = evaluate(&mut self.chip, &self.eval_set);
                (Some(l), Some(a))
            } else {
                (None, None)
            };
            log.push(TrainRecord {
                iter,
                train_loss: report.loss,
                eval_loss,
                eval_accuracy,
                iter_time,
            });
        }
        Ok(log)
    }

    pub fn chip(&self) -> &ChipTrainer {
        &self.chip
    }

    pub fn chip_mut(&mut self) -> &mut ChipTrainer {
        &mut self.chip
    }

    pub fn dataset(&self) -> &SyntheticImageNet {
        &self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcaffe_core::models;
    use swio::Layout;

    #[test]
    fn trainer_loop_learns_and_logs() {
        let classes = 4;
        let def = models::tiny_cnn(2, classes);
        let config = TrainConfig {
            solver: SolverConfig {
                base_lr: 0.05,
                ..Default::default()
            },
            eval_every: 10,
            eval_batches: 3,
            classes,
        };
        let mut trainer = Trainer::new(
            &def,
            SyntheticImageNet::new(512),
            IoModel::taihulight(Layout::paper_striped()),
            config,
        )
        .unwrap();
        let log = trainer.run(20).unwrap();
        assert_eq!(log.len(), 20);
        assert!(log.iter().all(|r| r.train_loss.is_finite()));
        assert!(log.iter().all(|r| r.iter_time.seconds() > 0.0));
        // Evaluations fired at iterations 9 and 19.
        let evals: Vec<&TrainRecord> = log.iter().filter(|r| r.eval_loss.is_some()).collect();
        assert_eq!(evals.len(), 2);
        // Training reduces the (noisy) loss on average.
        let head: f32 = log[..5].iter().map(|r| r.train_loss).sum::<f32>() / 5.0;
        let tail: f32 = log[15..].iter().map(|r| r.train_loss).sum::<f32>() / 5.0;
        assert!(tail < head, "loss did not trend down: {head} -> {tail}");
    }
}
