//! Scalability analytics for Figs. 10 and 11: strong-scaling speedups and
//! communication-time fractions from 1 to 1024 nodes.
//!
//! Under synchronous data parallelism every node is statistically
//! identical, so one representative node's per-iteration compute time
//! (from the timing-mode [`crate::ssgd::ChipTrainer`]) plus the all-reduce
//! cost at each scale determines the whole curve — which is also exactly
//! how the paper evaluates weak scaling (fixed sub-mini-batch per node).

use sw26010::SimTime;
use swio::IoModel;
use swnet::{allreduce, Algorithm, NetParams, RankMap, Topology};

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    pub nodes: usize,
    /// Per-iteration wall time.
    pub iter_time: SimTime,
    pub compute: SimTime,
    pub comm: SimTime,
    pub io_stall: SimTime,
    /// Throughput speedup over one node (weak scaling: same per-node
    /// batch, so ideal speedup is `nodes`).
    pub speedup: f64,
    /// Fig. 11's communication share.
    pub comm_fraction: f64,
}

/// Inputs of the scaling model.
#[derive(Debug, Clone, Copy)]
pub struct ScalingModel {
    /// Per-iteration on-node time (compute + intra-chip + update) at the
    /// chosen sub-mini-batch.
    pub node_time: SimTime,
    /// Gradient elements all-reduced per iteration.
    pub param_elems: usize,
    pub net: NetParams,
    pub rank_map: RankMap,
    pub algorithm: Algorithm,
    /// Nodes per supernode — `ClusterConfig` supports non-256 sizes, so
    /// the model must too (it used to hardcode `Topology::new`).
    pub supernode_size: usize,
    /// Optional I/O model and per-node bytes read each iteration.
    pub io: Option<(IoModel, usize)>,
}

impl ScalingModel {
    /// Evaluate one scale.
    pub fn point(&self, nodes: usize) -> ScalingPoint {
        let topo = Topology::with_supernode(nodes, self.supernode_size);
        let comm = if nodes > 1 {
            allreduce(
                &topo,
                &self.net,
                self.rank_map,
                self.algorithm,
                self.param_elems,
                None,
            )
            .elapsed
        } else {
            SimTime::ZERO
        };
        // Prefetch hides I/O behind compute; only the excess stalls.
        let io_stall = match self.io {
            Some((model, bytes)) => {
                swio::io_stall(model.batch_read_time(nodes, bytes), self.node_time)
            }
            None => SimTime::ZERO,
        };
        let iter_time = self.node_time + comm + io_stall;
        let single = self.node_time.seconds()
            + match self.io {
                Some((model, bytes)) => {
                    swio::io_stall(model.batch_read_time(1, bytes), self.node_time).seconds()
                }
                None => 0.0,
            };
        let speedup = nodes as f64 * single / iter_time.seconds();
        ScalingPoint {
            nodes,
            iter_time,
            compute: self.node_time,
            comm,
            io_stall,
            speedup,
            comm_fraction: comm.seconds() / iter_time.seconds(),
        }
    }

    /// Evaluate the standard sweep (powers of two).
    pub fn curve(&self, max_nodes: usize) -> Vec<ScalingPoint> {
        let mut points = Vec::new();
        let mut n = 1;
        while n <= max_nodes {
            points.push(self.point(n));
            n *= 2;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swnet::ReduceEngine;

    fn model(node_seconds: f64, param_elems: usize) -> ScalingModel {
        ScalingModel {
            node_time: SimTime::from_seconds(node_seconds),
            param_elems,
            net: NetParams::sunway_allreduce(ReduceEngine::CpeClusters),
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            supernode_size: swnet::SUPERNODE_SIZE,
            io: None,
        }
    }

    #[test]
    fn supernode_size_flows_into_the_topology() {
        // A pathological 2-node supernode forces nearly every exchange
        // across the over-subscribed switch, so comm must cost strictly
        // more than with the machine's 256-node supernodes.
        let big = model(1.0, 58_150_000);
        let tiny = ScalingModel {
            supernode_size: 2,
            ..big
        };
        assert!(
            tiny.point(256).comm.seconds() > big.point(256).comm.seconds(),
            "supernode size must affect the comm model"
        );
    }

    #[test]
    fn speedup_monotone_and_sublinear() {
        // AlexNet-like: 232.6 MB of parameters.
        let m = model(2.7, 58_150_000);
        let curve = m.curve(1024);
        let mut last = 0.0;
        for p in &curve {
            assert!(p.speedup >= last, "speedup dipped at {}", p.nodes);
            assert!(
                p.speedup <= p.nodes as f64 + 1e-9,
                "superlinear at {}",
                p.nodes
            );
            last = p.speedup;
        }
        let p1024 = curve.last().unwrap();
        assert_eq!(p1024.nodes, 1024);
        // The paper reports 409-715x for AlexNet depending on batch size.
        assert!(
            p1024.speedup > 300.0 && p1024.speedup < 1000.0,
            "1024-node speedup {:.0}",
            p1024.speedup
        );
    }

    #[test]
    fn larger_batch_scales_better() {
        // Fig. 10: AlexNet B=256 (longer compute) scales better than B=64.
        let params = 58_150_000;
        let big = model(2.7, params).point(1024).speedup;
        let small = model(0.68, params).point(1024).speedup;
        assert!(big > 1.3 * small, "B=256 {big:.0}x vs B=64 {small:.0}x");
    }

    #[test]
    fn resnet_scales_better_than_alexnet() {
        // Fig. 10/11: ResNet-50 (97.7 MB params, heavy compute) reaches
        // ~928x; AlexNet (232.6 MB, light compute) only ~715x.
        let resnet = model(5.7, 25_600_000).point(1024);
        let alexnet = model(2.7, 58_150_000).point(1024);
        assert!(resnet.speedup > alexnet.speedup);
        assert!(resnet.comm_fraction < alexnet.comm_fraction);
    }

    #[test]
    fn comm_fraction_grows_with_scale() {
        let m = model(1.0, 58_150_000);
        let f64n = m.point(64).comm_fraction;
        let f1024 = m.point(1024).comm_fraction;
        assert!(f1024 > f64n);
        assert!(f1024 < 1.0);
    }

    #[test]
    fn single_node_has_no_comm() {
        let p = model(1.0, 1_000_000).point(1);
        assert_eq!(p.comm.seconds(), 0.0);
        assert!((p.speedup - 1.0).abs() < 1e-9);
    }
}
