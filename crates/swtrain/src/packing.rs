//! Gradient packing (Sec. V-A): the parameters of different layers vary
//! from ~1.7 KB (first VGG convolution) to ~102 MB (fc6), and reducing
//! them one layer at a time wastes both network bandwidth (per-message
//! latency) and memory bandwidth (small-granularity sums). swCaffe packs
//! every layer's gradient into one flat buffer and all-reduces once.

use swcaffe_core::Net;
use swnet::{NetParams, RankMap, Topology};

/// Pack all parameter gradients of a net into one flat buffer.
pub fn pack_gradients(net: &Net) -> Vec<f32> {
    let mut out = Vec::with_capacity(net.param_len());
    for p in net.params() {
        out.extend_from_slice(p.diff());
    }
    out
}

/// Scatter a flat buffer back into the net's parameter gradients.
pub fn unpack_gradients(net: &mut Net, packed: &[f32]) {
    let mut off = 0;
    for p in net.params_mut() {
        let len = p.len();
        p.diff_mut().copy_from_slice(&packed[off..off + len]);
        off += len;
    }
    assert_eq!(off, packed.len(), "packed buffer length mismatch");
}

/// Pack all parameter *values* (for broadcasting updated weights between
/// core groups).
pub fn pack_params(net: &Net) -> Vec<f32> {
    let mut out = Vec::with_capacity(net.param_len());
    for p in net.params() {
        out.extend_from_slice(p.data());
    }
    out
}

/// Scatter packed parameter values back.
pub fn unpack_params(net: &mut Net, packed: &[f32]) {
    let mut off = 0;
    for p in net.params_mut() {
        let len = p.len();
        p.data_mut().copy_from_slice(&packed[off..off + len]);
        off += len;
    }
    assert_eq!(off, packed.len());
}

/// Ablation helper: total all-reduce time if each layer's parameters were
/// reduced separately, vs one packed reduction (the paper's scheme).
pub fn per_layer_vs_packed(
    topo: &Topology,
    params: &NetParams,
    map: RankMap,
    layer_param_elems: &[usize],
) -> (f64, f64) {
    let per_layer: f64 = layer_param_elems
        .iter()
        .filter(|&&n| n > 0)
        .map(|&n| {
            swnet::allreduce(
                topo,
                params,
                map,
                swnet::Algorithm::RecursiveHalvingDoubling,
                n,
                None,
            )
            .elapsed
            .seconds()
        })
        .sum();
    let total: usize = layer_param_elems.iter().sum();
    let packed = swnet::allreduce(
        topo,
        params,
        map,
        swnet::Algorithm::RecursiveHalvingDoubling,
        total,
        None,
    )
    .elapsed
    .seconds();
    (per_layer, packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcaffe_core::models;
    use swnet::ReduceEngine;

    #[test]
    fn pack_unpack_roundtrip() {
        let def = models::tiny_cnn(2, 3);
        let mut net = Net::from_def(&def, true).unwrap();
        // Give the gradients recognisable values.
        for (i, p) in net.params_mut().into_iter().enumerate() {
            for (j, v) in p.diff_mut().iter_mut().enumerate() {
                *v = (i * 1000 + j) as f32;
            }
        }
        let packed = pack_gradients(&net);
        assert_eq!(packed.len(), net.param_len());
        let mut net2 = Net::from_def(&def, true).unwrap();
        unpack_gradients(&mut net2, &packed);
        assert_eq!(pack_gradients(&net2), packed);
    }

    #[test]
    fn params_roundtrip() {
        let def = models::tiny_cnn(2, 3);
        let net = Net::from_def(&def, true).unwrap();
        let original = pack_params(&net);
        let mut net2 = Net::from_def(&def, true).unwrap();
        unpack_params(&mut net2, &original);
        assert_eq!(pack_params(&net2), original);
    }

    #[test]
    fn packed_allreduce_beats_per_layer() {
        // VGG-16-like distribution: one huge fc, many small convs.
        let layers: Vec<usize> = vec![
            1_728,
            36_864,
            73_728,
            147_456,
            294_912,
            589_824,
            589_824,
            1_179_648,
            2_359_296,
            2_359_296,
            2_359_296,
            2_359_296,
            2_359_296,
            102_760_448,
            16_777_216,
            4_096_000,
        ];
        let topo = Topology::with_supernode(64, 32);
        let params = NetParams::sunway_allreduce(ReduceEngine::CpeClusters);
        let (per_layer, packed) = per_layer_vs_packed(&topo, &params, RankMap::RoundRobin, &layers);
        assert!(
            packed < 0.8 * per_layer,
            "packed {packed} vs per-layer {per_layer}"
        );
    }
}
