//! The hand-rolled inter-CG synchronisation of Sec. V-A: a handshake
//! (initiation-confirmation) barrier over semaphores in shared memory —
//! here, atomics — used by the four core-group threads of Algorithm 1.
//!
//! Protocol: each thread posts an *initiation* token; the last arrival
//! flips the generation word, which is the *confirmation* every waiter
//! spins on. Two generations alternate so consecutive barriers cannot
//! interfere.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Reusable N-party handshake barrier.
pub struct HandshakeBarrier {
    parties: usize,
    /// Initiation count for the current generation.
    arrived: AtomicUsize,
    /// Confirmation word: incremented once per completed barrier.
    generation: AtomicUsize,
}

impl HandshakeBarrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        HandshakeBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Enter the barrier; returns once all parties have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        // Initiation.
        let n = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.parties {
            // Last arrival: reset and confirm.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            // Spin (with yields) on the confirmation word.
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Completed barrier count (diagnostics).
    pub fn generations(&self) -> usize {
        self.generation.load(Ordering::Acquire)
    }
}

/// Simulated cost of one 4-CG handshake through shared memory
/// (a few hundred nanoseconds of semaphore traffic).
pub const HANDSHAKE_SECONDS: f64 = 5.0e-7;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_synchronises_phases() {
        // Classic phase test: no thread may enter phase k+1 until all
        // finished phase k.
        let parties = 4;
        let barrier = HandshakeBarrier::new(parties);
        let phase_counts: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for (phase, count) in phase_counts.iter().enumerate() {
                        count.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier, everyone must have bumped
                        // this phase.
                        assert_eq!(
                            count.load(Ordering::SeqCst),
                            parties as u64,
                            "phase {phase} incomplete after barrier"
                        );
                    }
                });
            }
        });
        assert_eq!(barrier.generations(), 16);
    }

    #[test]
    fn single_party_never_blocks() {
        let b = HandshakeBarrier::new(1);
        for _ in 0..100 {
            b.wait();
        }
        assert_eq!(b.generations(), 100);
    }

    #[test]
    fn stress_many_iterations() {
        let barrier = HandshakeBarrier::new(8);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 500);
        assert_eq!(barrier.generations(), 500);
    }
}
