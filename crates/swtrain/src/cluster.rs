//! Multi-node synchronous SGD: Algorithm 1's all-reduce step over the
//! simulated TaihuLight interconnect.
//!
//! Functional mode instantiates every node in-process (used by tests at
//! small scale to prove the distributed gradient math is exact); the
//! 1024-node sweeps of Figs. 10/11 use [`crate::scaling`] instead, which
//! reuses one representative node (all nodes are statistically identical
//! under synchronous data parallelism).

use sw26010::arch::CORE_GROUPS;
use sw26010::{ExecMode, SimTime};
use swcaffe_core::{NetDef, SolverConfig};
use swnet::{allreduce, Algorithm, NetParams, RankMap, Topology};

use crate::buckets::{build_buckets, merge_events, overlapped_allreduce};
use crate::ssgd::{CgBatch, ChipIteration, ChipTrainer};

/// How the cross-node gradient reduction is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// The paper's scheme (Sec. V-A): one monolithic packed all-reduce
    /// after the backward pass. This is the default — it is what the
    /// committed baselines measure.
    Serialized,
    /// Bucketed all-reduce overlapped with backprop (see
    /// [`crate::buckets`]): gradients are grouped into size-targeted
    /// buckets as they become ready and each bucket's segmented reduce
    /// runs concurrently with the remaining backward compute.
    Overlapped { bucket_bytes: usize },
}

/// Cluster-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    pub nodes: usize,
    pub supernode_size: usize,
    pub rank_map: RankMap,
    pub algorithm: Algorithm,
    pub net: NetParams,
    /// Gradient-reduction scheduling.
    pub comm: CommMode,
    /// Optional shared-filesystem model and per-node mini-batch bytes:
    /// prefetch hides disk time behind compute, the excess stalls the
    /// iteration (Sec. V-B).
    pub io: Option<(swio::IoModel, usize)>,
}

impl ClusterConfig {
    /// The paper's configuration: topology-aware halving/doubling with
    /// CPE-cluster sums.
    pub fn swcaffe(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            supernode_size: swnet::SUPERNODE_SIZE,
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            net: NetParams::sunway(swnet::ReduceEngine::CpeClusters),
            comm: CommMode::Serialized,
            io: None,
        }
    }

    pub fn topology(&self) -> Topology {
        Topology::with_supernode(self.nodes, self.supernode_size)
    }
}

/// Per-iteration cluster report.
///
/// In [`CommMode::Overlapped`] runs, `comm` holds only the *exposed*
/// communication — the part of the bucketed reduce extending past the
/// backward finish — so `total()` is the overlapped wall time
/// `max(compute, comm finish) + intra + update + io` in both modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterIteration {
    pub loss: f32,
    pub compute: SimTime,
    pub comm: SimTime,
    pub intra: SimTime,
    pub update: SimTime,
    pub io_stall: SimTime,
}

impl ClusterIteration {
    pub fn total(&self) -> SimTime {
        self.compute + self.comm + self.intra + self.update + self.io_stall
    }

    /// Fig. 11's metric. Zero-duration iterations (a degenerate
    /// configuration, e.g. an empty net) report 0 instead of NaN.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total().seconds();
        if total == 0.0 {
            0.0
        } else {
            self.comm.seconds() / total
        }
    }
}

/// A fully-materialised multi-node trainer (small scales, tests).
pub struct ClusterTrainer {
    pub config: ClusterConfig,
    pub chips: Vec<ChipTrainer>,
}

impl ClusterTrainer {
    pub fn new(
        def: &NetDef,
        solver: SolverConfig,
        config: ClusterConfig,
        mode: ExecMode,
    ) -> Result<Self, String> {
        let chips: Result<Vec<_>, _> = (0..config.nodes)
            .map(|_| ChipTrainer::new(def, solver, mode))
            .collect();
        Ok(ClusterTrainer {
            config,
            chips: chips?,
        })
    }

    /// One synchronous iteration across all nodes. `inputs[node][cg]` are
    /// the per-CG (data, labels) pairs; `None` in timing mode.
    pub fn iteration(&mut self, inputs: Option<&[Vec<CgBatch>]>) -> ClusterIteration {
        let n = self.config.nodes;
        let functional = inputs.is_some();
        let overlapped = matches!(self.config.comm, CommMode::Overlapped { .. });
        // Phase 1-3 on every node.
        let mut reports: Vec<ChipIteration> = Vec::with_capacity(n);
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut events: Vec<Vec<swcaffe_core::GradReady>> = Vec::new();
        for (i, chip) in self.chips.iter_mut().enumerate() {
            let node_inputs = inputs.map(|inp| &inp[i][..]);
            if overlapped {
                let (r, g, e) = chip.compute_gradients_with_events(node_inputs);
                reports.push(r);
                grads.push(g);
                events.push(e);
            } else {
                let (r, g) = chip.compute_gradients(node_inputs);
                reports.push(r);
                grads.push(g);
            }
        }
        // Synchronous step: the iteration advances at the slowest node.
        let compute = reports
            .iter()
            .map(|r| r.compute)
            .fold(SimTime::ZERO, SimTime::max);
        let intra_pre = reports
            .iter()
            .map(|r| r.intra)
            .fold(SimTime::ZERO, SimTime::max);

        // All-reduce the packed gradients.
        let topo = self.config.topology();
        let elems = self.chips[0].param_elems();
        let comm = match self.config.comm {
            CommMode::Serialized => {
                allreduce(
                    &topo,
                    &self.config.net,
                    self.config.rank_map,
                    self.config.algorithm,
                    elems,
                    functional.then_some(&mut grads[..]),
                )
                .elapsed
            }
            CommMode::Overlapped { bucket_bytes } => {
                // One segmented reduce per bucket, launched as gradients
                // became ready (slowest node gates each bucket); only the
                // comm extending past the backward finish is exposed.
                let merged = merge_events(&events);
                let buckets = build_buckets(&merged, bucket_bytes);
                let o = overlapped_allreduce(
                    &topo,
                    &self.config.net,
                    self.config.rank_map,
                    self.config.algorithm,
                    elems,
                    &buckets,
                    functional.then_some(&mut grads[..]),
                );
                SimTime::from_seconds((o.comm_finish.seconds() - compute.seconds()).max(0.0))
            }
        };

        // Phase 4-5 on every node.
        let scale = 1.0 / (CORE_GROUPS * n) as f32;
        let mut update = SimTime::ZERO;
        let mut intra_post = SimTime::ZERO;
        for (chip, g) in self.chips.iter_mut().zip(&mut grads) {
            let (u, b) = chip.apply_update(g, scale);
            update = update.max(u);
            intra_post = intra_post.max(b);
        }
        let loss = reports.iter().map(|r| r.loss).sum::<f32>() / n as f32;
        let io_stall = match self.config.io {
            Some((model, bytes)) => swio::io_stall(model.batch_read_time(n, bytes), compute),
            None => SimTime::ZERO,
        };
        ClusterIteration {
            loss,
            compute,
            comm,
            intra: intra_pre + intra_post,
            update,
            io_stall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::pack_params;
    use swcaffe_core::models;

    fn synth_cluster_inputs(
        nodes: usize,
        cg_batch: usize,
        classes: usize,
        img: usize,
        seed: usize,
    ) -> Vec<Vec<CgBatch>> {
        (0..nodes)
            .map(|node| {
                (0..CORE_GROUPS)
                    .map(|cgi| {
                        let mut data = vec![0.0f32; cg_batch * img];
                        let mut labels = vec![0.0f32; cg_batch];
                        for b in 0..cg_batch {
                            let class = (b + cgi + node * 2 + seed) % classes;
                            labels[b] = class as f32;
                            for i in 0..img {
                                let noise = (((b * 31 + i * 17 + node * 5 + cgi * 3 + seed * 7)
                                    % 83) as f32
                                    / 83.0
                                    - 0.5)
                                    * 0.2;
                                let stripe = (i * classes / img) == class;
                                data[b * img + i] = noise + if stripe { 1.0 } else { 0.0 };
                            }
                        }
                        (data, labels)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cluster_nodes_stay_synchronous() {
        let def = models::tiny_cnn(1, 3);
        let mut cluster = ClusterTrainer::new(
            &def,
            SolverConfig::default(),
            ClusterConfig {
                supernode_size: 2,
                ..ClusterConfig::swcaffe(4)
            },
            ExecMode::Functional,
        )
        .unwrap();
        let img = 3 * 16 * 16;
        for it in 0..3 {
            let inputs = synth_cluster_inputs(4, 1, 3, img, it);
            let r = cluster.iteration(Some(&inputs));
            assert!(r.loss.is_finite());
            assert!(r.comm.seconds() > 0.0);
            // Every node must hold the same weights afterwards.
            let reference = pack_params(cluster.chips[0].net());
            for (i, chip) in cluster.chips.iter().enumerate().skip(1) {
                assert_eq!(pack_params(chip.net()), reference, "node {i} diverged");
            }
        }
    }

    /// A BN-free CNN: batch-norm statistics are not batch-size
    /// associative, so the exact distributed-vs-centralised equivalence
    /// only holds without them (as in real data-parallel training).
    fn plain_cnn(batch: usize, classes: usize) -> swcaffe_core::NetDef {
        models::NetBuilder::new("plain_cnn", batch, 3, 16)
            .force_nchw()
            .conv("conv1", 8, 3, 1, 1)
            .relu("relu1")
            .pool("pool1", 2, 2, 0, swcaffe_core::PoolKind::Max)
            .fc("fc", classes)
            .loss()
    }

    #[test]
    fn distributed_equals_single_node_large_batch() {
        // 2 nodes x chip-batch 4 must produce exactly the same update as
        // 1 node x chip-batch 8 over the same 8 samples (synchronous SGD
        // is batch-size associative).
        let img = 3 * 16 * 16;
        let classes = 3;
        let solver = SolverConfig {
            base_lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            ..Default::default()
        };

        // Build one deterministic pool of 8 (data, label) samples.
        let pool = synth_cluster_inputs(2, 1, classes, img, 9);

        let def_small = plain_cnn(1, classes);
        let mut cluster = ClusterTrainer::new(
            &def_small,
            solver,
            ClusterConfig {
                supernode_size: 2,
                ..ClusterConfig::swcaffe(2)
            },
            ExecMode::Functional,
        )
        .unwrap();
        cluster.iteration(Some(&pool));
        let distributed = pack_params(cluster.chips[0].net());

        // Single node with per-CG batch 2 sees the same 8 samples.
        let def_big = plain_cnn(2, classes);
        let mut single = ChipTrainer::new(&def_big, solver, ExecMode::Functional).unwrap();
        let merged: Vec<(Vec<f32>, Vec<f32>)> = (0..CORE_GROUPS)
            .map(|cgi| {
                // CG cgi of the big node takes node0.cg and node1.cg
                // samples cgi (two samples of batch 1 each).
                let (d0, l0) = &pool[0][cgi];
                let (d1, l1) = &pool[1][cgi];
                let mut d = d0.clone();
                d.extend_from_slice(d1);
                let mut l = l0.clone();
                l.extend_from_slice(l1);
                (d, l)
            })
            .collect();
        single.iteration(Some(&merged));
        let centralized = pack_params(single.net());

        assert_eq!(distributed.len(), centralized.len());
        for (i, (a, b)) in distributed.iter().zip(&centralized).enumerate() {
            assert!(
                (a - b).abs() < 2e-4 * b.abs().max(1.0),
                "param {i}: distributed {a} vs centralized {b}"
            );
        }
    }

    #[test]
    fn overlapped_cluster_matches_serialized_bitwise() {
        // Overlapped bucketed communication changes the schedule, not the
        // math: after training, every weight must be bit-identical to the
        // serialized packed reduce, for every algorithm.
        let def = models::tiny_cnn(1, 3);
        let img = 3 * 16 * 16;
        for algo in [
            Algorithm::Ring,
            Algorithm::Binomial,
            Algorithm::RecursiveHalvingDoubling,
        ] {
            let run = |comm: CommMode| {
                let mut cluster = ClusterTrainer::new(
                    &def,
                    SolverConfig::default(),
                    ClusterConfig {
                        supernode_size: 2,
                        algorithm: algo,
                        comm,
                        ..ClusterConfig::swcaffe(4)
                    },
                    ExecMode::Functional,
                )
                .unwrap();
                for it in 0..2 {
                    let inputs = synth_cluster_inputs(4, 1, 3, img, it);
                    cluster.iteration(Some(&inputs));
                }
                pack_params(cluster.chips[0].net())
            };
            let serialized = run(CommMode::Serialized);
            // A tiny bucket target forces several buckets per iteration.
            let overlapped = run(CommMode::Overlapped { bucket_bytes: 4096 });
            assert_eq!(serialized.len(), overlapped.len());
            for (i, (a, b)) in serialized.iter().zip(&overlapped).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{algo:?} param {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn comm_fraction_guards_zero_total() {
        let r = ClusterIteration::default();
        assert_eq!(r.comm_fraction(), 0.0);
    }

    #[test]
    fn timing_mode_cluster_reports() {
        let def = models::tiny_cnn(4, 10);
        let mut cluster = ClusterTrainer::new(
            &def,
            SolverConfig::default(),
            ClusterConfig {
                supernode_size: 4,
                ..ClusterConfig::swcaffe(8)
            },
            ExecMode::TimingOnly,
        )
        .unwrap();
        let r = cluster.iteration(None);
        assert!(r.compute.seconds() > 0.0);
        assert!(r.comm.seconds() > 0.0);
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;
    use swcaffe_core::models;
    use swio::{IoModel, Layout};

    #[test]
    fn io_stall_appears_under_single_split_layout() {
        // With the degenerate single-split layout and many readers, the
        // disk cannot keep up with compute and the iteration stalls;
        // striping removes the stall.
        let def = models::tiny_cnn(8, 10);
        let batch_bytes = 192 << 20;
        let run = |layout: Layout| {
            let mut cluster = ClusterTrainer::new(
                &def,
                SolverConfig::default(),
                ClusterConfig {
                    supernode_size: 16,
                    io: Some((IoModel::taihulight(layout), batch_bytes)),
                    ..ClusterConfig::swcaffe(32)
                },
                ExecMode::TimingOnly,
            )
            .unwrap();
            cluster.iteration(None)
        };
        let single = run(Layout::SingleSplit);
        let striped = run(Layout::paper_striped());
        assert!(
            single.io_stall.seconds() > 1.0,
            "single-split must stall: {}",
            single.io_stall.seconds()
        );
        assert!(
            striped.io_stall.seconds() < single.io_stall.seconds() / 5.0,
            "striping must remove most of the stall: {} vs {}",
            striped.io_stall.seconds(),
            single.io_stall.seconds()
        );
        assert!(striped.total().seconds() < single.total().seconds());
    }
}
