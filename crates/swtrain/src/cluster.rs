//! Multi-node synchronous SGD: Algorithm 1's all-reduce step over the
//! simulated TaihuLight interconnect.
//!
//! Functional mode instantiates every node in-process (used by tests at
//! small scale to prove the distributed gradient math is exact); the
//! 1024-node sweeps of Figs. 10/11 use [`crate::scaling`] instead, which
//! reuses one representative node (all nodes are statistically identical
//! under synchronous data parallelism).

use sw26010::arch::CORE_GROUPS;
use sw26010::{ExecMode, SimTime};
use swcaffe_core::{snapshot, NetDef, SolverConfig};
use swnet::{
    allreduce, allreduce_ft, Algorithm, CollectiveFault, FaultSession, NetParams, RankMap, Topology,
};

use crate::buckets::{build_buckets, merge_events, overlapped_allreduce_ft};
use crate::packing::pack_params;
use crate::ssgd::{CgBatch, ChipIteration, ChipTrainer};

/// How the cross-node gradient reduction is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// The paper's scheme (Sec. V-A): one monolithic packed all-reduce
    /// after the backward pass. This is the default — it is what the
    /// committed baselines measure.
    Serialized,
    /// Bucketed all-reduce overlapped with backprop (see
    /// [`crate::buckets`]): gradients are grouped into size-targeted
    /// buckets as they become ready and each bucket's segmented reduce
    /// runs concurrently with the remaining backward compute.
    Overlapped { bucket_bytes: usize },
}

/// Cluster-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    pub nodes: usize,
    pub supernode_size: usize,
    pub rank_map: RankMap,
    pub algorithm: Algorithm,
    pub net: NetParams,
    /// Gradient-reduction scheduling.
    pub comm: CommMode,
    /// Optional shared-filesystem model and per-node mini-batch bytes:
    /// prefetch hides disk time behind compute, the excess stalls the
    /// iteration (Sec. V-B).
    pub io: Option<(swio::IoModel, usize)>,
}

impl ClusterConfig {
    /// The paper's configuration: topology-aware halving/doubling with
    /// CPE-cluster sums.
    pub fn swcaffe(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            supernode_size: swnet::SUPERNODE_SIZE,
            rank_map: RankMap::RoundRobin,
            algorithm: Algorithm::RecursiveHalvingDoubling,
            net: NetParams::sunway(swnet::ReduceEngine::CpeClusters),
            comm: CommMode::Serialized,
            io: None,
        }
    }

    pub fn topology(&self) -> Topology {
        Topology::with_supernode(self.nodes, self.supernode_size)
    }

    /// The symbolic collective configuration this cluster's gradient
    /// reduce runs — including after [`ClusterTrainer::recover`] has
    /// shrunk the topology and switched algorithm/rank-map. This is the
    /// hook `swcheck::comm` uses to statically verify the schedule a
    /// post-failure cluster will actually execute.
    pub fn comm_spec(&self, grad_elems: usize) -> Result<swnet::CommSpec, swnet::ScheduleError> {
        swnet::CommSpec::monolithic(self.topology(), self.rank_map, self.algorithm, grad_elems)
    }
}

/// Per-iteration cluster report.
///
/// In [`CommMode::Overlapped`] runs, `comm` holds only the *exposed*
/// communication — the part of the bucketed reduce extending past the
/// backward finish — so `total()` is the overlapped wall time
/// `max(compute, comm finish) + intra + update + io` in both modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterIteration {
    pub loss: f32,
    pub compute: SimTime,
    pub comm: SimTime,
    pub intra: SimTime,
    pub update: SimTime,
    pub io_stall: SimTime,
}

impl ClusterIteration {
    pub fn total(&self) -> SimTime {
        self.compute + self.comm + self.intra + self.update + self.io_stall
    }

    /// Fig. 11's metric. Zero-duration iterations (a degenerate
    /// configuration, e.g. an empty net) report 0 instead of NaN.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total().seconds();
        if total == 0.0 {
            0.0
        } else {
            self.comm.seconds() / total
        }
    }
}

/// A fully-materialised multi-node trainer (small scales, tests).
pub struct ClusterTrainer {
    pub config: ClusterConfig,
    pub chips: Vec<ChipTrainer>,
}

impl ClusterTrainer {
    pub fn new(
        def: &NetDef,
        solver: SolverConfig,
        config: ClusterConfig,
        mode: ExecMode,
    ) -> Result<Self, String> {
        let chips: Result<Vec<_>, _> = (0..config.nodes)
            .map(|_| ChipTrainer::new(def, solver, mode))
            .collect();
        Ok(ClusterTrainer {
            config,
            chips: chips?,
        })
    }

    /// One synchronous iteration across all nodes. `inputs[node][cg]` are
    /// the per-CG (data, labels) pairs; `None` in timing mode.
    pub fn iteration(&mut self, inputs: Option<&[Vec<CgBatch>]>) -> ClusterIteration {
        self.iteration_ft(inputs, None)
            .expect("infallible without fault injection")
    }

    /// Fault-aware [`iteration`](Self::iteration): the session's crash
    /// schedule is advanced to the solver's iteration number, and the
    /// cross-node reduction consults it (detection timeouts, degraded
    /// links, stragglers, checksummed retransmission). A dead rank or an
    /// exhausted retry budget aborts the iteration *before* any weight
    /// update — the survivors still hold the previous iteration's
    /// synchronised state — and the caller picks a [`Recovery`].
    pub fn iteration_ft(
        &mut self,
        inputs: Option<&[Vec<CgBatch>]>,
        mut faults: Option<&mut FaultSession>,
    ) -> Result<ClusterIteration, CollectiveFault> {
        if let Some(f) = faults.as_deref_mut() {
            f.begin_iteration(self.chips[0].solver().iter() as u64);
        }
        let n = self.config.nodes;
        let functional = inputs.is_some();
        let overlapped = matches!(self.config.comm, CommMode::Overlapped { .. });
        // Phase 1-3 on every node.
        let mut reports: Vec<ChipIteration> = Vec::with_capacity(n);
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut events: Vec<Vec<swcaffe_core::GradReady>> = Vec::new();
        for (i, chip) in self.chips.iter_mut().enumerate() {
            let node_inputs = inputs.map(|inp| &inp[i][..]);
            if overlapped {
                let (r, g, e) = chip.compute_gradients_with_events(node_inputs);
                reports.push(r);
                grads.push(g);
                events.push(e);
            } else {
                let (r, g) = chip.compute_gradients(node_inputs);
                reports.push(r);
                grads.push(g);
            }
        }
        // Synchronous step: the iteration advances at the slowest node.
        let compute = reports
            .iter()
            .map(|r| r.compute)
            .fold(SimTime::ZERO, SimTime::max);
        let intra_pre = reports
            .iter()
            .map(|r| r.intra)
            .fold(SimTime::ZERO, SimTime::max);

        // All-reduce the packed gradients.
        let topo = self.config.topology();
        let elems = self.chips[0].param_elems();
        let comm = match self.config.comm {
            CommMode::Serialized => {
                allreduce_ft(
                    &topo,
                    &self.config.net,
                    self.config.rank_map,
                    self.config.algorithm,
                    elems,
                    functional.then_some(&mut grads[..]),
                    faults.as_deref_mut(),
                )?
                .elapsed
            }
            CommMode::Overlapped { bucket_bytes } => {
                // One segmented reduce per bucket, launched as gradients
                // became ready (slowest node gates each bucket); only the
                // comm extending past the backward finish is exposed.
                let merged = merge_events(&events);
                let buckets = build_buckets(&merged, bucket_bytes);
                let o = overlapped_allreduce_ft(
                    &topo,
                    &self.config.net,
                    self.config.rank_map,
                    self.config.algorithm,
                    elems,
                    &buckets,
                    functional.then_some(&mut grads[..]),
                    faults,
                )?;
                SimTime::from_seconds((o.comm_finish.seconds() - compute.seconds()).max(0.0))
            }
        };

        // Phase 4-5 on every node.
        let scale = 1.0 / (CORE_GROUPS * n) as f32;
        let mut update = SimTime::ZERO;
        let mut intra_post = SimTime::ZERO;
        for (chip, g) in self.chips.iter_mut().zip(&mut grads) {
            let (u, b) = chip.apply_update(g, scale);
            update = update.max(u);
            intra_post = intra_post.max(b);
        }
        let loss = reports.iter().map(|r| r.loss).sum::<f32>() / n as f32;
        let io_stall = match self.config.io {
            Some((model, bytes)) => swio::io_stall(model.batch_read_time(n, bytes), compute),
            None => SimTime::ZERO,
        };
        Ok(ClusterIteration {
            loss,
            compute,
            comm,
            intra: intra_pre + intra_post,
            update,
            io_stall,
        })
    }

    /// Serialise a full recovery checkpoint — weights, persistent layer
    /// state (batch-norm statistics), and solver state (iteration,
    /// momentum, dropout RNG streams) — of the logically-replicated
    /// model. Under synchronous SGD every node and every core group hold
    /// identical state between iterations, so one replica's snapshot is
    /// the job's.
    pub fn checkpoint(&self) -> Vec<u8> {
        let chip = &self.chips[0];
        let mut buf = Vec::new();
        snapshot::write_checkpoint(chip.net(), &chip.solver_state(), &mut buf)
            .expect("writing a checkpoint to memory cannot fail");
        buf
    }

    /// Load a checkpoint produced by [`checkpoint`](Self::checkpoint)
    /// into every node and every core-group replica, repositioning each
    /// chip's solver. Returns the restored iteration number.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<u64, String> {
        let state = snapshot::read_checkpoint(self.chips[0].net_mut(), bytes)?;
        let weights = pack_params(self.chips[0].net());
        let persistent: Vec<Vec<f32>> = self.chips[0]
            .net()
            .state()
            .iter()
            .map(|s| s.to_vec())
            .collect();
        for chip in &mut self.chips {
            chip.restore(&weights, &persistent, &state)?;
        }
        Ok(state.iteration)
    }

    /// Rebuild the job after a fault aborted an iteration, charging the
    /// simulated recovery wall-clock to the session's
    /// [`FaultReport::recovery_s`](swnet::FaultReport).
    pub fn recover(
        &mut self,
        faults: &mut FaultSession,
        action: Recovery,
        checkpoint: Option<&[u8]>,
    ) -> Result<(), String> {
        match action {
            Recovery::ShrinkAndContinue => {
                let dead: Vec<usize> = faults
                    .dead_nodes()
                    .iter()
                    .copied()
                    .filter(|&r| r < self.config.nodes)
                    .collect();
                if dead.is_empty() {
                    return Err("no dead ranks to shrink away".into());
                }
                if dead.len() >= self.config.nodes {
                    return Err("no surviving nodes".into());
                }
                for &r in dead.iter().rev() {
                    self.chips.remove(r);
                }
                self.config.nodes = self.chips.len();
                // Mirror `allreduce_any`: RHD and binomial require a
                // power-of-two rank count, so an awkward survivor count
                // falls back to the ring with the natural mapping.
                if !self.config.nodes.is_power_of_two()
                    && matches!(
                        self.config.algorithm,
                        Algorithm::RecursiveHalvingDoubling | Algorithm::Binomial
                    )
                {
                    self.config.algorithm = Algorithm::Ring;
                    self.config.rank_map = RankMap::Natural;
                }
                faults.clear_dead();
                // The survivors still hold the last completed iteration's
                // synchronised weights (the faulted iteration aborted
                // before any update), so shrinking costs only the
                // membership agreement: one tiny collective over the new
                // topology. Gradient averaging rescales automatically —
                // `iteration` divides by the live node count.
                faults.report.recovery_s += self.resync_seconds(1);
            }
            Recovery::RestoreFromCheckpoint => {
                let bytes = checkpoint.ok_or("RestoreFromCheckpoint needs the checkpoint bytes")?;
                self.restore_checkpoint(bytes)?;
                faults.clear_dead();
                // Every node re-reads the checkpoint from the shared
                // filesystem (when an I/O model is configured) and the
                // job re-synchronises with a full-parameter collective.
                if let Some((model, _)) = self.config.io {
                    faults.report.recovery_s += model
                        .batch_read_time(self.config.nodes, bytes.len())
                        .seconds();
                }
                faults.report.recovery_s += self.resync_seconds(self.chips[0].param_elems());
            }
        }
        Ok(())
    }

    /// Cost of one fault-free collective over the current topology —
    /// the re-synchronisation step every recovery path ends with.
    fn resync_seconds(&self, elems: usize) -> f64 {
        allreduce(
            &self.config.topology(),
            &self.config.net,
            self.config.rank_map,
            self.config.algorithm,
            elems,
            None,
        )
        .elapsed
        .seconds()
    }
}

/// What to do after [`ClusterTrainer::iteration_ft`] aborts with a
/// [`CollectiveFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Drop the dead ranks and continue on the survivors: chips are
    /// removed, the topology shrinks, the algorithm falls back to
    /// Ring/Natural when the survivor count stops being a power of two
    /// (the [`swnet::allreduce_any`] rule), and gradient averaging
    /// rescales to the live node count. Training continues from the last
    /// completed iteration — no work is lost, but parallelism degrades.
    ShrinkAndContinue,
    /// Reload the last full-solver checkpoint into the full-size job
    /// (the dead rank is assumed re-assigned to a spare node) and replay
    /// from there — bit-identical to a run that never faulted.
    RestoreFromCheckpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::pack_params;
    use swcaffe_core::models;

    pub(crate) fn synth_cluster_inputs(
        nodes: usize,
        cg_batch: usize,
        classes: usize,
        img: usize,
        seed: usize,
    ) -> Vec<Vec<CgBatch>> {
        (0..nodes)
            .map(|node| {
                (0..CORE_GROUPS)
                    .map(|cgi| {
                        let mut data = vec![0.0f32; cg_batch * img];
                        let mut labels = vec![0.0f32; cg_batch];
                        for b in 0..cg_batch {
                            let class = (b + cgi + node * 2 + seed) % classes;
                            labels[b] = class as f32;
                            for i in 0..img {
                                let noise = (((b * 31 + i * 17 + node * 5 + cgi * 3 + seed * 7)
                                    % 83) as f32
                                    / 83.0
                                    - 0.5)
                                    * 0.2;
                                let stripe = (i * classes / img) == class;
                                data[b * img + i] = noise + if stripe { 1.0 } else { 0.0 };
                            }
                        }
                        (data, labels)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cluster_nodes_stay_synchronous() {
        let def = models::tiny_cnn(1, 3);
        let mut cluster = ClusterTrainer::new(
            &def,
            SolverConfig::default(),
            ClusterConfig {
                supernode_size: 2,
                ..ClusterConfig::swcaffe(4)
            },
            ExecMode::Functional,
        )
        .unwrap();
        let img = 3 * 16 * 16;
        for it in 0..3 {
            let inputs = synth_cluster_inputs(4, 1, 3, img, it);
            let r = cluster.iteration(Some(&inputs));
            assert!(r.loss.is_finite());
            assert!(r.comm.seconds() > 0.0);
            // Every node must hold the same weights afterwards.
            let reference = pack_params(cluster.chips[0].net());
            for (i, chip) in cluster.chips.iter().enumerate().skip(1) {
                assert_eq!(pack_params(chip.net()), reference, "node {i} diverged");
            }
        }
    }

    /// A BN-free CNN: batch-norm statistics are not batch-size
    /// associative, so the exact distributed-vs-centralised equivalence
    /// only holds without them (as in real data-parallel training).
    fn plain_cnn(batch: usize, classes: usize) -> swcaffe_core::NetDef {
        models::NetBuilder::new("plain_cnn", batch, 3, 16)
            .force_nchw()
            .conv("conv1", 8, 3, 1, 1)
            .relu("relu1")
            .pool("pool1", 2, 2, 0, swcaffe_core::PoolKind::Max)
            .fc("fc", classes)
            .loss()
    }

    #[test]
    fn distributed_equals_single_node_large_batch() {
        // 2 nodes x chip-batch 4 must produce exactly the same update as
        // 1 node x chip-batch 8 over the same 8 samples (synchronous SGD
        // is batch-size associative).
        let img = 3 * 16 * 16;
        let classes = 3;
        let solver = SolverConfig {
            base_lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            ..Default::default()
        };

        // Build one deterministic pool of 8 (data, label) samples.
        let pool = synth_cluster_inputs(2, 1, classes, img, 9);

        let def_small = plain_cnn(1, classes);
        let mut cluster = ClusterTrainer::new(
            &def_small,
            solver,
            ClusterConfig {
                supernode_size: 2,
                ..ClusterConfig::swcaffe(2)
            },
            ExecMode::Functional,
        )
        .unwrap();
        cluster.iteration(Some(&pool));
        let distributed = pack_params(cluster.chips[0].net());

        // Single node with per-CG batch 2 sees the same 8 samples.
        let def_big = plain_cnn(2, classes);
        let mut single = ChipTrainer::new(&def_big, solver, ExecMode::Functional).unwrap();
        let merged: Vec<(Vec<f32>, Vec<f32>)> = (0..CORE_GROUPS)
            .map(|cgi| {
                // CG cgi of the big node takes node0.cg and node1.cg
                // samples cgi (two samples of batch 1 each).
                let (d0, l0) = &pool[0][cgi];
                let (d1, l1) = &pool[1][cgi];
                let mut d = d0.clone();
                d.extend_from_slice(d1);
                let mut l = l0.clone();
                l.extend_from_slice(l1);
                (d, l)
            })
            .collect();
        single.iteration(Some(&merged));
        let centralized = pack_params(single.net());

        assert_eq!(distributed.len(), centralized.len());
        for (i, (a, b)) in distributed.iter().zip(&centralized).enumerate() {
            assert!(
                (a - b).abs() < 2e-4 * b.abs().max(1.0),
                "param {i}: distributed {a} vs centralized {b}"
            );
        }
    }

    #[test]
    fn overlapped_cluster_matches_serialized_bitwise() {
        // Overlapped bucketed communication changes the schedule, not the
        // math: after training, every weight must be bit-identical to the
        // serialized packed reduce, for every algorithm.
        let def = models::tiny_cnn(1, 3);
        let img = 3 * 16 * 16;
        for algo in [
            Algorithm::Ring,
            Algorithm::Binomial,
            Algorithm::RecursiveHalvingDoubling,
        ] {
            let run = |comm: CommMode| {
                let mut cluster = ClusterTrainer::new(
                    &def,
                    SolverConfig::default(),
                    ClusterConfig {
                        supernode_size: 2,
                        algorithm: algo,
                        comm,
                        ..ClusterConfig::swcaffe(4)
                    },
                    ExecMode::Functional,
                )
                .unwrap();
                for it in 0..2 {
                    let inputs = synth_cluster_inputs(4, 1, 3, img, it);
                    cluster.iteration(Some(&inputs));
                }
                pack_params(cluster.chips[0].net())
            };
            let serialized = run(CommMode::Serialized);
            // A tiny bucket target forces several buckets per iteration.
            let overlapped = run(CommMode::Overlapped { bucket_bytes: 4096 });
            assert_eq!(serialized.len(), overlapped.len());
            for (i, (a, b)) in serialized.iter().zip(&overlapped).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{algo:?} param {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn comm_fraction_guards_zero_total() {
        let r = ClusterIteration::default();
        assert_eq!(r.comm_fraction(), 0.0);
    }

    #[test]
    fn timing_mode_cluster_reports() {
        let def = models::tiny_cnn(4, 10);
        let mut cluster = ClusterTrainer::new(
            &def,
            SolverConfig::default(),
            ClusterConfig {
                supernode_size: 4,
                ..ClusterConfig::swcaffe(8)
            },
            ExecMode::TimingOnly,
        )
        .unwrap();
        let r = cluster.iteration(None);
        assert!(r.compute.seconds() > 0.0);
        assert!(r.comm.seconds() > 0.0);
        assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests::synth_cluster_inputs;
    use super::*;
    use crate::packing::pack_params;
    use swcaffe_core::models;
    use swnet::FaultPlan;

    #[test]
    fn crash_shrinks_the_job_and_training_continues() {
        let def = models::tiny_cnn(1, 3);
        let img = 3 * 16 * 16;
        let mut cluster = ClusterTrainer::new(
            &def,
            SolverConfig::default(),
            ClusterConfig {
                supernode_size: 2,
                ..ClusterConfig::swcaffe(4)
            },
            ExecMode::Functional,
        )
        .unwrap();
        let mut faults = FaultSession::new(FaultPlan::new(11).crash(3, 1));

        let inputs = synth_cluster_inputs(4, 1, 3, img, 0);
        cluster
            .iteration_ft(Some(&inputs), Some(&mut faults))
            .expect("iteration 0 predates the crash");

        let err = cluster
            .iteration_ft(Some(&inputs), Some(&mut faults))
            .expect_err("node 3 is dead at iteration 1");
        assert!(matches!(err, CollectiveFault::DeadRank { rank: 3, .. }));
        assert_eq!(faults.report.crashes, 1);
        assert_eq!(faults.report.detections, 1);

        cluster
            .recover(&mut faults, Recovery::ShrinkAndContinue, None)
            .unwrap();
        assert_eq!(cluster.config.nodes, 3);
        assert_eq!(cluster.chips.len(), 3);
        // 3 survivors: RHD needs a power of two, so the job falls back
        // to the ring with the natural mapping (the allreduce_any rule).
        assert_eq!(cluster.config.algorithm, Algorithm::Ring);
        assert_eq!(cluster.config.rank_map, RankMap::Natural);
        assert!(faults.report.recovery_s > 0.0);

        // Training continues on the survivors, and they stay in sync.
        let inputs = synth_cluster_inputs(3, 1, 3, img, 1);
        let r = cluster
            .iteration_ft(Some(&inputs), Some(&mut faults))
            .expect("shrunken job must train");
        assert!(r.loss.is_finite());
        let reference = pack_params(cluster.chips[0].net());
        for (i, chip) in cluster.chips.iter().enumerate().skip(1) {
            assert_eq!(pack_params(chip.net()), reference, "survivor {i} diverged");
        }
        // The crash event fired once; the rebuilt job is not re-killed.
        assert_eq!(faults.report.crashes, 1);
    }

    #[test]
    fn restore_from_checkpoint_replays_bit_identically() {
        // A run that crashes at iteration 2 and restores from the
        // checkpoint taken after iteration 1 must end bit-identical to a
        // run that never faulted — including dropout mask sequences and
        // batch-norm statistics, which is exactly what the full-solver
        // checkpoint exists to capture.
        let def = models::tiny_dropout_cnn(1, 3);
        let img = 3 * 8 * 8;
        let make = || {
            ClusterTrainer::new(
                &def,
                SolverConfig::default(),
                ClusterConfig {
                    supernode_size: 2,
                    ..ClusterConfig::swcaffe(4)
                },
                ExecMode::Functional,
            )
            .unwrap()
        };

        let mut clean = make();
        for it in 0..4 {
            let inputs = synth_cluster_inputs(4, 1, 3, img, it);
            clean.iteration(Some(&inputs));
        }
        let want = pack_params(clean.chips[0].net());

        let mut faulty = make();
        let mut faults = FaultSession::new(FaultPlan::new(5).crash(2, 2));
        for it in 0..2 {
            let inputs = synth_cluster_inputs(4, 1, 3, img, it);
            faulty
                .iteration_ft(Some(&inputs), Some(&mut faults))
                .unwrap();
        }
        let ckpt = faulty.checkpoint();
        let inputs2 = synth_cluster_inputs(4, 1, 3, img, 2);
        let err = faulty
            .iteration_ft(Some(&inputs2), Some(&mut faults))
            .expect_err("node 2 dies at iteration 2");
        assert!(matches!(err, CollectiveFault::DeadRank { rank: 2, .. }));
        faulty
            .recover(&mut faults, Recovery::RestoreFromCheckpoint, Some(&ckpt))
            .unwrap();
        assert!(faults.report.recovery_s > 0.0);
        assert_eq!(faulty.chips[0].solver().iter(), 2, "solver repositioned");
        for it in 2..4 {
            let inputs = synth_cluster_inputs(4, 1, 3, img, it);
            faulty
                .iteration_ft(Some(&inputs), Some(&mut faults))
                .expect("replay after restore must not re-fault");
        }
        let got = pack_params(faulty.chips[0].net());
        assert_eq!(want.len(), got.len());
        for (i, (a, b)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "param {i} after recovery: {a} vs {b}"
            );
        }
    }

    #[test]
    fn corrupted_messages_are_retried_transparently() {
        // Transient corruption is detected by the per-message checksums
        // and retransmitted: training produces bit-identical weights to
        // a clean run, only the clock and the fault counters differ.
        let def = models::tiny_cnn(1, 3);
        let img = 3 * 16 * 16;
        let run = |faults: Option<&mut FaultSession>| {
            let mut cluster = ClusterTrainer::new(
                &def,
                SolverConfig::default(),
                ClusterConfig {
                    supernode_size: 2,
                    ..ClusterConfig::swcaffe(4)
                },
                ExecMode::Functional,
            )
            .unwrap();
            let mut faults = faults;
            for it in 0..2 {
                let inputs = synth_cluster_inputs(4, 1, 3, img, it);
                cluster
                    .iteration_ft(Some(&inputs), faults.as_deref_mut())
                    .unwrap();
            }
            pack_params(cluster.chips[0].net())
        };
        let clean = run(None);
        let mut faults = FaultSession::new(FaultPlan::new(2024).corruption(0.2).max_retries(10));
        let noisy = run(Some(&mut faults));
        assert!(faults.report.corrupted_msgs > 0, "plan must corrupt");
        assert_eq!(faults.report.retries, faults.report.corrupted_msgs);
        assert!(faults.report.retry_cost_s > 0.0);
        for (i, (a, b)) in clean.iter().zip(&noisy).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i}: {a} vs {b}");
        }
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;
    use swcaffe_core::models;
    use swio::{IoModel, Layout};

    #[test]
    fn io_stall_appears_under_single_split_layout() {
        // With the degenerate single-split layout and many readers, the
        // disk cannot keep up with compute and the iteration stalls;
        // striping removes the stall.
        let def = models::tiny_cnn(8, 10);
        let batch_bytes = 192 << 20;
        let run = |layout: Layout| {
            let mut cluster = ClusterTrainer::new(
                &def,
                SolverConfig::default(),
                ClusterConfig {
                    supernode_size: 16,
                    io: Some((IoModel::taihulight(layout), batch_bytes)),
                    ..ClusterConfig::swcaffe(32)
                },
                ExecMode::TimingOnly,
            )
            .unwrap();
            cluster.iteration(None)
        };
        let single = run(Layout::SingleSplit);
        let striped = run(Layout::paper_striped());
        assert!(
            single.io_stall.seconds() > 1.0,
            "single-split must stall: {}",
            single.io_stall.seconds()
        );
        assert!(
            striped.io_stall.seconds() < single.io_stall.seconds() / 5.0,
            "striping must remove most of the stall: {} vs {}",
            striped.io_stall.seconds(),
            single.io_stall.seconds()
        );
        assert!(striped.total().seconds() < single.total().seconds());
    }
}
