//! Acceptance properties of the fault-tolerance subsystem, at the
//! swtrain level: a full-solver checkpoint (weights, batch-norm running
//! statistics, momentum, LR-schedule position, dropout RNG streams)
//! restores to a state from which training replays **bit-identically**
//! to an uninterrupted run — for every all-reduce algorithm in both
//! communication modes — including after a real injected node crash.

use sw26010::arch::CORE_GROUPS;
use sw26010::ExecMode;
use swcaffe_core::{models, NetDef, SolverConfig};
use swnet::Algorithm;
use swtrain::{
    pack_params, CgBatch, ClusterConfig, ClusterTrainer, CollectiveFault, CommMode, FaultPlan,
    FaultSession, Recovery,
};

const NODES: usize = 4;
const CLASSES: usize = 3;
const IMG: usize = 3 * 8 * 8;

fn synth_inputs(nodes: usize, seed: usize) -> Vec<Vec<CgBatch>> {
    (0..nodes)
        .map(|node| {
            (0..CORE_GROUPS)
                .map(|cgi| {
                    let mut data = vec![0.0f32; IMG];
                    let mut labels = vec![0.0f32; 1];
                    let class = (cgi + node * 2 + seed) % CLASSES;
                    labels[0] = class as f32;
                    for (i, v) in data.iter_mut().enumerate() {
                        let noise = (((i * 17 + node * 5 + cgi * 3 + seed * 7) % 83) as f32 / 83.0
                            - 0.5)
                            * 0.2;
                        let stripe = (i * CLASSES / IMG) == class;
                        *v = noise + if stripe { 1.0 } else { 0.0 };
                    }
                    (data, labels)
                })
                .collect()
        })
        .collect()
}

fn make_cluster(def: &NetDef, algo: Algorithm, comm: CommMode) -> ClusterTrainer {
    ClusterTrainer::new(
        def,
        SolverConfig::default(),
        ClusterConfig {
            supernode_size: 2,
            algorithm: algo,
            comm,
            ..ClusterConfig::swcaffe(NODES)
        },
        ExecMode::Functional,
    )
    .unwrap()
}

fn assert_bits_equal(want: &[f32], got: &[f32], ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: parameter count");
    for (i, (a, b)) in want.iter().zip(got).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: param {i}: {a} vs {b}");
    }
}

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RecursiveHalvingDoubling,
    Algorithm::Ring,
    Algorithm::Binomial,
];

const MODES: [CommMode; 2] = [
    CommMode::Serialized,
    // Tiny buckets force several segmented reduces per iteration.
    CommMode::Overlapped { bucket_bytes: 4096 },
];

/// The core property: train M iterations, checkpoint, restore the
/// checkpoint into a *fresh* job, train N more — the weights must be
/// bit-identical to M+N uninterrupted iterations, for every mode and
/// algorithm. The net carries dropout (private RNG streams) and batch
/// norm (persistent statistics): exactly the state a naive weights-only
/// snapshot forgets.
#[test]
fn checkpoint_restore_replays_bit_identically_everywhere() {
    let def = models::tiny_dropout_cnn(1, CLASSES);
    for comm in MODES {
        for algo in ALGORITHMS {
            let ctx = format!("{algo:?}/{comm:?}");

            let mut clean = make_cluster(&def, algo, comm);
            for it in 0..4 {
                clean.iteration(Some(&synth_inputs(NODES, it)));
            }
            let want = pack_params(clean.chips[0].net());

            let mut first = make_cluster(&def, algo, comm);
            for it in 0..2 {
                first.iteration(Some(&synth_inputs(NODES, it)));
            }
            let ckpt = first.checkpoint();

            let mut resumed = make_cluster(&def, algo, comm);
            let at = resumed.restore_checkpoint(&ckpt).unwrap();
            assert_eq!(at, 2, "{ctx}: restored iteration");
            for it in 2..4 {
                resumed.iteration(Some(&synth_inputs(NODES, it)));
            }
            let got = pack_params(resumed.chips[0].net());
            assert_bits_equal(&want, &got, &ctx);
        }
    }
}

/// The same property end to end through the fault machinery: a node
/// crashes mid-run, the dead rank is detected at the collective, the job
/// restores from its last checkpoint and replays — final weights
/// bit-identical to a run that never faulted, in both comm modes.
#[test]
fn crash_restore_replay_is_bit_identical() {
    let def = models::tiny_dropout_cnn(1, CLASSES);
    for comm in MODES {
        let algo = Algorithm::RecursiveHalvingDoubling;
        let ctx = format!("crash/{comm:?}");

        let mut clean = make_cluster(&def, algo, comm);
        for it in 0..4 {
            clean.iteration(Some(&synth_inputs(NODES, it)));
        }
        let want = pack_params(clean.chips[0].net());

        let mut faulty = make_cluster(&def, algo, comm);
        let mut faults = FaultSession::new(FaultPlan::new(42).crash(1, 2));
        for it in 0..2 {
            faulty
                .iteration_ft(Some(&synth_inputs(NODES, it)), Some(&mut faults))
                .unwrap();
        }
        let ckpt = faulty.checkpoint();
        let err = faulty
            .iteration_ft(Some(&synth_inputs(NODES, 2)), Some(&mut faults))
            .expect_err("rank 1 must be detected dead");
        assert!(
            matches!(err, CollectiveFault::DeadRank { rank: 1, .. }),
            "{ctx}: {err:?}"
        );
        faulty
            .recover(&mut faults, Recovery::RestoreFromCheckpoint, Some(&ckpt))
            .unwrap();
        for it in 2..4 {
            faulty
                .iteration_ft(Some(&synth_inputs(NODES, it)), Some(&mut faults))
                .unwrap();
        }
        let got = pack_params(faulty.chips[0].net());
        assert_bits_equal(&want, &got, &ctx);
        assert_eq!(faults.report.crashes, 1, "{ctx}");
        assert_eq!(faults.report.detections, 1, "{ctx}");
        assert!(faults.report.recovery_s > 0.0, "{ctx}");
    }
}

/// Shrinking instead of restoring: training continues on the survivors
/// with rescaled averaging, and the survivors stay weight-synchronous.
#[test]
fn shrink_keeps_survivors_synchronous_in_overlapped_mode() {
    let def = models::tiny_dropout_cnn(1, CLASSES);
    let mut cluster = make_cluster(
        &def,
        Algorithm::RecursiveHalvingDoubling,
        CommMode::Overlapped { bucket_bytes: 4096 },
    );
    let mut faults = FaultSession::new(FaultPlan::new(3).crash(0, 1));
    cluster
        .iteration_ft(Some(&synth_inputs(NODES, 0)), Some(&mut faults))
        .unwrap();
    let err = cluster
        .iteration_ft(Some(&synth_inputs(NODES, 1)), Some(&mut faults))
        .expect_err("rank 0 dies");
    assert!(matches!(err, CollectiveFault::DeadRank { rank: 0, .. }));
    cluster
        .recover(&mut faults, Recovery::ShrinkAndContinue, None)
        .unwrap();
    assert_eq!(cluster.config.nodes, 3);
    // Non-power-of-two survivors: the overlapped bucketed reduce now
    // rides the ring algorithm.
    assert_eq!(cluster.config.algorithm, Algorithm::Ring);
    for it in 1..3 {
        let r = cluster
            .iteration_ft(Some(&synth_inputs(3, it)), Some(&mut faults))
            .unwrap();
        assert!(r.loss.is_finite());
    }
    let reference = pack_params(cluster.chips[0].net());
    for (i, chip) in cluster.chips.iter().enumerate().skip(1) {
        assert_bits_equal(
            &reference,
            &pack_params(chip.net()),
            &format!("survivor {i}"),
        );
    }
}
