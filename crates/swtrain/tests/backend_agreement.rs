//! End-to-end backend agreement: a full training step on the tiny CNN
//! must produce bit-identical parameters under the Sw26010 functional
//! backend and the HostNative backend, for any host thread count.
//!
//! This is the integration-level counterpart of the per-kernel suite in
//! `swdnn/tests/backend_agreement.rs`: forward, backward, gradient
//! packing, averaging and the SGD update all run end to end, so any
//! kernel whose host mirror diverged — or any mode-dependent control
//! flow in the framework — would surface here.

use sw26010::ExecMode;
use swcaffe_core::models;
use swcaffe_core::SolverConfig;
use swtrain::ssgd::ChipTrainer;

fn values(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed);
            ((x >> 33) % 2000) as f32 / 500.0 - 2.0
        })
        .collect()
}

/// Run `steps` full chip iterations of the tiny CNN under `mode` and
/// return the per-step losses plus the final packed parameter bits.
fn run_steps(mode: ExecMode, steps: usize) -> (Vec<f32>, Vec<u32>) {
    let classes = 4;
    let def = models::tiny_cnn(2, classes);
    let solver = SolverConfig {
        base_lr: 0.05,
        ..Default::default()
    };
    let mut chip = ChipTrainer::new(&def, solver, mode).expect("chip trainer");
    let cg_batch = chip.cg_batch;
    let per_img = {
        let shape = chip.net().blob("data").shape().to_vec();
        shape[1] * shape[2] * shape[3]
    };
    let ncg = chip.chip_batch() / cg_batch;
    let mut losses = Vec::new();
    for step in 0..steps {
        let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..ncg)
            .map(|cg| {
                let data = values(cg_batch * per_img, (step * ncg + cg) as u64 + 1);
                let labels: Vec<f32> = (0..cg_batch)
                    .map(|i| ((step + cg + i) % classes) as f32)
                    .collect();
                (data, labels)
            })
            .collect();
        let report = chip.iteration(Some(&inputs));
        losses.push(report.loss);
    }
    let bits: Vec<u32> = chip
        .net()
        .params()
        .iter()
        .flat_map(|p| p.data().iter().map(|v| v.to_bits()))
        .collect();
    (losses, bits)
}

#[test]
fn training_step_is_bitwise_identical_across_backends() {
    let (want_losses, want_bits) = run_steps(ExecMode::Functional, 3);
    assert!(!want_bits.is_empty());
    for threads in [1usize, 3] {
        let (losses, bits) = run_steps(ExecMode::HostNative { threads }, 3);
        for (i, (l, w)) in losses.iter().zip(&want_losses).enumerate() {
            assert_eq!(
                l.to_bits(),
                w.to_bits(),
                "loss at step {i} differs under {threads} threads: {l} vs {w}"
            );
        }
        assert_eq!(bits.len(), want_bits.len());
        for (i, (g, w)) in bits.iter().zip(&want_bits).enumerate() {
            assert_eq!(
                g,
                w,
                "param elem {i} differs under {threads} threads: {} vs {}",
                f32::from_bits(*g),
                f32::from_bits(*w)
            );
        }
    }
}
