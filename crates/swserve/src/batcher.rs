//! Deterministic dynamic batcher over a virtual clock.
//!
//! The simulation is a pure function of the arrival trace, the latency
//! model and the configuration — no wall clock, no OS scheduling, no
//! randomness — so the same seed and trace always produce identical
//! batch boundaries and per-request latencies on every backend.
//!
//! Policy: requests queue FIFO; the earliest-free replica dispatches a
//! batch either when `max_batch` requests have queued or when the
//! earliest queued request's *queueing budget* (SLO minus the worst-case
//! full-batch execution time) is about to run out. Requests whose
//! budget already expired before the earliest possible dispatch are
//! shed — so every *admitted* request provably meets the SLO.

use std::collections::VecDeque;

use swcaffe_core::rng::SplitMix64;

use crate::error::ServeError;

/// Dynamic-batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch a single dispatch may carry.
    pub max_batch: usize,
    /// End-to-end latency objective (seconds) for admitted requests.
    pub slo: f64,
    /// Maximum coalescing wait (seconds) before an unfilled batch is
    /// dispatched anyway. Clamped to the queueing budget, so it can
    /// never push an admitted request past the SLO.
    pub timeout: f64,
}

/// One inference request in the open-loop arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    pub id: u64,
    /// Arrival time on the virtual clock (seconds).
    pub arrival: f64,
    /// Priority tier: higher keeps service longer under brown-out.
    /// Tier 0 (the default) is the first traffic shed when the
    /// resilience layer's capacity-loss policy escalates to shedding.
    pub tier: u8,
}

/// An admitted request with its simulated life cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedRequest {
    pub id: u64,
    pub arrival: f64,
    pub dispatch: f64,
    pub completion: f64,
    pub replica: usize,
}

impl ServedRequest {
    pub fn latency(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// One dispatched batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    pub replica: usize,
    pub dispatch: f64,
    pub completion: f64,
    pub request_ids: Vec<u64>,
}

/// Result of a serving simulation.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    pub served: Vec<ServedRequest>,
    /// Requests shed because their queueing budget expired before the
    /// earliest possible dispatch (overload).
    pub shed: Vec<u64>,
    pub batches: Vec<BatchRecord>,
    /// Busy seconds per replica.
    pub busy: Vec<f64>,
    /// Completion time of the last batch (virtual seconds).
    pub makespan: f64,
    /// The queueing budget the simulation ran with: SLO minus the
    /// worst-case (full-bucket) execution time.
    pub queue_budget: f64,
}

impl ServeOutcome {
    /// Sorted per-request latencies of admitted requests.
    pub fn latencies(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.served.iter().map(|s| s.latency()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Nearest-rank percentile of admitted latencies. Degenerate inputs
    /// have pinned results instead of relying on float-cast saturation:
    /// an empty sample returns 0.0, `p` is clamped into `[0, 100]`, and
    /// a NaN `p` reads as the minimum (p = 0).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let v = self.latencies();
        if v.is_empty() {
            return 0.0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Admitted requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.served.len() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Busy fraction per replica over the makespan.
    pub fn utilization(&self) -> Vec<f64> {
        self.busy
            .iter()
            .map(|&b| {
                if self.makespan > 0.0 {
                    b / self.makespan
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Seeded open-loop Poisson arrival trace: `n` requests at `qps`
/// expected arrivals per second, all tier 0.
pub fn poisson_trace(seed: u64, qps: f64, n: usize) -> Vec<Request> {
    poisson_trace_tiered(seed, qps, n, &[0])
}

/// Seeded open-loop Poisson arrival trace with priority tiers assigned
/// round-robin from `tiers` (deterministic in the seed and the tier
/// list), for exercising the brown-out policy's tiered shedding.
pub fn poisson_trace_tiered(seed: u64, qps: f64, n: usize, tiers: &[u8]) -> Vec<Request> {
    assert!(qps > 0.0, "qps must be positive");
    assert!(!tiers.is_empty(), "need at least one tier");
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    (0..n as u64)
        .map(|id| {
            t += -rng.next_f64_open0().ln() / qps;
            Request {
                id,
                arrival: t,
                tier: tiers[(id as usize) % tiers.len()],
            }
        })
        .collect()
}

/// Simulate serving `trace` on `replicas` identical replicas. `latency`
/// maps a batch size to its execution time in seconds (the engine
/// buckets internally); it must be monotone in the batch size.
pub fn simulate(
    trace: &[Request],
    replicas: usize,
    cfg: &BatchConfig,
    latency: &mut dyn FnMut(usize) -> f64,
) -> Result<ServeOutcome, ServeError> {
    if replicas == 0 {
        return Err(ServeError::NoReplicas);
    }
    if cfg.max_batch == 0 {
        return Err(ServeError::ZeroMaxBatch);
    }
    let worst = latency(cfg.max_batch);
    let budget = cfg.slo - worst;
    if budget < 0.0 {
        return Err(ServeError::InfeasibleSlo {
            slo: cfg.slo,
            max_batch: cfg.max_batch,
            worst,
        });
    }
    let mut requests: Vec<Request> = trace.to_vec();
    requests.sort_by(|a, b| {
        a.arrival
            .partial_cmp(&b.arrival)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });

    let mut out = ServeOutcome {
        busy: vec![0.0; replicas],
        queue_budget: budget,
        ..Default::default()
    };
    let mut free = vec![0.0f64; replicas];
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut i = 0usize;

    while i < requests.len() || !queue.is_empty() {
        // Earliest-free replica, lowest index on ties.
        let r = (0..replicas)
            .reduce(|best, k| if free[k] < free[best] { k } else { best })
            .unwrap();
        let t_free = free[r];

        while i < requests.len() && requests[i].arrival <= t_free {
            queue.push_back(requests[i]);
            i += 1;
        }
        if queue.is_empty() {
            // Idle: jump the clock to the next arrival (and co-arrivals).
            let t = requests[i].arrival;
            while i < requests.len() && requests[i].arrival <= t {
                queue.push_back(requests[i]);
                i += 1;
            }
        }

        let now = t_free.max(queue.front().unwrap().arrival);
        // Shed requests that can no longer be dispatched inside their
        // budget even by the earliest-free replica. FIFO order means
        // deadlines are monotone, so only the front can be expired.
        while let Some(front) = queue.front() {
            if front.arrival + budget < now {
                out.shed.push(front.id);
                queue.pop_front();
            } else {
                break;
            }
        }
        if queue.is_empty() {
            continue;
        }

        // Coalesce: wait for more arrivals until the batch fills or the
        // coalescing timer fires. The timer is anchored at the earliest
        // queued arrival and clamped to its budget, so waiting can never
        // push an admitted request past the SLO.
        let horizon = queue.front().unwrap().arrival + cfg.timeout.min(budget);
        let mut dispatch = now;
        while queue.len() < cfg.max_batch && i < requests.len() && requests[i].arrival <= horizon {
            dispatch = dispatch.max(requests[i].arrival);
            queue.push_back(requests[i]);
            i += 1;
        }
        if queue.len() < cfg.max_batch {
            // Timed out waiting: the timer fires at the horizon.
            dispatch = dispatch.max(horizon).max(now);
        }

        let size = queue.len().min(cfg.max_batch);
        let exec = latency(size);
        let completion = dispatch + exec;
        let mut ids = Vec::with_capacity(size);
        for _ in 0..size {
            let req = queue.pop_front().unwrap();
            ids.push(req.id);
            out.served.push(ServedRequest {
                id: req.id,
                arrival: req.arrival,
                dispatch,
                completion,
                replica: r,
            });
        }
        out.batches.push(BatchRecord {
            replica: r,
            dispatch,
            completion,
            request_ids: ids,
        });
        out.busy[r] += exec;
        out.makespan = out.makespan.max(completion);
        free[r] = completion;
    }
    Ok(out)
}
