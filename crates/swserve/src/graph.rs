//! Graph freeze + optimize: turn a training `NetDef` plus a trained
//! `Net`'s weights into an inference-only [`FrozenGraph`].
//!
//! The optimizer runs four passes, in order:
//!
//! 1. **Training-node elimination** — `SoftmaxWithLoss`, `Accuracy` and
//!    `Dropout` layers are removed (dropout is the identity at test
//!    phase, so consumers are rewired to its bottom bit-for-bit safely),
//!    and the label input is dropped once nothing consumes it.
//! 2. **Structural constant folding** — adjacent inverse tensor
//!    transforms (`nchw→rcnb→nchw`) cancel, and degenerate `Concat` /
//!    `EltwiseSum` nodes with a single bottom collapse to a rewire.
//!    Both folds are exact permutations or identities, so they cannot
//!    perturb a single bit of the output.
//! 3. **Conv+BN+ReLU fusion** — a linear `Convolution` (NCHW) →
//!    `BatchNorm` → `ReLU` chain whose intermediates have no other
//!    consumer becomes one `FusedConvBnRelu` layer backed by
//!    `swdnn::fused`. The fused kernel keeps the unfused arithmetic
//!    (same operations, same rounding points, f64 intermediates where
//!    the BN kernel used them) and wins by eliminating two kernel
//!    launches and two full activation round trips through main memory.
//!    Value-level folding of the BN affine into the conv weights is
//!    deliberately *not* done: it would change rounding and break the
//!    bit-identity contract the serving tests enforce.
//! 4. **Dead-node elimination + scheduling** — reverse reachability
//!    from the output blob removes anything that no longer feeds it,
//!    then a Kahn topological sort produces the eval schedule (and
//!    rejects cycles and orphaned inputs).

use std::collections::{HashMap, HashSet, VecDeque};

use swcaffe_core::net::LayerSnapshot;
use swcaffe_core::{ConvFormat, GraphViolation, LayerDef, LayerKind, Net, NetDef};

/// What the optimizer did, for reporting and regression gating.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizeStats {
    /// Layers in the imported (training) definition.
    pub source_layers: usize,
    /// Layers in the optimized eval schedule.
    pub scheduled_nodes: usize,
    /// Loss / accuracy / dropout nodes removed.
    pub removed_training: usize,
    /// Dead nodes removed (including the dropped label input).
    pub removed_dead: usize,
    /// Structural folds (transform pairs, single-input concat/eltwise).
    pub folded: usize,
    /// Conv+BN+ReLU chains fused.
    pub fused: usize,
}

/// A conv+bn+relu chain the optimizer replaced with one fused layer.
#[derive(Debug, Clone)]
pub struct FusionRecord {
    pub fused: String,
    pub conv: String,
    pub bn: String,
    pub relu: String,
}

/// A frozen, optimized inference graph: definition, weights, schedule.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    /// Optimized inference definition (layers in schedule order).
    pub def: NetDef,
    /// Weight payload for the optimized layers, keyed by layer name.
    /// Fused layers carry snapshots assembled from their source chain.
    pub weights: Vec<LayerSnapshot>,
    /// Topological eval order over `def.layers` (identity after the
    /// final reorder, kept explicit so executors need not re-derive it).
    pub schedule: Vec<usize>,
    /// Name of the data input blob.
    pub input: String,
    /// Name of the output (logits) blob.
    pub output: String,
    /// Batch size the definition was frozen at.
    pub batch: usize,
    /// Per-image input length (product of the non-batch input dims).
    pub per_image: usize,
    pub fusions: Vec<FusionRecord>,
    pub stats: OptimizeStats,
}

impl FrozenGraph {
    /// Bytes of the frozen weight/state payload (f32 elements × 4) — the
    /// read-back a crashed replica pays to re-warm from its snapshot,
    /// priced with the same striped-filesystem model as training
    /// checkpoint restore.
    pub fn snapshot_bytes(&self) -> u64 {
        self.weights
            .iter()
            .map(|s| {
                let elems: usize = s.params.iter().map(Vec::len).sum::<usize>()
                    + s.state.iter().map(Vec::len).sum::<usize>();
                elems as u64 * 4
            })
            .sum()
    }

    /// Freeze `net`'s weights against its definition and optimize the
    /// graph for inference. `net` must have been built from `def`.
    pub fn freeze(def: &NetDef, net: &Net) -> Result<FrozenGraph, String> {
        def.validate()?;
        let snaps = net.layer_snapshots();
        let mut graph = optimize(def)?;
        let by_name: HashMap<&str, &LayerSnapshot> =
            snaps.iter().map(|s| (s.name.as_str(), s)).collect();

        let mut weights = Vec::new();
        for fr in &graph.fusions {
            let conv = by_name
                .get(fr.conv.as_str())
                .ok_or_else(|| format!("missing snapshot for fused conv `{}`", fr.conv))?;
            let bn = by_name
                .get(fr.bn.as_str())
                .ok_or_else(|| format!("missing snapshot for fused bn `{}`", fr.bn))?;
            let mut params = conv.params.clone();
            params.extend(bn.params.clone());
            weights.push(LayerSnapshot {
                name: fr.fused.clone(),
                layer_type: "FusedConvBnRelu".into(),
                params,
                state: bn.state.clone(),
            });
        }
        let kept: HashSet<&str> = graph.def.layers.iter().map(|l| l.name.as_str()).collect();
        weights.extend(
            snaps
                .iter()
                .filter(|s| kept.contains(s.name.as_str()))
                .cloned(),
        );
        graph.weights = weights;
        Ok(graph)
    }
}

fn resolve(alias: &HashMap<String, String>, name: &str) -> String {
    let mut n = name.to_string();
    let mut hops = 0;
    while let Some(next) = alias.get(&n) {
        n = next.clone();
        hops += 1;
        assert!(hops <= alias.len(), "alias cycle through `{name}`");
    }
    n
}

fn apply_aliases(layers: &mut [LayerDef], alias: &HashMap<String, String>) {
    for l in layers.iter_mut() {
        for b in l.bottoms.iter_mut() {
            *b = resolve(alias, b);
        }
    }
}

/// Count how many remaining layers consume each blob.
fn consumer_counts(layers: &[LayerDef]) -> HashMap<String, usize> {
    let mut c: HashMap<String, usize> = HashMap::new();
    for l in layers {
        for b in &l.bottoms {
            *c.entry(b.clone()).or_insert(0) += 1;
        }
    }
    c
}

/// The single blob that is produced but never consumed (the logits).
fn sole_output(layers: &[LayerDef]) -> Result<String, String> {
    let consumed: HashSet<&str> = layers
        .iter()
        .flat_map(|l| l.bottoms.iter().map(|b| b.as_str()))
        .collect();
    let mut outs: Vec<&str> = layers
        .iter()
        .flat_map(|l| l.tops.iter().map(|t| t.as_str()))
        .filter(|t| !consumed.contains(t))
        .collect();
    if outs.len() != 1 {
        return Err(format!(
            "expected a single output blob after stripping heads, found {:?}",
            outs
        ));
    }
    Ok(outs.remove(0).to_string())
}

/// Kahn topological sort over layers (producer → consumer edges).
/// Errors on orphaned bottoms (no producer) and on cycles.
pub fn topo_schedule(layers: &[LayerDef]) -> Result<Vec<usize>, String> {
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for (i, l) in layers.iter().enumerate() {
        for t in &l.tops {
            producer.insert(t.as_str(), i);
        }
    }
    let mut indegree = vec![0usize; layers.len()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); layers.len()];
    for (i, l) in layers.iter().enumerate() {
        for b in &l.bottoms {
            match producer.get(b.as_str()) {
                Some(&p) => {
                    edges[p].push(i);
                    indegree[i] += 1;
                }
                None => {
                    return Err(format!(
                        "layer `{}` consumes blob `{}` which no layer produces",
                        l.name, b
                    ))
                }
            }
        }
    }
    let mut ready: VecDeque<usize> = (0..layers.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(layers.len());
    while let Some(i) = ready.pop_front() {
        order.push(i);
        for &j in &edges[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push_back(j);
            }
        }
    }
    if order.len() != layers.len() {
        let stuck: Vec<&str> = (0..layers.len())
            .filter(|&i| indegree[i] > 0)
            .map(|i| layers[i].name.as_str())
            .collect();
        return Err(format!("cycle in graph through layers {stuck:?}"));
    }
    Ok(order)
}

/// Rewrite the Input layer of `def` to a new batch size (all other
/// shapes derive from it at `Net` setup time).
pub fn def_with_batch(def: &NetDef, batch: usize) -> NetDef {
    let mut out = def.clone();
    for l in out.layers.iter_mut() {
        if let LayerKind::Input { shape, .. } = &mut l.kind {
            if !shape.is_empty() {
                shape[0] = batch;
            }
        }
    }
    out
}

/// Run the optimizer passes over `def`, producing an (unweighted)
/// frozen graph. [`FrozenGraph::freeze`] fills in the weights.
pub fn optimize(def: &NetDef) -> Result<FrozenGraph, String> {
    // Mandatory lint pre-pass: structural, shape, layout, and fusion
    // defects fail fast with a layer-anchored typed violation instead of
    // surfacing as a panic (or silent garbage) downstream. Dangling
    // blobs and dead layers are tolerated on *input* — eliminating them
    // is this optimizer's job — but nothing else is.
    if let Some(v) = swcaffe_core::lint::lint_def(def).iter().find(|v| {
        !matches!(
            v,
            GraphViolation::DanglingBlob { .. } | GraphViolation::DeadLayer { .. }
        )
    }) {
        return Err(format!("graph lint rejected '{}': {v}", def.name));
    }
    let mut stats = OptimizeStats {
        source_layers: def.layers.len(),
        ..Default::default()
    };
    let mut layers: Vec<LayerDef> = def.layers.clone();
    let mut alias: HashMap<String, String> = HashMap::new();

    // Pass 1: training-only nodes.
    layers.retain(|l| {
        let drop = matches!(
            l.kind,
            LayerKind::SoftmaxWithLoss | LayerKind::Accuracy { .. }
        );
        if drop {
            stats.removed_training += 1;
        }
        !drop
    });
    layers.retain(|l| {
        if let LayerKind::Dropout { .. } = l.kind {
            alias.insert(l.tops[0].clone(), l.bottoms[0].clone());
            stats.removed_training += 1;
            false
        } else {
            true
        }
    });
    apply_aliases(&mut layers, &alias);

    // Drop the label input if nothing consumes it any more.
    let consumed = consumer_counts(&layers);
    for l in layers.iter_mut() {
        if let LayerKind::Input { with_labels, .. } = &mut l.kind {
            if *with_labels && l.tops.len() == 2 && !consumed.contains_key(&l.tops[1]) {
                *with_labels = false;
                l.tops.truncate(1);
                stats.removed_dead += 1;
            }
        }
    }

    let output = sole_output(&layers)?;

    // Pass 2: structural folds, to fixpoint.
    loop {
        let counts = consumer_counts(&layers);
        let mut fold: Option<(usize, usize)> = None; // (first, second) layer idx
        let mut collapse: Option<usize> = None; // single-input concat/eltwise
        'scan: for (i, l) in layers.iter().enumerate() {
            match &l.kind {
                LayerKind::TensorTransform { dir } => {
                    let t1 = &l.tops[0];
                    if t1 == &output || counts.get(t1.as_str()).copied().unwrap_or(0) != 1 {
                        continue;
                    }
                    for (j, m) in layers.iter().enumerate() {
                        if let LayerKind::TensorTransform { dir: d2 } = &m.kind {
                            if m.bottoms.first() == Some(t1) && *d2 != *dir {
                                fold = Some((i, j));
                                break 'scan;
                            }
                        }
                    }
                }
                LayerKind::Concat | LayerKind::EltwiseSum
                    if l.bottoms.len() == 1 && l.tops[0] != l.bottoms[0] =>
                {
                    collapse = Some(i);
                    break 'scan;
                }
                _ => {}
            }
        }
        if let Some((i, j)) = fold {
            // t2 (second transform's top) now flows from the first's bottom.
            alias.insert(layers[j].tops[0].clone(), layers[i].bottoms[0].clone());
            let (a, b) = (i.max(j), i.min(j));
            layers.remove(a);
            layers.remove(b);
            stats.folded += 1;
        } else if let Some(i) = collapse {
            alias.insert(layers[i].tops[0].clone(), layers[i].bottoms[0].clone());
            layers.remove(i);
            stats.folded += 1;
        } else {
            break;
        }
        apply_aliases(&mut layers, &alias);
    }
    let output = resolve(&alias, &output);

    // Pass 3: conv+BN+ReLU fusion.
    let mut fusions = Vec::new();
    loop {
        let counts = consumer_counts(&layers);
        let mut found: Option<(usize, usize, usize)> = None;
        'chains: for (ci, cl) in layers.iter().enumerate() {
            let LayerKind::Convolution {
                format: ConvFormat::Nchw,
                ..
            } = cl.kind
            else {
                continue;
            };
            let ct = &cl.tops[0];
            if ct == &output || counts.get(ct.as_str()).copied().unwrap_or(0) != 1 {
                continue;
            }
            for (bi, bl) in layers.iter().enumerate() {
                if !matches!(bl.kind, LayerKind::BatchNorm { .. }) || bl.bottoms.first() != Some(ct)
                {
                    continue;
                }
                let bt = &bl.tops[0];
                if bt == &output || counts.get(bt.as_str()).copied().unwrap_or(0) != 1 {
                    continue;
                }
                for (ri, rl) in layers.iter().enumerate() {
                    if matches!(rl.kind, LayerKind::ReLU) && rl.bottoms.first() == Some(bt) {
                        found = Some((ci, bi, ri));
                        break 'chains;
                    }
                }
            }
        }
        let Some((ci, bi, ri)) = found else { break };
        let (conv, bn, relu) = (layers[ci].clone(), layers[bi].clone(), layers[ri].clone());
        let LayerKind::Convolution {
            num_output,
            kernel,
            stride,
            pad,
            bias,
            ..
        } = conv.kind
        else {
            unreachable!()
        };
        let LayerKind::BatchNorm { eps, .. } = bn.kind else {
            unreachable!()
        };
        let fused_name = format!("{}+{}+{}", conv.name, bn.name, relu.name);
        let fused = LayerDef {
            name: fused_name.clone(),
            kind: LayerKind::FusedConvBnRelu {
                num_output,
                kernel,
                stride,
                pad,
                bias,
                eps,
            },
            bottoms: conv.bottoms.clone(),
            tops: relu.tops.clone(),
        };
        fusions.push(FusionRecord {
            fused: fused_name,
            conv: conv.name,
            bn: bn.name,
            relu: relu.name,
        });
        let mut drop = [ci, bi, ri];
        drop.sort_unstable();
        for &d in drop.iter().rev() {
            layers.remove(d);
        }
        layers.insert(drop[0], fused);
        stats.fused += 1;
    }

    // Pass 4: dead-node elimination (reverse reachability from output).
    let mut needed: HashSet<String> = HashSet::new();
    needed.insert(output.clone());
    let before = layers.len();
    let mut kept: Vec<LayerDef> = Vec::with_capacity(layers.len());
    for l in layers.into_iter().rev() {
        if l.tops.iter().any(|t| needed.contains(t)) {
            for b in &l.bottoms {
                needed.insert(b.clone());
            }
            kept.push(l);
        }
    }
    kept.reverse();
    stats.removed_dead += before - kept.len();
    let mut layers = kept;

    // Schedule (also validates: no cycles, no orphans) and reorder.
    let order = topo_schedule(&layers)?;
    let mut scheduled = Vec::with_capacity(layers.len());
    for &i in &order {
        scheduled.push(layers[i].clone());
    }
    layers = scheduled;
    stats.scheduled_nodes = layers.len();

    let (input, batch, per_image) = layers
        .iter()
        .find_map(|l| match &l.kind {
            LayerKind::Input { shape, .. } => Some((
                l.tops[0].clone(),
                shape.first().copied().unwrap_or(0),
                shape.iter().skip(1).product::<usize>(),
            )),
            _ => None,
        })
        .ok_or_else(|| "optimized graph has no Input layer".to_string())?;

    let mut def = NetDef::new(format!("{}.frozen", def.name));
    def.layers = layers;
    def.validate()
        .map_err(|e| format!("optimized graph failed validation: {e}"))?;
    // Lint post-pass, fully strict: the frozen graph must be free of
    // *every* violation class — the optimizer may not manufacture
    // dangling blobs, dead layers, layout breaks, or illegal fusions.
    if let Some(v) = swcaffe_core::lint::lint_def(&def).first() {
        return Err(format!("optimizer produced an ill-formed graph: {v}"));
    }
    Ok(FrozenGraph {
        def,
        weights: Vec::new(),
        schedule: (0..stats.scheduled_nodes).collect(),
        input,
        output,
        batch,
        per_image,
        fusions,
        stats,
    })
}
