//! Typed serving errors.
//!
//! Every fallible path in the serving stack — engine inference, cluster
//! dispatch, batcher configuration — returns a [`ServeError`] value
//! instead of panicking, so injected faults and malformed inputs surface
//! as data the resilience layer (and its negative tests) can match on,
//! never as aborts.

use std::fmt;

use sw26010::ExecMode;

/// Why a serving operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// `Engine::infer` needs a value-producing backend.
    NonFunctionalBackend { mode: ExecMode },
    /// The input buffer does not match `batch * per_image` floats.
    InputShape {
        got: usize,
        batch: usize,
        per_image: usize,
    },
    /// A frozen def failed to build as a `Net` (graph-level failure).
    Graph(String),
    /// Loading the frozen weight snapshots into a bucket net failed.
    Snapshot(String),
    /// The cluster has no replicas to dispatch on.
    NoReplicas,
    /// `BatchConfig::max_batch` was zero.
    ZeroMaxBatch,
    /// The SLO cannot be met even by an empty queue: a full batch takes
    /// longer than the SLO itself.
    InfeasibleSlo {
        slo: f64,
        max_batch: usize,
        worst: f64,
    },
    /// Every replica is declared crashed before the trace begins — the
    /// resilience layer cannot serve anything.
    AllReplicasDead,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NonFunctionalBackend { mode } => {
                write!(
                    f,
                    "Engine::infer requires a functional backend, got {mode:?}"
                )
            }
            ServeError::InputShape {
                got,
                batch,
                per_image,
            } => write!(
                f,
                "input length {got} != batch {batch} x per-image {per_image}"
            ),
            ServeError::Graph(e) => write!(f, "frozen graph failed to build: {e}"),
            ServeError::Snapshot(e) => write!(f, "frozen snapshot load failed: {e}"),
            ServeError::NoReplicas => write!(f, "need at least one replica"),
            ServeError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            ServeError::InfeasibleSlo {
                slo,
                max_batch,
                worst,
            } => write!(
                f,
                "SLO {slo:.6}s infeasible: a full batch of {max_batch} takes {worst:.6}s"
            ),
            ServeError::AllReplicasDead => {
                write!(f, "every replica is crashed before the trace begins")
            }
        }
    }
}

impl std::error::Error for ServeError {}
